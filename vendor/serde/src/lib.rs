//! Offline stand-in for `serde`.
//!
//! The workspace's crates expose an optional `serde` feature that only
//! attaches `#[derive(serde::Serialize, serde::Deserialize)]` to value
//! types; nothing in the repository serialises through serde at runtime.
//! With crates.io unreachable, this crate supplies just enough surface for
//! those annotations to compile: the two trait names plus no-op derive
//! macros. Swap back to the real serde when a consumer actually needs
//! (de)serialisation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
