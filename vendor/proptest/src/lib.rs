//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable from this build environment, so the workspace
//! vendors the strategy surface its property tests use: range and tuple
//! strategies, `prop_map`, `prop_oneof!`, `any::<T>()`,
//! `proptest::collection::vec`, the `proptest!` test macro and the
//! `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs via
//!   the ordinary assert message instead of a minimised counterexample.
//! * **Deterministic sampling.** Each test's case stream is a pure
//!   function of the test's name, so failures reproduce exactly across
//!   runs and machines (upstream randomises unless given a persisted
//!   seed).
//! * `prop_assert!` panics instead of returning `Err`, which is
//!   behaviourally equivalent inside `#[test]` functions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Execution configuration and the deterministic test RNG.

    /// Subset of upstream's `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` samples per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Leaner than upstream's 256: no shrinker means failures point
            // at raw samples, and CI wants bounded runtimes.
            Self { cases: 64 }
        }
    }

    /// Deterministic sampling RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from an explicit value.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed ^ 0x5BF0_3635_DEAD_BEEF }
        }

        /// RNG whose stream is a pure function of the test name, so every
        /// run of a property samples the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample empty range");
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// Always-the-same-value strategy (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `elem` samples, length uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property over sampled inputs (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body over sampled inputs.
///
/// Supports both argument forms upstream accepts:
/// `fn f(x in strategy)` and `fn f(x: Type)` (implicit `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $($crate::proptest!(@one ($cfg) $(#[$meta])* fn $name($($args)*) $body);)*
    };
    (@one ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)+
                $body
            }
        }
    };
    (@one ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut proptest_rng);)+
                $body
            }
        }
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u8..4, 10usize..20).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![
            (0u64..1).prop_map(|_| 'a'),
            (0u64..1).prop_map(|_| 'b'),
            (0u64..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::sample(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_respects_length_range() {
        let strat = crate::collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_in_form_works(x in 0u64..100, y in 0u64..100) {
            prop_assert!(x < 100 && y < 100);
        }

        #[test]
        fn macro_typed_form_works(bits: u16, flag: bool) {
            prop_assert_eq!(bits.count_ones() + bits.count_zeros(), 16);
            prop_assert_ne!(flag as u8, 2);
        }
    }
}
