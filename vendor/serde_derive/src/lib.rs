//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(serde::Serialize)]` expands to nothing: the annotation
//! compiles, no impl is generated, and nothing in this workspace requires
//! one (the `serde` feature only decorates value types for downstream
//! consumers that would bring the real serde).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing (no impl is generated).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing (no impl is generated).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
