//! Deterministic fast hashing for the simulator's hot-path maps.
//!
//! The std `HashMap` default (SipHash-1-3 behind `RandomState`) is the
//! single largest per-access cost on the simulation hot path: every
//! in-flight-fill probe, MSHR probe and SLP table lookup hashes a `u64`
//! key through a DoS-resistant hasher the simulator does not need — all
//! keys are page/block numbers derived from synthetic traces, never
//! attacker-controlled. This crate vendors an FxHash-style multiply-rotate
//! hasher (the `rustc-hash` algorithm; the build environment has no
//! registry access) that is
//!
//! * **fast** — one rotate, one xor, one multiply per 8-byte word;
//! * **deterministic** — no per-process or per-instance seeding, so a
//!   simulation produces the same map behaviour on every run and machine.
//!
//! Simulation *results* must never depend on hash iteration order (every
//! map-order-sensitive decision breaks ties on the key — see
//! `AccumulationTable`'s victim selection). To let the test suite prove
//! that, [`SelectableBuildHasher`] — the `S` used by [`FastHashMap`] — can
//! be globally switched to std's deterministic SipHash
//! ([`std::collections::hash_map::DefaultHasher`]) via
//! [`set_global_hasher`]; `tests/determinism.rs` runs one grid cell under
//! each hasher and asserts bit-identical results.
//!
//! # Examples
//!
//! ```
//! use planaria_hash::FastHashMap;
//!
//! let mut m: FastHashMap<u64, &str> = FastHashMap::default();
//! m.insert(42, "answer");
//! assert_eq!(m.get(&42), Some(&"answer"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};

/// The multiplier of the FxHash mix function (from rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `hash = (rotl5(hash) ^ word) * SEED`
/// per 8-byte word. Not DoS-resistant — only for trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" hash differently.
            self.mix(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A stateless, seedless [`BuildHasher`] producing [`FxHasher`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` hashed with pure [`FxBuildHasher`] (no runtime switch).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with pure [`FxBuildHasher`] (no runtime switch).
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Which hash function the hot-path maps use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HasherKind {
    /// FxHash (the default): fast, deterministic.
    Fx,
    /// std SipHash-1-3 with fixed zero keys ([`DefaultHasher::new`]) —
    /// also deterministic, used to prove results are hasher-independent.
    Std,
}

/// Process-wide default captured by [`SelectableBuildHasher::default`]:
/// 0 = Fx, 1 = Std.
static GLOBAL_KIND: AtomicU8 = AtomicU8::new(0);

/// Sets the hash function that newly created [`FastHashMap`]s /
/// [`FastHashSet`]s will use. Existing maps keep the kind they were
/// built with, so each map stays internally consistent.
///
/// This is a test knob: `tests/determinism.rs` flips it to prove a whole
/// simulation's results do not depend on the hasher. Production code
/// never calls it.
pub fn set_global_hasher(kind: HasherKind) {
    GLOBAL_KIND.store(matches!(kind, HasherKind::Std) as u8, Ordering::SeqCst);
}

/// The hash function newly created maps will capture.
pub fn global_hasher() -> HasherKind {
    match GLOBAL_KIND.load(Ordering::SeqCst) {
        0 => HasherKind::Fx,
        _ => HasherKind::Std,
    }
}

/// A [`BuildHasher`] fixed at construction to one of the two
/// [`HasherKind`]s; `Default` captures the current global kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectableBuildHasher {
    kind: HasherKind,
}

impl SelectableBuildHasher {
    /// A builder producing hashers of the given kind.
    pub fn new(kind: HasherKind) -> Self {
        Self { kind }
    }
}

impl Default for SelectableBuildHasher {
    fn default() -> Self {
        Self { kind: global_hasher() }
    }
}

impl BuildHasher for SelectableBuildHasher {
    type Hasher = SelectableHasher;

    #[inline]
    fn build_hasher(&self) -> SelectableHasher {
        match self.kind {
            HasherKind::Fx => SelectableHasher::Fx(FxHasher::default()),
            HasherKind::Std => SelectableHasher::Std(DefaultHasher::new()),
        }
    }
}

/// The hasher behind [`SelectableBuildHasher`].
#[derive(Debug, Clone)]
pub enum SelectableHasher {
    /// FxHash state.
    Fx(FxHasher),
    /// std SipHash state.
    Std(DefaultHasher),
}

macro_rules! forward_write {
    ($($method:ident: $ty:ty),* $(,)?) => {
        $(
            #[inline]
            fn $method(&mut self, n: $ty) {
                match self {
                    SelectableHasher::Fx(h) => h.$method(n),
                    SelectableHasher::Std(h) => h.$method(n),
                }
            }
        )*
    };
}

impl Hasher for SelectableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        match self {
            SelectableHasher::Fx(h) => h.finish(),
            SelectableHasher::Std(h) => h.finish(),
        }
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        match self {
            SelectableHasher::Fx(h) => h.write(bytes),
            SelectableHasher::Std(h) => h.write(bytes),
        }
    }

    forward_write! {
        write_u8: u8,
        write_u16: u16,
        write_u32: u32,
        write_u64: u64,
        write_u128: u128,
        write_usize: usize,
    }
}

/// The hot-path `HashMap`: FxHash by default, globally switchable to std
/// SipHash for hasher-independence testing.
pub type FastHashMap<K, V> = HashMap<K, V, SelectableBuildHasher>;

/// The hot-path `HashSet` counterpart of [`FastHashMap`].
pub type FastHashSet<T> = HashSet<T, SelectableBuildHasher>;

/// A [`FastHashMap`] pre-sized for `capacity` entries.
pub fn map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, SelectableBuildHasher::default())
}

/// Sentinel marking an empty [`FixedIndex`] bucket. Never a legal key:
/// the simulator's keys are page/block numbers derived from physical
/// addresses shifted right by at least 6 bits, so `u64::MAX` cannot occur.
const FIXED_INDEX_EMPTY: u64 = u64::MAX;

/// A fixed-capacity open-addressed `u64 → u32` index for hot-path tables.
///
/// The simulator's hardware tables (SLP FT/AT/PT, the TLP RPT) are
/// fixed-capacity by construction: entries live in dense struct-of-arrays
/// slots and only the *page → slot* association needs a hash lookup. A
/// general-purpose `HashMap` pays for growth logic, tombstone-free SIMD
/// group scans and 16-byte-aligned control metadata that a table with a
/// hard capacity bound never needs. `FixedIndex` instead allocates
/// `2 × capacity` buckets once (load factor ≤ 50 %), probes linearly and
/// deletes with backward shifting, so lookups on the per-access path are
/// one multiply-rotate hash plus a short linear scan over a flat array.
///
/// Determinism contract: like [`FastHashMap`], the index captures the
/// [global hasher kind](set_global_hasher) at construction, so the
/// determinism suite can prove that no simulation result depends on probe
/// order. Callers must therefore never let bucket order reach a decision —
/// `FixedIndex` deliberately exposes no iteration.
///
/// # Examples
///
/// ```
/// use planaria_hash::FixedIndex;
///
/// let mut idx = FixedIndex::with_capacity(4);
/// idx.insert(0x42, 7);
/// assert_eq!(idx.get(0x42), Some(7));
/// assert_eq!(idx.remove(0x42), Some(7));
/// assert_eq!(idx.get(0x42), None);
/// ```
#[derive(Debug, Clone)]
pub struct FixedIndex {
    /// Interleaved buckets: key plus dense-table slot number. One bucket
    /// spans one cache line's worth of both, so a hit costs a single
    /// memory touch (split key/slot arrays cost two on large tables).
    /// `FIXED_INDEX_EMPTY` keys mark free buckets.
    buckets: Vec<Bucket>,
    /// `buckets − 1`; bucket count is a power of two.
    mask: usize,
    /// Right-shift mapping a 64-bit hash onto the bucket range (top bits —
    /// the FxHash multiply concentrates entropy there).
    shift: u32,
    hasher: SelectableBuildHasher,
    len: usize,
}

/// One [`FixedIndex`] bucket: a key and its dense-table slot, co-located
/// so a probe touches one line.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    key: u64,
    slot: u32,
}

const EMPTY_BUCKET: Bucket = Bucket { key: FIXED_INDEX_EMPTY, slot: 0 };

impl FixedIndex {
    /// An index able to hold `capacity` keys at ≤ 80 % load.
    ///
    /// The sizing favours a small resident footprint over short probe
    /// chains: the tables sized by this index are probed against cold
    /// caches (the simulated SC and DRAM structures evict them between
    /// touches), where the array's line footprint costs more than an
    /// extra probe along one already-fetched line of four buckets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "FixedIndex capacity must be positive");
        let buckets = (capacity + capacity / 4 + 1).next_power_of_two().max(8);
        Self {
            buckets: vec![EMPTY_BUCKET; buckets],
            mask: buckets - 1,
            shift: 64 - buckets.trailing_zeros(),
            hasher: SelectableBuildHasher::default(),
            len: 0,
        }
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        let mut h = self.hasher.build_hasher();
        h.write_u64(key);
        (h.finish() >> self.shift) as usize
    }

    /// The slot stored for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, FIXED_INDEX_EMPTY, "sentinel key");
        let mut b = self.bucket_of(key);
        loop {
            let e = self.buckets[b];
            if e.key == key {
                return Some(e.slot);
            }
            if e.key == FIXED_INDEX_EMPTY {
                return None;
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Maps `key` to `slot`, overwriting any previous mapping; returns the
    /// replaced slot if the key was already present.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the fill would exceed the construction
    /// capacity's 50 % load bound — fixed-capacity callers evict before
    /// inserting, so this indicates a table-logic bug.
    #[inline]
    pub fn insert(&mut self, key: u64, slot: u32) -> Option<u32> {
        debug_assert_ne!(key, FIXED_INDEX_EMPTY, "sentinel key");
        let mut b = self.bucket_of(key);
        loop {
            let e = self.buckets[b];
            if e.key == key {
                self.buckets[b].slot = slot;
                return Some(e.slot);
            }
            if e.key == FIXED_INDEX_EMPTY {
                debug_assert!(
                    self.len < self.buckets.len() - 1,
                    "FixedIndex overfilled: capacity bound violated"
                );
                self.buckets[b] = Bucket { key, slot };
                self.len += 1;
                return None;
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its slot if it was present. Uses backward
    /// shifting, so no tombstones accumulate and probe chains stay short.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, FIXED_INDEX_EMPTY, "sentinel key");
        let mut b = self.bucket_of(key);
        loop {
            let k = self.buckets[b].key;
            if k == FIXED_INDEX_EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            b = (b + 1) & self.mask;
        }
        let removed = self.buckets[b].slot;
        // Backward-shift deletion: pull every displaced follower of the
        // probe chain one step toward its home bucket until a hole (or an
        // entry already at home) ends the chain.
        let mut hole = b;
        let mut probe = b;
        loop {
            probe = (probe + 1) & self.mask;
            let e = self.buckets[probe];
            if e.key == FIXED_INDEX_EMPTY {
                break;
            }
            let home = self.bucket_of(e.key);
            // Move `probe`'s entry into the hole iff its home bucket does
            // not lie cyclically within (hole, probe] — otherwise the move
            // would place it before its home and break future lookups.
            let movable = if hole <= probe {
                home <= hole || home > probe
            } else {
                home <= hole && home > probe
            };
            if movable {
                self.buckets[hole] = e;
                hole = probe;
            }
        }
        self.buckets[hole] = EMPTY_BUCKET;
        self.len -= 1;
        Some(removed)
    }
}

/// A [`FastHashSet`] pre-sized for `capacity` entries.
pub fn set_with_capacity<T>(capacity: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(capacity, SelectableBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx_of(n: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn fx_is_deterministic_and_spreads() {
        assert_eq!(fx_of(42), fx_of(42));
        assert_ne!(fx_of(1), fx_of(2));
        // Consecutive small keys must not collide in the low bits the
        // hashbrown layout uses for bucket selection.
        let low: std::collections::HashSet<u64> = (0..1000).map(|n| fx_of(n) >> 57).collect();
        assert!(low.len() > 16, "top-7-bit control bytes collapsed: {}", low.len());
    }

    #[test]
    fn byte_stream_matches_word_writes_only_in_length_handling() {
        // Tail length is tagged: a zero-padded prefix must differ.
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
        // Exactly 8 bytes goes through the word path.
        let mut c = FxHasher::default();
        c.write(&7u64.to_le_bytes());
        let mut d = FxHasher::default();
        d.write_u64(7);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn maps_behave_identically_under_both_hashers() {
        for kind in [HasherKind::Fx, HasherKind::Std] {
            let mut m: HashMap<u64, u64, SelectableBuildHasher> =
                HashMap::with_hasher(SelectableBuildHasher::new(kind));
            for i in 0..500u64 {
                m.insert(i * 64, i);
            }
            for i in 0..500u64 {
                assert_eq!(m.get(&(i * 64)), Some(&i), "{kind:?}");
            }
            assert_eq!(m.len(), 500);
        }
    }

    #[test]
    fn global_switch_affects_new_builders_only() {
        let before = SelectableBuildHasher::default();
        set_global_hasher(HasherKind::Std);
        let during = SelectableBuildHasher::default();
        set_global_hasher(HasherKind::Fx);
        assert_eq!(before.kind, global_hasher());
        assert_eq!(during.kind, HasherKind::Std);
    }

    #[test]
    fn fixed_index_basic_ops() {
        let mut idx = FixedIndex::with_capacity(8);
        assert!(idx.is_empty());
        assert_eq!(idx.insert(100, 0), None);
        assert_eq!(idx.insert(200, 1), None);
        assert_eq!(idx.insert(100, 2), Some(0), "reinsert overwrites");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(100), Some(2));
        assert_eq!(idx.get(300), None);
        assert_eq!(idx.remove(100), Some(2));
        assert_eq!(idx.remove(100), None);
        assert_eq!(idx.get(200), Some(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn fixed_index_backward_shift_keeps_chains_probeable() {
        // Force a dense cluster, then delete from the middle of the chain
        // and verify every survivor is still reachable — the failure mode
        // backward shifting exists to prevent.
        let mut idx = FixedIndex::with_capacity(64);
        let keys: Vec<u64> = (0..64).map(|i| i * 4096).collect();
        for (i, &k) in keys.iter().enumerate() {
            idx.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(idx.remove(k), Some(i as u32));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let want = if i % 3 == 0 { None } else { Some(i as u32) };
            assert_eq!(idx.get(k), want, "key {k} after interleaved removals");
        }
    }

    #[test]
    fn fixed_index_matches_hashmap_model_under_random_churn() {
        // Deterministic pseudo-random insert/remove/lookup churn checked
        // against std's HashMap, under both hasher kinds (probe order must
        // never leak into results).
        for kind in [HasherKind::Fx, HasherKind::Std] {
            set_global_hasher(kind);
            let mut idx = FixedIndex::with_capacity(128);
            set_global_hasher(HasherKind::Fx);
            let mut model: HashMap<u64, u32> = HashMap::new();
            let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
            for step in 0..20_000u32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (state >> 33) % 192; // collide often
                match state % 3 {
                    0 if model.len() < 128 => {
                        assert_eq!(idx.insert(key, step), model.insert(key, step), "{kind:?}");
                    }
                    1 => assert_eq!(idx.remove(key), model.remove(&key), "{kind:?}"),
                    _ => assert_eq!(idx.get(key), model.get(&key).copied(), "{kind:?}"),
                }
                assert_eq!(idx.len(), model.len(), "{kind:?}");
            }
        }
    }

    #[test]
    fn presized_constructors() {
        let m: FastHashMap<u64, ()> = map_with_capacity(64);
        assert!(m.capacity() >= 64);
        let s: FastHashSet<u64> = set_with_capacity(64);
        assert!(s.capacity() >= 64);
    }
}
