//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable from this build environment, so the workspace
//! vendors a minimal wall-clock harness with criterion's API shape:
//! benchmark groups, `sample_size`, `Throughput`, `BenchmarkId` and
//! `Bencher::iter`. No statistics, plots or regression detection — each
//! benchmark runs `sample_size` timed batches and reports the fastest
//! batch (the usual low-noise point estimate) plus derived throughput.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (plain string or parameterised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter (inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    /// Fastest observed batch duration per iteration.
    best_ns: f64,
    /// Batches to run (the group's `sample_size`).
    samples: usize,
}

impl Bencher {
    /// Times `f`, keeping the fastest batch as the estimate.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up call outside timing.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { best_ns: f64::INFINITY, samples: self.sample_size };
        f(&mut b);
        let per_iter_ns = if b.best_ns.is_finite() { b.best_ns } else { 0.0 };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
                format!("  {:>10.2} Melem/s", n as f64 / per_iter_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
                format!("  {:>10.2} MiB/s", n as f64 / per_iter_ns * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{}/{:<24} {:>14.0} ns/iter{}", self.name, id, per_iter_ns, rate);
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("case"), |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
