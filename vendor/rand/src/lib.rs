//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `StdRng` (seeded via
//! [`SeedableRng::seed_from_u64`]), uniform [`Rng::gen_range`] /
//! [`Rng::gen_bool`] sampling and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream `StdRng` (ChaCha12), so streams differ from the real crate,
//! but every property the repository relies on holds: determinism for a
//! given seed, uniformity good enough for workload synthesis, and distinct
//! streams for distinct seeds. EXPERIMENTS.md bands are calibrated against
//! *this* generator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Marker + extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a random word into a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly maps a word onto `[0, n)` (widening-multiply method).
fn bounded(word: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(word) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Seeding constructor (mirrors `rand::SeedableRng`, u64 entry point only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the u64 seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "gen_bool(0.25) hit {hits}/100000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, (0..64).collect::<Vec<u32>>(), "shuffle left slice untouched");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(19);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
