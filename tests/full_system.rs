//! End-to-end tests of the full memory system: trace → SC → prefetcher →
//! LPDDR4, checking the paper's qualitative claims on small scaled runs.

use planaria_sim::experiment::{run_app_suite, run_trace, PrefetcherKind};
use planaria_trace::apps::AppId;
use planaria_trace::synth::{FootprintSpec, NeighborSpec};
use planaria_trace::{ComponentSpec, WorkloadSpec};

const LEN: usize = 320_000;

/// A footprint pool whose working set (~6 MB) exceeds the 4 MB SC — the
/// paper's regime: revisits miss under LRU, and only a pattern prefetcher
/// can convert them back into hits.
fn big_pool() -> FootprintSpec {
    FootprintSpec { pages: 6144, ..FootprintSpec::default() }
}

#[test]
fn planaria_beats_no_prefetcher_on_footprint_traffic() {
    let spec =
        WorkloadSpec::new("fp", "fp", 3, LEN).with(1.0, ComponentSpec::Footprint(big_pool()));
    let trace = spec.build();
    let none = run_trace(&trace, PrefetcherKind::None);
    let planaria = run_trace(&trace, PrefetcherKind::Planaria);
    assert!(
        planaria.hit_rate > none.hit_rate + 0.15,
        "hit rate: planaria {:.3} vs none {:.3}",
        planaria.hit_rate,
        none.hit_rate
    );
    assert!(
        planaria.amat_cycles < none.amat_cycles * 0.9,
        "amat: planaria {:.1} vs none {:.1}",
        planaria.amat_cycles,
        none.amat_cycles
    );
    assert!(planaria.prefetch_accuracy > 0.6, "accuracy {:.3}", planaria.prefetch_accuracy);
}

#[test]
fn slp_dominates_on_revisited_footprints() {
    let spec =
        WorkloadSpec::new("fp", "fp", 3, LEN).with(1.0, ComponentSpec::Footprint(big_pool()));
    let trace = spec.build();
    let planaria = run_trace(&trace, PrefetcherKind::Planaria);
    assert!(
        planaria.useful_slp > 5 * planaria.useful_tlp.max(1),
        "SLP {} vs TLP {} useful prefetches",
        planaria.useful_slp,
        planaria.useful_tlp
    );
}

#[test]
fn tlp_dominates_on_one_shot_neighbour_clusters() {
    let spec = WorkloadSpec::new("nb", "nb", 3, LEN)
        .with(1.0, ComponentSpec::Neighbor(NeighborSpec::default()));
    let trace = spec.build();
    let planaria = run_trace(&trace, PrefetcherKind::Planaria);
    assert!(
        planaria.useful_tlp > 5 * planaria.useful_slp.max(1),
        "TLP {} vs SLP {} useful prefetches",
        planaria.useful_tlp,
        planaria.useful_slp
    );
    let none = run_trace(&trace, PrefetcherKind::None);
    assert!(planaria.hit_rate > none.hit_rate, "TLP must add hits");
}

#[test]
fn figure_set_runs_on_a_real_app_profile() {
    let results = run_app_suite(AppId::HoK, &PrefetcherKind::FIGURE_SET, LEN);
    assert_eq!(results.len(), 4);
    let (none, bop, spp, planaria) = (&results[0], &results[1], &results[2], &results[3]);
    // Qualitative ordering of the paper's Figures 7/8 on the HoK profile:
    // Planaria clearly ahead of no-prefetcher in both hit rate and AMAT.
    assert!(planaria.hit_rate > none.hit_rate);
    assert!(planaria.amat_cycles < none.amat_cycles);
    // Planaria ahead of both delta baselines on AMAT.
    assert!(planaria.amat_cycles < bop.amat_cycles);
    assert!(planaria.amat_cycles < spp.amat_cycles);
    // Traffic: Planaria's overhead stays small; BOP's is larger.
    let planaria_traffic = planaria.traffic_delta(none);
    let bop_traffic = bop.traffic_delta(none);
    assert!(
        planaria_traffic < bop_traffic,
        "planaria traffic {planaria_traffic:+.3} must undercut BOP {bop_traffic:+.3}"
    );
}

#[test]
fn power_tracks_traffic() {
    let results = run_app_suite(AppId::Pm, &PrefetcherKind::FIGURE_SET, LEN);
    let (none, bop, _spp, planaria) = (&results[0], &results[1], &results[2], &results[3]);
    let planaria_power = planaria.power_delta(none);
    let bop_power = bop.power_delta(none);
    assert!(
        planaria_power < bop_power,
        "planaria power {planaria_power:+.3} must undercut BOP {bop_power:+.3}"
    );
}

#[test]
fn accounting_invariants_hold_across_prefetchers() {
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::Planaria,
    ] {
        let r = planaria_sim::experiment::run_app(AppId::Cfm, kind, 20_000);
        assert_eq!(r.accesses, 20_000, "{kind}");
        assert!(r.hit_rate >= 0.0 && r.hit_rate <= 1.0, "{kind}");
        assert!(r.prefetch_accuracy >= 0.0 && r.prefetch_accuracy <= 1.0, "{kind}");
        assert!(
            r.useful_prefetches <= r.traffic.prefetch_reads,
            "{kind}: useful {} > issued {}",
            r.useful_prefetches,
            r.traffic.prefetch_reads
        );
        assert!(r.amat_cycles >= 30.0, "{kind}: AMAT below the SC hit latency");
        assert!(r.total_energy_pj > 0.0, "{kind}");
        assert!(r.duration_cycles > 0, "{kind}");
        // Demand reads can never exceed demand misses.
        assert!(r.traffic.demand_reads <= r.accesses, "{kind}");
    }
}
