//! Property tests over randomly drawn workload specs: whatever the mix,
//! the generator and the full simulator must uphold their invariants.

use planaria_sim::experiment::{run_trace, PrefetcherKind};
use planaria_trace::synth::{FootprintSpec, NeighborSpec, RandomSpec, StreamSpec, StrideSpec};
use planaria_trace::{ComponentSpec, WorkloadSpec};
use proptest::prelude::*;

fn arb_component() -> impl Strategy<Value = ComponentSpec> {
    prop_oneof![
        (4usize..64, 4usize..32, 0.0f64..1.0, 1usize..4).prop_map(
            |(pages, blocks, mutation_prob, mutation_bits)| {
                ComponentSpec::Footprint(FootprintSpec {
                    pages,
                    footprint_blocks: blocks,
                    mutation_prob,
                    mutation_bits,
                    ..FootprintSpec::default()
                })
            }
        ),
        (1usize..32, 4usize..32, 0usize..3, 1usize..3).prop_map(
            |(span, blocks, noise, revisits)| {
                ComponentSpec::Neighbor(NeighborSpec {
                    cluster_span: span,
                    footprint_blocks: blocks,
                    noise_bits: noise,
                    revisits,
                    ..NeighborSpec::default()
                })
            }
        ),
        (8usize..512).prop_map(|run| {
            ComponentSpec::Stream(StreamSpec { run_blocks: run, ..StreamSpec::default() })
        }),
        (1usize..16, 8usize..128).prop_map(|(stride, len)| {
            ComponentSpec::Stride(StrideSpec {
                stride_blocks: stride,
                run_len: len,
                ..StrideSpec::default()
            })
        }),
        (16usize..4096).prop_map(|pages| {
            ComponentSpec::Random(RandomSpec { pages, ..RandomSpec::default() })
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        proptest::collection::vec((0.05f64..1.0, arb_component()), 1..4),
        any::<u64>(),
        2_000usize..8_000,
    )
        .prop_map(|(comps, seed, len)| {
            let mut spec = WorkloadSpec::new("prop", "prop", seed, len);
            for (w, c) in comps {
                spec = spec.with(w, c);
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_traces_are_well_formed(spec in arb_spec()) {
        let trace = spec.build();
        prop_assert_eq!(trace.len(), spec.length);
        // Sorted by cycle.
        prop_assert!(trace.accesses().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Deterministic.
        let rebuilt = spec.build();
        prop_assert_eq!(trace.accesses(), rebuilt.accesses());
    }

    #[test]
    fn simulator_invariants_hold_on_any_mix(spec in arb_spec()) {
        let trace = spec.build();
        for kind in [PrefetcherKind::None, PrefetcherKind::Planaria, PrefetcherKind::Bop] {
            let r = run_trace(&trace, kind);
            prop_assert_eq!(r.accesses, trace.len() as u64);
            prop_assert!(r.hit_rate >= 0.0 && r.hit_rate <= 1.0);
            prop_assert!(r.prefetch_accuracy >= 0.0 && r.prefetch_accuracy <= 1.0);
            prop_assert!(r.prefetch_coverage >= 0.0 && r.prefetch_coverage <= 1.0);
            prop_assert!(r.useful_prefetches <= r.traffic.prefetch_reads);
            prop_assert!(r.traffic.demand_reads <= r.accesses);
            if !trace.is_empty() {
                prop_assert!(r.amat_cycles >= 30.0 - 1e-9, "{}", r.amat_cycles);
            }
            prop_assert!(r.total_energy_pj >= 0.0);
        }
    }

    #[test]
    fn no_prefetcher_never_adds_traffic(spec in arb_spec()) {
        let trace = spec.build();
        let r = run_trace(&trace, PrefetcherKind::None);
        prop_assert_eq!(r.traffic.prefetch_reads, 0);
        prop_assert_eq!(r.useful_prefetches, 0);
        prop_assert_eq!(r.polluting_prefetches, 0);
    }
}
