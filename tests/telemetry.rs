//! The observability layer's contract: capture must not perturb the
//! simulation, the exported event stream must be deterministic at any
//! worker-thread count, and the lifecycle counters must reconcile exactly
//! with the simulator's own metrics (the Figure 9 split in particular).

use planaria_common::PrefetchOrigin;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, Runner};
use planaria_sim::{EventKind, MemorySystem, SystemConfig, TelemetryConfig};
use planaria_trace::apps::{profile, AppId};

const LEN: usize = 40_000;

fn events_cfg() -> SystemConfig {
    SystemConfig { telemetry: TelemetryConfig::events(), ..SystemConfig::default() }
}

fn event_jobs() -> Vec<Job> {
    [AppId::Cfm, AppId::Hi3]
        .iter()
        .flat_map(|&app| {
            [PrefetcherKind::Planaria, PrefetcherKind::Spp]
                .map(|k| Job::grid_cell(app, k, LEN).config(events_cfg()))
        })
        .collect()
}

#[test]
fn jsonl_export_is_byte_identical_across_thread_counts() {
    let serial = Runner::new(1).run(event_jobs());
    let parallel = Runner::new(8).run(event_jobs());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.label, p.label, "cells must come back in submission order");
        let s_jsonl = s.telemetry.to_jsonl(&s.label);
        let p_jsonl = p.telemetry.to_jsonl(&p.label);
        assert!(s_jsonl == p_jsonl, "JSONL for {} drifted across thread counts", s.label);
        assert!(!s.telemetry.events.is_empty(), "{}: event capture was on", s.label);
    }
}

#[test]
fn event_capture_does_not_perturb_results() {
    let quiet: Vec<Job> =
        [AppId::Cfm, AppId::Hi3].map(|a| Job::grid_cell(a, PrefetcherKind::Planaria, LEN)).into();
    let observed: Vec<Job> = [AppId::Cfm, AppId::Hi3]
        .map(|a| Job::grid_cell(a, PrefetcherKind::Planaria, LEN).config(events_cfg()))
        .into();
    assert_eq!(
        Runner::new(2).run(quiet).into_results(),
        Runner::new(2).run(observed).into_results(),
        "turning on event capture must not change a single metric"
    );
}

#[test]
fn issued_counters_sum_to_global_prefetch_count() {
    let trace = profile(AppId::HoK).scaled(LEN).build();
    let sys = MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build());
    let (result, report) = sys.run_telemetry(&trace, 0.0);

    // Every enqueue site bumps both the metric and the per-origin counter,
    // and the final drain retires everything, so the reconciliation is
    // exact — no tolerance.
    let per_origin = report.issued(PrefetchOrigin::Slp)
        + report.issued(PrefetchOrigin::Tlp)
        + report.issued(PrefetchOrigin::Baseline);
    assert_eq!(per_origin, report.total_issued());
    assert_eq!(per_origin, report.count(EventKind::PrefetchIssued));
    assert_eq!(per_origin, result.traffic.prefetch_reads, "issued events vs DRAM prefetch reads");
    assert!(per_origin > 0, "Planaria must prefetch on this workload");
}

#[test]
fn used_counters_reproduce_fig9_split_exactly() {
    let trace = profile(AppId::Hi3).scaled(150_000).build();
    let sys = MemorySystem::new(events_cfg(), PrefetcherKind::Planaria.build());
    let (result, report) = sys.run_telemetry(&trace, 0.0);

    assert_eq!(report.used(PrefetchOrigin::Slp), result.useful_slp, "SLP useful split");
    assert_eq!(report.used(PrefetchOrigin::Tlp), result.useful_tlp, "TLP useful split");
    assert!(result.useful_slp > 0 && result.useful_tlp > 0, "both origins active on HI3");
    assert!(!report.events.is_empty());
    assert!(report.events.windows(2).all(|w| w[0].cycle <= w[1].cycle), "events sorted by cycle");
}

#[test]
fn per_device_lifecycle_rows_conserve_origin_totals() {
    use planaria_common::DeviceId;
    let trace = profile(AppId::HoK).scaled(LEN).build();
    let sys = MemorySystem::new(events_cfg(), PrefetcherKind::Planaria.build());
    let (_, report) = sys.run_telemetry(&trace, 0.0);

    // Every lifecycle bump lands in exactly one device row and one origin
    // row, so the two splits always sum to the same totals.
    let pd = &report.counters.per_device;
    for (name, rows, origin_total) in [
        ("issued", &pd.issued, report.total_issued()),
        ("used", &pd.used, report.count(EventKind::PrefetchUsed)),
        ("filled", &pd.filled, report.count(EventKind::PrefetchFilled)),
        ("evicted_unused", &pd.evicted_unused, report.count(EventKind::PrefetchEvictedUnused)),
        ("late", &pd.late, report.count(EventKind::PrefetchLate)),
    ] {
        assert_eq!(rows.iter().sum::<u64>(), origin_total, "{name} split must conserve");
    }
    // HoK traces span several devices; attribution must not collapse onto
    // one row.
    let active = DeviceId::ALL.iter().filter(|d| report.issued_by(**d) > 0).count();
    assert!(active > 1, "issued prefetches attributed to {active} device(s)");
    // The JSONL summary carries the by_device block, rows in canonical
    // device order with the full five-counter column set.
    let jsonl = report.to_jsonl("hok");
    let summary = jsonl.lines().last().unwrap();
    let start = summary.find("\"by_device\":{\"").expect("summary has a by_device block");
    assert!(summary[start..].contains("{\"issued\":"), "{summary}");
}

#[test]
fn counters_stay_on_when_events_are_off() {
    let trace = profile(AppId::Qsm).scaled(LEN).build();
    let sys = MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build());
    let (_, report) = sys.run_telemetry(&trace, 0.0);
    assert!(report.events.is_empty(), "default config captures no events");
    assert_eq!(report.events_dropped, 0);
    assert!(report.total_issued() > 0, "counting sink is always on");
    assert!(report.count(EventKind::TlpLookup) > 0);
}
