//! Cross-prefetcher behavioural contrasts on targeted synthetic traffic:
//! each traffic class has a known "right" prefetcher, and the simulator
//! must rank them accordingly.

use std::sync::Arc;

use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, Runner, TraceSource};
use planaria_sim::SimResult;
use planaria_trace::synth::{FootprintSpec, RandomSpec, StreamSpec, StrideSpec};
use planaria_trace::{ComponentSpec, Trace, WorkloadSpec};

const LEN: usize = 350_000;

fn single(name: &str, spec: ComponentSpec) -> Trace {
    WorkloadSpec::new(name, name, 11, LEN).with(1.0, spec).build()
}

/// Runs every kind over one shared trace on the parallel engine, results
/// in `kinds` order.
fn run_all(trace: Trace, kinds: &[PrefetcherKind]) -> Vec<SimResult> {
    let trace = Arc::new(trace);
    let jobs = kinds
        .iter()
        .map(|&k| Job::new(k.label(), TraceSource::Shared(Arc::clone(&trace)), k))
        .collect();
    Runner::auto().run(jobs).into_results()
}

/// A footprint pool in the paper's regime: working set (~6 MB) beyond the
/// 4 MB SC, allocator-scattered pages, tight visit bursts.
fn paper_footprint() -> FootprintSpec {
    FootprintSpec { pages: 6144, page_spread: 7, intra_gap: 20, ..FootprintSpec::default() }
}

#[test]
fn streaming_favours_delta_prefetchers() {
    let trace = single("stream", ComponentSpec::Stream(StreamSpec::default()));
    let [none, nl, bop] =
        &run_all(trace, &[PrefetcherKind::None, PrefetcherKind::NextLine, PrefetcherKind::Bop])[..]
    else {
        unreachable!("three kinds in, three results out")
    };
    assert!(nl.hit_rate > none.hit_rate + 0.3, "next-line on stream: {:.3}", nl.hit_rate);
    assert!(bop.hit_rate > none.hit_rate + 0.3, "BOP on stream: {:.3}", bop.hit_rate);
    assert!(nl.prefetch_accuracy > 0.85);
}

#[test]
fn strided_traffic_favours_bop_over_next_line() {
    let trace = single(
        "stride4",
        ComponentSpec::Stride(StrideSpec { stride_blocks: 4, ..StrideSpec::default() }),
    );
    let [nl, bop] = &run_all(trace, &[PrefetcherKind::NextLine, PrefetcherKind::Bop])[..] else {
        unreachable!("two kinds in, two results out")
    };
    // Next-line prefetches X+1, which a stride-4 walk never touches.
    assert!(
        bop.hit_rate > nl.hit_rate + 0.2,
        "BOP {:.3} vs next-line {:.3} on stride-4",
        bop.hit_rate,
        nl.hit_rate
    );
    assert!(nl.prefetch_accuracy < 0.2, "next-line must waste traffic here");
}

#[test]
fn shuffled_footprints_defeat_delta_prefetchers_but_not_planaria() {
    let trace = single("fp", ComponentSpec::Footprint(paper_footprint()));
    let [none, bop, spp, planaria] = &run_all(trace, &PrefetcherKind::FIGURE_SET)[..] else {
        unreachable!("four kinds in, four results out")
    };
    // Planaria converts revisits into hits; the delta engines mostly can't.
    assert!(
        planaria.hit_rate > bop.hit_rate + 0.15,
        "planaria {:.3} vs bop {:.3}",
        planaria.hit_rate,
        bop.hit_rate
    );
    assert!(
        planaria.hit_rate > spp.hit_rate + 0.15,
        "planaria {:.3} vs spp {:.3}",
        planaria.hit_rate,
        spp.hit_rate
    );
    assert!(planaria.amat_cycles < none.amat_cycles);
    // And with far better accuracy than BOP's blind offset traffic.
    assert!(planaria.prefetch_accuracy > bop.prefetch_accuracy);
}

#[test]
fn random_traffic_punishes_aggressive_prefetchers() {
    let trace = single("rand", ComponentSpec::Random(RandomSpec::default()));
    let [none, nl, planaria] = &run_all(
        trace,
        &[PrefetcherKind::None, PrefetcherKind::NextLine, PrefetcherKind::Planaria],
    )[..] else {
        unreachable!("three kinds in, three results out")
    };
    // Next-line fires on every miss with near-zero accuracy: pure traffic.
    assert!(nl.traffic_delta(none) > 0.5, "next-line traffic {:+.3}", nl.traffic_delta(none));
    assert!(nl.prefetch_accuracy < 0.1);
    // Planaria stays quiet: no stable footprints, no similar neighbours.
    assert!(
        planaria.traffic_delta(none) < 0.1,
        "planaria traffic {:+.3} on random",
        planaria.traffic_delta(none)
    );
}

#[test]
fn planaria_outperforms_its_halves_on_mixed_traffic() {
    let trace = WorkloadSpec::new("mix", "mix", 17, LEN)
        .with(0.6, ComponentSpec::Footprint(paper_footprint()))
        .with(0.4, ComponentSpec::Neighbor(planaria_trace::synth::NeighborSpec::default()))
        .build();
    let [slp, tlp, both] = &run_all(
        trace,
        &[PrefetcherKind::SlpOnly, PrefetcherKind::TlpOnly, PrefetcherKind::Planaria],
    )[..] else {
        unreachable!("three kinds in, three results out")
    };
    assert!(
        both.hit_rate >= slp.hit_rate - 1e-9,
        "composite {:.3} vs SLP {:.3}",
        both.hit_rate,
        slp.hit_rate
    );
    assert!(
        both.hit_rate >= tlp.hit_rate - 1e-9,
        "composite {:.3} vs TLP {:.3}",
        both.hit_rate,
        tlp.hit_rate
    );
    // Each half contributes usefully on this mix.
    assert!(both.useful_slp > 0 && both.useful_tlp > 0);
}
