//! Streaming engine equivalence: the pull-based [`AccessStream`] path
//! must be bit-identical to the materialized path everywhere it is
//! offered — open loop, closed loop, through the parallel runner at any
//! thread count, under any chunk schedule, and across a round trip
//! through the on-disk `planaria-trace-v1` format (whose byte layout is
//! pinned here exactly as TRACE_FORMAT.md specifies it).

use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PhysAddr};
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, Runner};
use planaria_sim::{MemorySystem, SystemConfig, TrafficConfig, TrafficModel};
use planaria_trace::apps::{profile, AppId};
use planaria_trace::io::{read_chunked, write_chunked, ChunkedTraceReader, ParseTraceError};
use planaria_trace::{AccessStream, Trace};

fn sys() -> MemorySystem {
    MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build())
}

#[test]
fn streamed_open_loop_is_bit_identical_to_materialized() {
    for app in [AppId::HoK, AppId::TikT] {
        let spec = profile(app).scaled(20_000);
        let materialized = sys().run(&spec.build());
        let streamed = sys().run_stream(&mut spec.stream());
        assert_eq!(materialized, streamed, "{app:?}: streamed open-loop run diverged");
        assert_eq!(materialized.fingerprint(), streamed.fingerprint());
    }
}

#[test]
fn streamed_warmup_is_bit_identical_to_materialized() {
    let spec = profile(AppId::Fort).scaled(20_000);
    let materialized = sys().run_with_warmup(&spec.build(), 0.25);
    let streamed = sys().run_stream_with_warmup(&mut spec.stream(), 0.25);
    assert_eq!(materialized, streamed, "streamed warmup run diverged");
}

#[test]
fn streamed_closed_loop_is_bit_identical_to_materialized() {
    let spec = profile(AppId::Cfm).scaled(15_000);
    let model = |window| TrafficModel::new(TrafficConfig::new(window));
    for window in [2, 8] {
        let (mr, mc) = model(window).run(sys(), &spec.build());
        let (sr, sc) = model(window).run_stream(sys(), &mut spec.stream());
        assert_eq!(mr, sr, "window {window}: streamed closed-loop result diverged");
        assert_eq!(mc, sc, "window {window}: streamed closed-loop report diverged");
    }
}

#[test]
fn runner_streamed_jobs_are_thread_count_independent() {
    let jobs = || -> Vec<Job> {
        [AppId::Cfm, AppId::HoK, AppId::Ko, AppId::Pm]
            .iter()
            .map(|&app| Job::grid_cell(app, PrefetcherKind::Planaria, 10_000).streamed())
            .collect()
    };
    let serial = Runner::new(1).run(jobs()).into_results();
    let fanned = Runner::new(8).run(jobs()).into_results();
    assert_eq!(serial, fanned, "streamed results must not depend on worker thread count");
    // And streamed cells must equal their materialized twins.
    let materialized = Runner::new(1)
        .run(
            [AppId::Cfm, AppId::HoK, AppId::Ko, AppId::Pm]
                .iter()
                .map(|&app| Job::grid_cell(app, PrefetcherKind::Planaria, 10_000))
                .collect::<Vec<_>>(),
        )
        .into_results();
    assert_eq!(serial, materialized, "streamed jobs must match materialized jobs");
}

#[test]
fn pack_round_trip_preserves_the_trace_exactly() {
    let trace = profile(AppId::IdV).scaled(12_000).build();
    let mut bytes = Vec::new();
    write_chunked(&trace, &mut bytes).expect("in-memory write cannot fail");

    // Whole-file decode.
    let back = read_chunked(&bytes[..]).expect("round trip must parse");
    assert_eq!(trace.name(), back.name());
    assert_eq!(trace.accesses(), back.accesses());

    // Streaming decode through the engine: replaying the packed bytes must
    // give the same simulation result as the in-memory trace.
    let mut reader = ChunkedTraceReader::new(&bytes[..]).expect("header must parse");
    assert_eq!(reader.total_len(), Some(trace.len() as u64));
    let streamed = sys().run_stream(&mut reader);
    let materialized = sys().run(&trace);
    assert_eq!(materialized, streamed, "packed replay diverged from in-memory run");
}

/// Clips every pull to at most `cap` records, exercising arbitrary chunk
/// schedules against a stream that would otherwise fill `max`.
struct Rechunk<S> {
    inner: S,
    cap: usize,
}

impl<S: AccessStream> AccessStream for Rechunk<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn total_len(&self) -> Option<u64> {
        self.inner.total_len()
    }

    fn next_chunk(&mut self, max: usize, out: &mut Vec<MemAccess>) -> usize {
        self.inner.next_chunk(max.min(self.cap), out)
    }

    fn error(&self) -> Option<&ParseTraceError> {
        self.inner.error()
    }
}

#[test]
fn chunk_schedule_does_not_change_results() {
    let spec = profile(AppId::Qsm).scaled(15_000);
    let reference = sys().run(&spec.build());
    for cap in [1usize, 4096, 1 << 20] {
        let mut stream = Rechunk { inner: spec.stream(), cap };
        let r = sys().run_stream(&mut stream);
        assert_eq!(reference, r, "chunk cap {cap} changed the simulation result");
    }
}

#[test]
fn v1_byte_layout_is_pinned() {
    // Two accesses with every field exercised; the expected bytes below
    // are the normative TRACE_FORMAT.md encoding, written out by hand.
    // If this test fails, the format changed: bump the version, do not
    // reinterpret v1.
    let trace = Trace::new(
        "ab",
        vec![
            MemAccess::new(
                PhysAddr::new(0x1122_3344_5566_7788),
                AccessKind::Read,
                DeviceId::Cpu(3),
                Cycle::new(5),
            ),
            MemAccess::new(
                PhysAddr::new(0x00AA),
                AccessKind::Write,
                DeviceId::Gpu,
                Cycle::new(0x0100),
            ),
        ],
    );
    let mut bytes = Vec::new();
    write_chunked(&trace, &mut bytes).expect("in-memory write cannot fail");

    let mut expected = Vec::new();
    expected.extend_from_slice(b"PLNTRACE"); // magic
    expected.extend_from_slice(&1u32.to_le_bytes()); // version
    expected.extend_from_slice(&0u32.to_le_bytes()); // flags
    expected.extend_from_slice(&2u64.to_le_bytes()); // total accesses
    expected.extend_from_slice(&2u16.to_le_bytes()); // name length
    expected.extend_from_slice(b"ab"); // name
    expected.extend_from_slice(&2u32.to_le_bytes()); // frame: 2 records
    expected.extend_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes()); // addr
    expected.extend_from_slice(&5u64.to_le_bytes()); // cycle
    expected.push(0); // kind: Read
    expected.push(3); // device: Cpu(3)
    expected.extend_from_slice(&0x00AAu64.to_le_bytes()); // addr
    expected.extend_from_slice(&0x0100u64.to_le_bytes()); // cycle
    expected.push(1); // kind: Write
    expected.push(8); // device: Gpu
    expected.extend_from_slice(&0u32.to_le_bytes()); // terminator frame

    assert_eq!(bytes, expected, "planaria-trace-v1 byte layout changed");

    // And the pinned bytes decode back to the original trace.
    let back = read_chunked(&expected[..]).expect("pinned bytes must parse");
    assert_eq!(back.name(), "ab");
    assert_eq!(back.accesses(), trace.accesses());
}
