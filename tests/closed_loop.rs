//! The closed-loop traffic model's contract: an unbounded window is
//! *exactly* the open-loop simulator (so the default figure pipeline is
//! untouched), a small window visibly delays contended requestors, and
//! every per-device attribution row conserves the aggregate it splits.

use planaria_common::{DeviceId, PrefetchOrigin};
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, Runner};
use planaria_sim::{MemorySystem, SystemConfig, TelemetryConfig, TrafficConfig, TrafficModel};
use planaria_trace::apps::{profile, AppId};

const LEN: usize = 30_000;

fn system() -> MemorySystem {
    MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build())
}

#[test]
fn unbounded_window_is_bit_identical_to_open_loop() {
    for app in [AppId::HoK, AppId::Cfm] {
        let trace = profile(app).scaled(LEN).build();
        let open = system().run(&trace);
        let (closed, report) =
            TrafficModel::new(TrafficConfig { window: usize::MAX }).run(system(), &trace);
        assert_eq!(open, closed, "{app:?}: unbounded closed loop must equal open loop");
        // With no stall anywhere, every device keeps its recorded schedule.
        assert!(
            report.devices.iter().all(|d| d.derived_finish >= d.open_loop_finish),
            "completions can only come after arrivals"
        );
    }
}

#[test]
fn small_window_delays_a_contended_device() {
    let trace = profile(AppId::HoK).scaled(LEN).build();
    let (result, report) = TrafficModel::new(TrafficConfig::new(1)).run(system(), &trace);
    assert_eq!(result.accesses, trace.len() as u64, "closed loop drops no accesses");
    // The acceptance bar: under DRAM contention with a tiny window, at
    // least one device's derived completion time measurably exceeds its
    // recorded (open-loop) finish time.
    let delayed =
        report.devices.iter().filter(|d| d.derived_finish > d.open_loop_finish + 1_000).count();
    assert!(delayed >= 1, "window=1 must measurably delay a device: {:#?}", report.devices);
    assert!(report.unfairness > 1.0, "contended devices slow down unevenly");
}

#[test]
fn wider_windows_monotonically_approach_open_loop() {
    let trace = profile(AppId::HoK).scaled(LEN).build();
    let spans: Vec<u64> = [1usize, 8, usize::MAX]
        .iter()
        .map(|&w| {
            let (_, report) = TrafficModel::new(TrafficConfig { window: w }).run(system(), &trace);
            report.devices.iter().map(|d| d.derived_finish).max().unwrap()
        })
        .collect();
    assert!(spans[0] >= spans[1] && spans[1] >= spans[2], "finish times {spans:?}");
}

#[test]
fn per_device_cache_rows_conserve_aggregates() {
    let trace = profile(AppId::Hi3).scaled(LEN).build();
    let (result, _closed, report) =
        TrafficModel::new(TrafficConfig::new(4)).run_telemetry(system(), &trace);

    // Hits/accesses: summing the per-device rows reproduces the headline
    // hit rate exactly.
    let accesses: u64 = result.device_stats.iter().map(|d| d.accesses).sum();
    let hits: u64 = result.device_stats.iter().map(|d| d.hits).sum();
    assert_eq!(accesses, result.accesses);
    assert!((hits as f64 / accesses as f64 - result.hit_rate).abs() < 1e-12);

    // Issued prefetches: per-device telemetry rows sum to the per-origin
    // sum, which equals DRAM prefetch reads (the fig9 accounting).
    let by_device: u64 = DeviceId::ALL.iter().map(|&d| report.issued_by(d)).sum();
    let by_origin = report.issued(PrefetchOrigin::Slp)
        + report.issued(PrefetchOrigin::Tlp)
        + report.issued(PrefetchOrigin::Baseline);
    assert_eq!(by_device, by_origin, "issued: device split vs origin split");
    assert_eq!(by_device, result.traffic.prefetch_reads);
    assert!(by_device > 0, "Planaria must prefetch on HI3");

    // Used prefetches: the device split conserves the fig9 SLP/TLP split.
    let used_by_device: u64 = DeviceId::ALL.iter().map(|&d| report.used_by(d)).sum();
    assert_eq!(
        used_by_device,
        result.useful_slp + result.useful_tlp + report.used(PrefetchOrigin::Baseline)
    );
}

#[test]
fn open_loop_per_device_rows_also_conserve() {
    // The attribution layer is always on; conservation must hold for the
    // default open-loop path too (including the per-device AMAT sums).
    let trace = profile(AppId::Fort).scaled(LEN).build();
    let result = system().run(&trace);
    let accesses: u64 = result.device_stats.iter().map(|d| d.accesses).sum();
    let hits: u64 = result.device_stats.iter().map(|d| d.hits).sum();
    assert_eq!(accesses, result.accesses);
    assert!((hits as f64 / accesses as f64 - result.hit_rate).abs() < 1e-12);
    let weighted_amat: f64 =
        result.device_stats.iter().map(|d| d.amat_cycles * d.accesses as f64).sum::<f64>()
            / accesses as f64;
    assert!(
        (weighted_amat - result.amat_cycles).abs() < 1e-9,
        "per-device AMAT must reaggregate: {} vs {}",
        weighted_amat,
        result.amat_cycles
    );
    assert!(result.device_stats.len() > 1, "Fort exercises several devices");
}

#[test]
fn closed_loop_is_deterministic_across_threads_and_hashers() {
    use planaria_hash::{set_global_hasher, HasherKind};
    let jobs = || -> Vec<Job> {
        [AppId::HoK, AppId::Cfm]
            .iter()
            .map(|&app| {
                Job::grid_cell(app, PrefetcherKind::Planaria, LEN)
                    .config(SystemConfig {
                        telemetry: TelemetryConfig::events(),
                        ..SystemConfig::default()
                    })
                    .traffic(TrafficConfig::new(2))
            })
            .collect()
    };
    set_global_hasher(HasherKind::Std);
    let serial = Runner::new(1).run(jobs());
    set_global_hasher(HasherKind::Fx);
    let parallel = Runner::new(8).run(jobs());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.result, p.result, "{}: closed-loop results drifted", s.label);
        assert_eq!(s.closed_loop, p.closed_loop, "{}: slowdown report drifted", s.label);
        assert_eq!(
            s.telemetry.to_jsonl(&s.label),
            p.telemetry.to_jsonl(&p.label),
            "{}: closed-loop telemetry JSONL drifted",
            s.label
        );
    }
}

#[test]
fn open_loop_results_unchanged_when_traffic_model_disabled() {
    // A Job without `.traffic(..)` must take the plain open-loop path —
    // byte-identical to driving MemorySystem::run directly.
    let trace = profile(AppId::Qsm).scaled(LEN).build();
    let direct = system().run(&trace);
    let via_runner = Runner::new(1)
        .run(vec![Job::grid_cell(AppId::Qsm, PrefetcherKind::Planaria, LEN)])
        .into_results()
        .remove(0);
    assert_eq!(direct, via_runner);
}
