//! Regression guard: key metrics of the reproduction must stay inside the
//! bands established in EXPERIMENTS.md. Bands (not exact values) are used
//! so that legitimate parameter tuning doesn't trip the test, but a
//! behavioural regression — Planaria losing its edge, BOP going quiet,
//! power accounting drifting — does.
//!
//! The runs use 400 k-access traces (shape-stable and fast); the bands are
//! correspondingly wider than the 1 M-access EXPERIMENTS.md numbers.

use planaria_sim::experiment::{mean, run_app_suite, PrefetcherKind};
use planaria_sim::runner::{Job, Runner};
use planaria_trace::apps::AppId;

const LEN: usize = 400_000;
/// A representative app triple: SLP-led, mixed, TLP-led.
const APPS: [AppId; 3] = [AppId::Cfm, AppId::HoK, AppId::Fort];

struct Deltas {
    amat_vs_none: Vec<f64>,
    bop_traffic: Vec<f64>,
    planaria_traffic: Vec<f64>,
    bop_power: Vec<f64>,
    planaria_power: Vec<f64>,
    planaria_accuracy: Vec<f64>,
}

fn collect() -> Deltas {
    let mut d = Deltas {
        amat_vs_none: Vec::new(),
        bop_traffic: Vec::new(),
        planaria_traffic: Vec::new(),
        bop_power: Vec::new(),
        planaria_power: Vec::new(),
        planaria_accuracy: Vec::new(),
    };
    // One parallel batch over the whole (app × prefetcher) grid — results
    // are bit-identical to the serial path (tests/parallel_engine.rs), so
    // the bands below are thread-count independent.
    let jobs: Vec<Job> = APPS
        .iter()
        .flat_map(|&app| PrefetcherKind::FIGURE_SET.map(|k| Job::grid_cell(app, k, LEN)))
        .collect();
    let rows = Runner::auto().run(jobs).into_rows(PrefetcherKind::FIGURE_SET.len());
    for rs in rows {
        let (none, bop, _spp, planaria) = (&rs[0], &rs[1], &rs[2], &rs[3]);
        d.amat_vs_none.push(planaria.amat_delta(none));
        d.bop_traffic.push(bop.traffic_delta(none));
        d.planaria_traffic.push(planaria.traffic_delta(none));
        d.bop_power.push(bop.power_delta(none));
        d.planaria_power.push(planaria.power_delta(none));
        d.planaria_accuracy.push(planaria.prefetch_accuracy);
    }
    d
}

#[test]
fn headline_shapes_hold() {
    let d = collect();
    let amat = mean(d.amat_vs_none.iter().copied());
    assert!(
        (-0.35..=-0.08).contains(&amat),
        "Planaria AMAT delta drifted out of band: {amat:+.3} (expect ≈ -0.2)"
    );

    let planaria_traffic = mean(d.planaria_traffic.iter().copied());
    assert!(
        planaria_traffic < 0.10,
        "Planaria traffic overhead {planaria_traffic:+.3} should stay small"
    );
    let bop_traffic = mean(d.bop_traffic.iter().copied());
    assert!(
        bop_traffic > 0.15,
        "BOP traffic overhead {bop_traffic:+.3} suspiciously small — throttle broken?"
    );
    assert!(
        bop_traffic > 3.0 * planaria_traffic.max(0.01),
        "BOP ({bop_traffic:+.3}) must dwarf Planaria ({planaria_traffic:+.3}) in traffic"
    );

    let planaria_power = mean(d.planaria_power.iter().copied());
    assert!(
        planaria_power.abs() < 0.05,
        "Planaria power overhead {planaria_power:+.3} must stay near zero"
    );
    let bop_power = mean(d.bop_power.iter().copied());
    assert!(bop_power > 0.08, "BOP power overhead {bop_power:+.3} lost its penalty");

    let acc = mean(d.planaria_accuracy.iter().copied());
    assert!(acc > 0.75, "Planaria accuracy {acc:.3} fell below its design point");
}

#[test]
fn storage_stays_at_paper_budget() {
    use planaria_core::{storage, PlanariaConfig};
    let kb = storage::planaria_kilobytes(&PlanariaConfig::default());
    assert!((kb - 345.2).abs() < 2.0, "storage {kb:.1} KB drifted from 345.2 KB");
}

#[test]
fn fort_stays_tlp_dominated_and_hi3_slp_dominated() {
    for (app, slp_dominates) in [(AppId::Fort, false), (AppId::Hi3, true)] {
        let rs = run_app_suite(app, &[PrefetcherKind::Planaria], LEN);
        let r = &rs[0];
        let total = (r.useful_slp + r.useful_tlp).max(1);
        let slp_share = r.useful_slp as f64 / total as f64;
        if slp_dominates {
            assert!(slp_share > 0.6, "{:?}: SLP share {slp_share:.2} too low", app);
        } else {
            assert!(slp_share < 0.4, "{:?}: SLP share {slp_share:.2} too high", app);
        }
    }
}
