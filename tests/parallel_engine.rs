//! The parallel experiment engine's contract: fan a grid across worker
//! threads and get *exactly* the serial answer — same results, same order
//! — while building each distinct trace once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, Runner, TraceSource};
use planaria_sim::{GovernorConfig, SystemConfig};
use planaria_trace::apps::{profile, AppId};

const LEN: usize = 30_000;
const APPS: [AppId; 2] = [AppId::Cfm, AppId::Fort];

fn grid_jobs() -> Vec<Job> {
    APPS.iter()
        .flat_map(|&app| PrefetcherKind::FIGURE_SET.map(|k| Job::grid_cell(app, k, LEN)))
        .collect()
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let serial = Runner::new(1).run(grid_jobs());
    let parallel = Runner::new(4).run(grid_jobs());
    assert_eq!(parallel.threads, 4.min(grid_jobs().len()));
    // SimResult derives PartialEq over every metric field (floats
    // included), so this is bit-level equality of the whole grid.
    assert_eq!(
        serial.clone().into_results(),
        parallel.clone().into_results(),
        "thread fan-out must not perturb simulation results"
    );
    // Cells come back in submission order, not completion order.
    let labels: Vec<&str> = parallel.cells.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels[0], "CFM/None");
    assert_eq!(labels[4], "Fort/None");
    assert_eq!(labels[7], "Fort/Planaria");
}

#[test]
fn thread_count_sweep_is_deterministic() {
    let reference = Runner::new(1).run(grid_jobs()).into_results();
    for threads in [2, 3, 8, 16] {
        let results = Runner::new(threads).run(grid_jobs()).into_results();
        assert_eq!(results, reference, "results drifted at {threads} threads");
    }
}

#[test]
fn each_distinct_trace_builds_exactly_once() {
    // 8 jobs over 2 apps at one length: 2 builds. The report's counter is
    // incremented inside the cache's build closure, so any duplicate
    // synthesis (racy double-build, per-job rebuild) shows up here.
    let report = Runner::new(4).run(grid_jobs());
    assert_eq!(report.trace_builds, 2);

    // Same app at two lengths is two distinct cache keys.
    let report = Runner::new(4).run(vec![
        Job::grid_cell(AppId::Hi3, PrefetcherKind::None, 1_000),
        Job::grid_cell(AppId::Hi3, PrefetcherKind::None, 2_000),
        Job::grid_cell(AppId::Hi3, PrefetcherKind::NextLine, 1_000),
        Job::grid_cell(AppId::Hi3, PrefetcherKind::NextLine, 2_000),
    ]);
    assert_eq!(report.trace_builds, 2);

    // Shared traces bypass the cache entirely.
    let trace = Arc::new(profile(AppId::Qsm).scaled(1_000).build());
    let report = Runner::new(2).run(vec![
        Job::new("a", TraceSource::Shared(Arc::clone(&trace)), PrefetcherKind::None),
        Job::new("b", TraceSource::Shared(trace), PrefetcherKind::None),
    ]);
    assert_eq!(report.trace_builds, 0);
}

#[test]
fn engine_honours_per_job_config_and_warmup() {
    // Two cells differing only in governor config and warmup must match
    // the direct MemorySystem paths exactly.
    let trace = Arc::new(profile(AppId::HoK).scaled(LEN).build());
    let governed_cfg =
        SystemConfig { governor: Some(GovernorConfig::default()), ..SystemConfig::default() };
    let report = Runner::new(2).run(vec![
        Job::new("plain", TraceSource::Shared(Arc::clone(&trace)), PrefetcherKind::Bop),
        Job::new("gov", TraceSource::Shared(Arc::clone(&trace)), PrefetcherKind::Bop)
            .config(governed_cfg),
        Job::new("warm", TraceSource::Shared(Arc::clone(&trace)), PrefetcherKind::Bop).warmup(0.5),
    ]);
    let results = report.into_results();

    let direct_plain =
        planaria_sim::MemorySystem::new(SystemConfig::default(), PrefetcherKind::Bop.build())
            .run(&trace);
    let direct_warm =
        planaria_sim::MemorySystem::new(SystemConfig::default(), PrefetcherKind::Bop.build())
            .run_with_warmup(&trace, 0.5);

    assert_eq!(results[0], direct_plain);
    assert_eq!(results[2], direct_warm);
    assert_ne!(results[0], results[1], "governor config must reach the cell");
    assert_eq!(results[2].accesses, (LEN / 2) as u64);
}

#[test]
fn progress_observation_does_not_perturb_results() {
    let quiet = Runner::new(2).run(grid_jobs()).into_results();
    let ticks = Arc::new(AtomicUsize::new(0));
    let sink = Arc::clone(&ticks);
    let observed = Runner::new(2)
        .progress_every(5_000)
        .with_progress(move |e| {
            assert!(e.done <= e.trace_len);
            assert!((0.0..=1.0).contains(&e.hit_rate));
            assert!(e.job < e.total);
            sink.fetch_add(1, Ordering::Relaxed);
        })
        .run(grid_jobs())
        .into_results();
    assert_eq!(quiet, observed);
    // 8 cells × (30_000 / 5_000) samples each.
    assert_eq!(ticks.load(Ordering::Relaxed), 8 * 6);
}

#[test]
fn report_observability_is_consistent() {
    let report = Runner::new(2).run(grid_jobs());
    let slowest = report.slowest().expect("nonempty batch");
    assert!(report.cells.iter().all(|c| c.wall <= slowest.wall));
    assert_eq!(
        report.total_sim_cycles(),
        report.cells.iter().map(|c| c.result.duration_cycles).sum::<u64>()
    );
    assert!(report.sim_cycles_per_sec() > 0.0);
    let summary = report.summary();
    assert!(summary.contains("8 cells"), "summary was: {summary}");
    assert!(summary.contains("slowest cell"), "summary was: {summary}");
}
