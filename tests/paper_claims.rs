//! The paper's *motivation* claims, asserted on the synthetic workloads:
//! these are the statistical properties the whole design rests on, so they
//! are pinned as tests rather than only printed by the figure harnesses.

use planaria_analysis::{learnable_fraction, overlap_rate, reuse_histogram};
use planaria_trace::apps::{profile, AppId};

const LEN: usize = 150_000;

#[test]
fn observation1_footprint_overlap_exceeds_80_percent() {
    // Figure 4's claim, on the footprint-heavy apps (the methodology needs
    // at least two windows per page, i.e. a few revisit rounds — the
    // full-length harness covers all ten apps).
    for app in [AppId::Cfm, AppId::Hi3, AppId::Qsm] {
        let trace = profile(app).scaled(400_000).build();
        let r = overlap_rate(&trace);
        assert!(
            r.mean_overlap > 0.80,
            "{}: overlap {:.3} below the paper's 80% floor",
            app.abbr(),
            r.mean_overlap
        );
        assert!(r.window_pairs > 100, "{}: too few windows measured", app.abbr());
    }
}

#[test]
fn observation1_reuse_distances_are_long() {
    // "The reuse distance of the snapshots is usually long": the median
    // block reuse distance dwarfs any plausible cache capacity.
    for app in [AppId::Cfm, AppId::HoK] {
        let trace = profile(app).scaled(LEN).build();
        let r = reuse_histogram(&trace);
        let median = r.median_distance().expect("apps revisit blocks");
        assert!(
            median >= 4096,
            "{}: median reuse distance {median} too short for the SC story",
            app.abbr()
        );
    }
}

#[test]
fn observation2_learnable_fraction_grows_with_distance() {
    // Figure 5's claim: a meaningful fraction of pages is learnable, and
    // the fraction grows monotonically with the distance threshold.
    for app in [AppId::HoK, AppId::Fort] {
        let trace = profile(app).scaled(LEN).build();
        let f4 = learnable_fraction(&trace, 4).learnable_fraction;
        let f16 = learnable_fraction(&trace, 16).learnable_fraction;
        let f64_ = learnable_fraction(&trace, 64).learnable_fraction;
        assert!(
            f4 <= f16 && f16 <= f64_,
            "{}: fractions not monotone: {f4:.3} {f16:.3} {f64_:.3}",
            app.abbr()
        );
        assert!(f64_ > 0.05, "{}: learnable fraction {f64_:.3} vanishingly small", app.abbr());
        assert!(f64_ < 0.95, "{}: learnable fraction {f64_:.3} implausibly universal", app.abbr());
    }
}

#[test]
fn fort_has_the_highest_neighbour_fraction() {
    // Fort's TLP dominance (Figure 9) is rooted in its trace: it must be
    // the most neighbour-rich app.
    let fort = learnable_fraction(&profile(AppId::Fort).scaled(LEN).build(), 64).learnable_fraction;
    for app in [AppId::Cfm, AppId::Hi3, AppId::Nba2] {
        let other = learnable_fraction(&profile(app).scaled(LEN).build(), 64).learnable_fraction;
        assert!(fort > other, "Fort ({fort:.3}) must out-neighbour {} ({other:.3})", app.abbr());
    }
}

#[test]
fn stability_knob_orders_the_apps() {
    // HI3 (mutation 0.25) must show higher overlap than TikT (0.8): the
    // per-app Figure 4 levels are a controlled input, not an accident.
    let hi3 = overlap_rate(&profile(AppId::Hi3).scaled(LEN).build()).mean_overlap;
    let tikt = overlap_rate(&profile(AppId::TikT).scaled(LEN).build()).mean_overlap;
    assert!(hi3 > tikt, "HI3 {hi3:.3} must exceed TikT {tikt:.3}");
}
