//! Determinism: identical configurations must produce bit-identical
//! results — the property that makes every figure in this repository
//! regenerable.

use planaria_sim::experiment::{run_app, PrefetcherKind};
use planaria_trace::apps::{profile, AppId};

#[test]
fn trace_generation_is_deterministic() {
    let a = profile(AppId::TikT).scaled(30_000).build();
    let b = profile(AppId::TikT).scaled(30_000).build();
    assert_eq!(a.accesses(), b.accesses());
}

#[test]
fn full_simulation_is_deterministic() {
    for kind in [PrefetcherKind::Planaria, PrefetcherKind::Bop, PrefetcherKind::Spp] {
        let r1 = run_app(AppId::Fort, kind, 25_000);
        let r2 = run_app(AppId::Fort, kind, 25_000);
        assert_eq!(r1, r2, "{kind} run diverged");
    }
}

#[test]
fn results_are_hasher_independent() {
    use planaria_hash::{set_global_hasher, HasherKind};
    // Any decision that leaks hash-map iteration order into the simulation
    // (e.g. a victim scan tie-broken by whichever entry the map yields
    // first) would show up here as a result diff between hashers. Maps
    // capture the global kind at construction, so each run below is
    // internally consistent even though other tests share the process.
    set_global_hasher(HasherKind::Std);
    let under_std = run_app(AppId::HoK, PrefetcherKind::Planaria, 25_000);
    set_global_hasher(HasherKind::Fx);
    let under_fx = run_app(AppId::HoK, PrefetcherKind::Planaria, 25_000);
    assert_eq!(under_std, under_fx, "results must not depend on hash-map iteration order");
}

#[test]
fn thread_count_does_not_change_results() {
    use planaria_sim::runner::{Job, Runner};
    // The rewritten hot path (SoA tables, derived Ref rows, batched
    // dispatch) must stay bit-identical whether the grid runs serially or
    // fanned out over workers: every SimResult field, including the f64
    // bit patterns inside, compares equal across thread counts.
    let jobs = || -> Vec<Job> {
        [AppId::Cfm, AppId::HoK, AppId::Fort]
            .iter()
            .flat_map(|&app| {
                [PrefetcherKind::Planaria, PrefetcherKind::Bop, PrefetcherKind::Spp]
                    .iter()
                    .map(move |&kind| Job::grid_cell(app, kind, 15_000))
            })
            .collect()
    };
    let serial = Runner::new(1).run(jobs()).into_results();
    let fanned = Runner::new(8).run(jobs()).into_results();
    assert_eq!(serial, fanned, "results must not depend on worker thread count");
}

#[test]
fn closed_loop_simulation_is_deterministic() {
    use planaria_sim::{MemorySystem, SystemConfig, TrafficConfig, TrafficModel};
    let run = || {
        let trace = profile(AppId::Fort).scaled(20_000).build();
        let sys = MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build());
        TrafficModel::new(TrafficConfig::new(2)).run(sys, &trace)
    };
    let (r1, c1) = run();
    let (r2, c2) = run();
    assert_eq!(r1, r2, "closed-loop result diverged");
    assert_eq!(c1, c2, "closed-loop slowdown report diverged");
}

#[test]
fn scaling_controls_length_and_extends_coverage() {
    // (Exact prefix preservation does not hold: the per-component shares
    // change with the target length, so the merge boundary shifts.)
    let short = profile(AppId::Cfm).scaled(10_000).build();
    let long = profile(AppId::Cfm).scaled(20_000).build();
    assert_eq!(short.len(), 10_000);
    assert_eq!(long.len(), 20_000);
    assert!(long.unique_pages() >= short.unique_pages());
    assert!(long.duration() >= short.duration());
}

#[test]
fn distinct_seeds_change_results() {
    let base = profile(AppId::Cfm).scaled(10_000);
    let mut reseeded = base.clone();
    reseeded.seed ^= 0xDEAD_BEEF;
    assert_ne!(base.build().accesses(), reseeded.build().accesses());
}
