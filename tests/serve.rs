//! Integration tests for `planaria-serve`: the served execution model is
//! bit-identical to the batch closed loop, snapshots restore with exact
//! continuations, and results are independent of worker count.

use planaria_common::json;
use planaria_serve::{DeviceSpec, Push, ServeConfig, ServedDevice, Service, SNAPSHOT_SCHEMA};
use planaria_sim::{MemorySystem, PrefetcherKind, TrafficConfig, TrafficModel};
use planaria_trace::apps::AppId;

/// A small spec that exercises the full Planaria stack quickly.
fn spec(id: u64, app: AppId, length: usize) -> DeviceSpec {
    DeviceSpec::new(id, app).scaled(length)
}

/// Runs a device to completion the way the service does: ingest a round
/// quantum, pump a round quantum, repeat.
fn serve_to_completion(dev: &mut ServedDevice, ingest: usize, pump: usize) {
    while !dev.is_done() {
        dev.ingest(ingest);
        dev.pump(pump);
    }
}

#[test]
fn served_device_matches_batch_closed_loop_bit_identically() {
    let spec = spec(3, AppId::HoK, 4_000);

    // Batch: the existing TrafficModel closed loop over the same stream.
    let sys = MemorySystem::new(spec.system, spec.kind.build());
    let batch = TrafficModel::new(TrafficConfig::new(spec.window))
        .run_stream_telemetry(sys, &mut spec.workload().stream());

    // Served: same accesses through the mailbox in small awkward quanta.
    let mut dev = ServedDevice::from_spec(spec);
    serve_to_completion(&mut dev, 37, 113);
    let served = dev.into_report();

    assert_eq!(batch.0, served.result, "SimResult must be bit-identical");
    assert_eq!(batch.1, served.closed_loop, "closed-loop outcomes must be bit-identical");
    assert_eq!(batch.2, served.telemetry, "telemetry must be bit-identical");
}

#[test]
fn snapshot_restore_continues_bit_identically() {
    let spec = spec(11, AppId::Qsm, 3_000);

    // Reference: an uninterrupted served run.
    let mut uninterrupted = ServedDevice::from_spec(spec.clone());
    serve_to_completion(&mut uninterrupted, 256, 4_096);
    let reference = uninterrupted.into_report();

    // Interrupted: run ~half the session, snapshot, restore, finish.
    let mut original = ServedDevice::from_spec(spec.clone());
    original.ingest(1_500);
    original.quiesce();
    let doc = original.snapshot().expect("mid-session snapshot");
    assert!(doc.contains(SNAPSHOT_SCHEMA));

    let parsed = json::parse(&doc).expect("snapshot is valid JSON");
    let mut restored = ServedDevice::restore(&parsed, spec.system).expect("snapshot restores");
    assert_eq!(restored.consumed(), original.consumed(), "replay position restored");
    assert_eq!(restored.injected(), original.injected(), "simulated progress restored");

    serve_to_completion(&mut restored, 256, 4_096);
    let continued = restored.into_report();
    assert_eq!(reference, continued, "restored continuation must be bit-identical");

    // The interrupted original, continued in place, agrees too.
    serve_to_completion(&mut original, 256, 4_096);
    assert_eq!(&reference, original.report().unwrap());
}

#[test]
fn snapshot_after_eof_restores_the_eof_state() {
    let spec = spec(5, AppId::Pm, 500);
    let mut dev = ServedDevice::from_spec(spec.clone());
    // Consume the whole stream but keep the device unfinished by never
    // closing: ingest until the source latches eof.
    while dev.ingest(usize::MAX) > 0 {
        dev.quiesce();
    }
    dev.quiesce();
    if dev.is_done() {
        // Stream ends exactly at a mailbox boundary; nothing to snapshot.
        return;
    }
    let doc = dev.snapshot().expect("eof snapshot");
    let parsed = json::parse(&doc).unwrap();
    let restored = ServedDevice::restore(&parsed, spec.system).unwrap();
    assert_eq!(restored.consumed(), dev.consumed());
}

#[test]
fn worker_count_does_not_change_results() {
    let devices = |n: u64| -> Vec<ServedDevice> {
        (0..n)
            .map(|id| {
                let app = AppId::ALL[(id % AppId::ALL.len() as u64) as usize];
                let mut s = spec(id, app, 600);
                s.kind = PrefetcherKind::Planaria;
                ServedDevice::from_spec(s)
            })
            .collect()
    };

    let run = |workers: usize| {
        let cfg = ServeConfig { workers, keep_device_reports: true, ..ServeConfig::default() };
        Service::new(cfg).run(devices(24))
    };

    let one = run(1);
    let eight = run(8);
    assert_eq!(one.shards, eight.shards, "per-shard summaries must not depend on workers");
    assert_eq!(
        one.device_reports, eight.device_reports,
        "per-device reports must not depend on workers"
    );
    assert_eq!(one.devices(), 24);
    assert_eq!(one.total_accesses(), 24 * 600);
}

#[test]
fn mailbox_backpressure_never_drops_or_reorders() {
    let mut spec = spec(0, AppId::TikT, 2_000);
    spec.mailbox = 4; // aggressively small: constant backpressure

    // Batch reference over the identical access sequence.
    let workload = spec.workload();
    let sys = MemorySystem::new(spec.system, spec.kind.build());
    let batch = TrafficModel::new(TrafficConfig::new(spec.window))
        .run_stream_telemetry(sys, &mut workload.stream());

    // External producer: push every access, retrying on Full with tiny
    // pump budgets in between. If backpressure dropped or reordered
    // anything the final report could not be bit-identical.
    let trace = workload.build();
    let mut dev = ServedDevice::external(spec);
    let mut rejections = 0u64;
    for &a in trace.accesses() {
        loop {
            match dev.try_push(a) {
                Push::Accepted => break,
                Push::Full => {
                    rejections += 1;
                    dev.pump(16);
                }
            }
        }
    }
    dev.close_ingress();
    while !dev.is_done() {
        dev.pump(1_024);
    }
    let served = dev.into_report();

    assert!(rejections > 0, "mailbox of 4 must actually exert backpressure");
    assert_eq!(batch.0, served.result);
    assert_eq!(batch.1, served.closed_loop);
    assert_eq!(batch.2, served.telemetry);
}

#[test]
fn shard_telemetry_merge_conserves_lifecycle_counters() {
    let devices: Vec<ServedDevice> = (0..12)
        .map(|id| {
            let app = AppId::ALL[(id % AppId::ALL.len() as u64) as usize];
            ServedDevice::from_spec(spec(id, app, 800))
        })
        .collect();
    let cfg = ServeConfig { keep_device_reports: true, ..ServeConfig::default() };
    let report = Service::new(cfg).run(devices);
    assert_eq!(report.device_reports.len(), 12);

    // Summing any lifecycle counter over per-device reports must equal
    // the same counter in the shard-merged telemetry: merging conserves,
    // it never double-counts or loses.
    let merged = report.merged_telemetry();
    for origin in 0..3 {
        let issued: u64 =
            report.device_reports.iter().map(|r| r.telemetry.counters.issued[origin]).sum();
        let filled: u64 =
            report.device_reports.iter().map(|r| r.telemetry.counters.filled[origin]).sum();
        let used: u64 =
            report.device_reports.iter().map(|r| r.telemetry.counters.used[origin]).sum();
        let evicted: u64 =
            report.device_reports.iter().map(|r| r.telemetry.counters.evicted_unused[origin]).sum();
        let late: u64 =
            report.device_reports.iter().map(|r| r.telemetry.counters.late[origin]).sum();
        assert_eq!(merged.counters.issued[origin], issued);
        assert_eq!(merged.counters.filled[origin], filled);
        assert_eq!(merged.counters.used[origin], used);
        assert_eq!(merged.counters.evicted_unused[origin], evicted);
        assert_eq!(merged.counters.late[origin], late);
    }
    assert!(
        merged.counters.issued.iter().sum::<u64>() > 0,
        "Planaria devices must actually issue prefetches in this workload"
    );
}
