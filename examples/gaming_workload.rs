//! Contrast two game workloads from the paper's Table 2: Honkai Impact 3
//! (stable revisited footprints — SLP territory) versus Fortnite (one-shot
//! neighbouring pages — TLP territory), across the full prefetcher field.
//!
//! This reproduces the Figure 9 story at example scale: on HI3, SLP does
//! almost all the work; on Fort, TLP carries the improvement.
//!
//! ```sh
//! cargo run --release --example gaming_workload
//! ```

use planaria_sim::experiment::{run_app_suite, PrefetcherKind};
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::AppId;

fn main() {
    let kinds = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::SlpOnly,
        PrefetcherKind::TlpOnly,
        PrefetcherKind::Planaria,
    ];
    let length = 200_000;

    for app in [AppId::Hi3, AppId::Fort] {
        println!("=== {} ({}) — {length} accesses ===", app.name(), app.abbr());
        let results = run_app_suite(app, &kinds, length);
        let none_amat = results[0].amat_cycles;
        let mut t =
            TextTable::new(["prefetcher", "hit rate", "AMAT", "vs none", "accuracy", "traffic"]);
        for r in &results {
            t.row([
                r.prefetcher.clone(),
                pct0(r.hit_rate),
                format!("{:.1}", r.amat_cycles),
                format!("{:+.1}%", (r.amat_cycles / none_amat - 1.0) * 100.0),
                pct0(r.prefetch_accuracy),
                r.traffic.total().to_string(),
            ]);
        }
        println!("{}", t.render());

        let planaria = results.last().expect("planaria row");
        let total_useful = (planaria.useful_slp + planaria.useful_tlp).max(1);
        println!(
            "Planaria usefulness split: SLP {:.0}%, TLP {:.0}%  (the paper's Figure 9 \
             contrast: HI3 is SLP-dominated, Fort is TLP-dominated)\n",
            planaria.useful_slp as f64 / total_useful as f64 * 100.0,
            planaria.useful_tlp as f64 / total_useful as f64 * 100.0,
        );
    }
}
