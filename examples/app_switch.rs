//! Phase change: the user switches apps mid-trace.
//!
//! Concatenates a Honor-of-Kings-like trace with a TikTok-like trace (time-
//! shifted), and tracks how Planaria's pattern tables ride out the program
//! phase switch — the scenario that motivates the paper's quantitative
//! check that footprint snapshots stay stable across phases (Figure 4).
//!
//! ```sh
//! cargo run --release --example app_switch
//! ```

use planaria_common::{Cycle, MemAccess};
use planaria_core::{Planaria, Prefetcher};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::{MemorySystem, SystemConfig};
use planaria_trace::apps::{profile, AppId};
use planaria_trace::Trace;

fn main() {
    let half = 250_000;
    let first = profile(AppId::HoK).scaled(half).build();
    let second = profile(AppId::TikT).scaled(half).build();

    // Shift the second app after the first and merge.
    let offset = first.duration() + 10_000;
    let mut accesses: Vec<MemAccess> = first.accesses().to_vec();
    accesses.extend(
        second.iter().map(|a| MemAccess { cycle: Cycle::new(a.cycle.as_u64() + offset), ..*a }),
    );
    let combined = Trace::new("HoK→TikT", accesses);
    println!("Simulating an app switch: {} accesses of HoK, then {} of TikT...\n", half, half);

    // Run the combined trace, sampling the hit rate in windows.
    let mut system = MemorySystem::new(
        SystemConfig::default(),
        Box::new(Planaria::default()) as Box<dyn Prefetcher>,
    );
    let window = combined.len() / 10;
    let mut t = TextTable::new(["progress", "phase", "cumulative hit rate"]);
    let mut rows = Vec::new();
    for (i, a) in combined.iter().enumerate() {
        system.process(a);
        if (i + 1) % window == 0 {
            rows.push((i + 1, (i + 1) <= half, system.interim_hit_rate()));
        }
    }
    let r = system.finish(combined.name());
    for (i, in_first, hit) in rows {
        t.row([
            format!("{:>3}%", i * 100 / combined.len()),
            if in_first { "HoK" } else { "TikT" }.to_string(),
            pct0(hit),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Final combined run: hit rate {}, AMAT {:.1} cycles, accuracy {} —\n\
         the second app's pages retrain the FT→AT→PT pipeline within one\n\
         visit each; no explicit flush is needed on a phase switch.",
        pct0(r.hit_rate),
        r.amat_cycles,
        pct0(r.prefetch_accuracy),
    );
    for d in &r.device_stats {
        println!(
            "  {:<4} {:>9} accesses, hit rate {}, AMAT {:>6.1}",
            d.device,
            d.accesses,
            pct0(d.hit_rate()),
            d.amat_cycles
        );
    }
}
