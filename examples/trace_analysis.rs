//! Run the paper's motivation analyses (Figures 4 and 5) on a few app
//! profiles — no simulator involved, pure trace characterisation.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use planaria_analysis::{learnable_fraction, overlap_rate};
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::{profile, AppId};

fn main() {
    let length = 200_000;
    let apps = [AppId::Cfm, AppId::HoK, AppId::Fort, AppId::TikT];

    println!("Footprint-snapshot stability (Figure 4 methodology), {length} accesses:\n");
    let mut t = TextTable::new(["app", "overlap rate", "pages measured", "window pairs"]);
    for app in apps {
        let trace = profile(app).scaled(length).build();
        let r = overlap_rate(&trace);
        t.row([
            app.abbr().to_string(),
            pct0(r.mean_overlap),
            r.pages_measured.to_string(),
            r.window_pairs.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("Learnable neighbouring pages (Figure 5 methodology):\n");
    let mut t = TextTable::new(["app", "dist ≤ 4", "dist ≤ 16", "dist ≤ 64"]);
    for app in apps {
        let trace = profile(app).scaled(length).build();
        let cells: Vec<String> = [4u64, 16, 64]
            .iter()
            .map(|&d| pct0(learnable_fraction(&trace, d).learnable_fraction))
            .collect();
        t.row([app.abbr().to_string(), cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    }
    println!("{}", t.render());
    println!(
        "High overlap licenses page-number-only snapshot signatures (SLP);\n\
         the learnable-neighbour fraction bounds TLP's cross-page opportunity."
    );
}
