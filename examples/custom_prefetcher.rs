//! Plug a user-defined prefetcher into the simulator.
//!
//! The [`planaria_core::Prefetcher`] trait is the extension point: anything
//! implementing it slots into [`planaria_sim::MemorySystem`] exactly like
//! Planaria or the paper's baselines. This example builds a toy
//! "page-burst" prefetcher (on a miss, grab the next three blocks of the
//! same page) and races it against Planaria on a mixed workload.
//!
//! ```sh
//! cargo run --release --example custom_prefetcher
//! ```

use planaria_common::{MemAccess, PhysAddr, PrefetchOrigin, PrefetchRequest, BLOCKS_PER_PAGE};
use planaria_core::{Planaria, Prefetcher};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::{MemorySystem, SystemConfig};
use planaria_trace::apps::{profile, AppId};

/// On every miss, prefetch the next `degree` blocks within the same page.
struct PageBurst {
    degree: usize,
    accesses: u64,
}

impl Prefetcher for PageBurst {
    fn name(&self) -> &str {
        "PageBurst"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        if hit {
            return;
        }
        let page = access.addr.page();
        let block = access.addr.block_index().as_usize();
        for k in 1..=self.degree {
            let target = block + k;
            if target >= BLOCKS_PER_PAGE {
                break;
            }
            let addr = PhysAddr::from_parts(page, planaria_common::BlockIndex::new(target));
            out.push(PrefetchRequest::new(addr, PrefetchOrigin::Baseline, access.cycle));
        }
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

fn main() {
    let trace = profile(AppId::IdV).scaled(200_000).build();
    println!("Racing a custom prefetcher against Planaria on {}...\n", trace.name());

    let contenders: Vec<Box<dyn Prefetcher>> =
        vec![Box::new(PageBurst { degree: 3, accesses: 0 }), Box::new(Planaria::default())];

    let mut t = TextTable::new(["prefetcher", "hit rate", "AMAT", "accuracy", "pf issued"]);
    for pf in contenders {
        let r = MemorySystem::new(SystemConfig::default(), pf).run(&trace);
        t.row([
            r.prefetcher.clone(),
            pct0(r.hit_rate),
            format!("{:.1}", r.amat_cycles),
            pct0(r.prefetch_accuracy),
            r.traffic.prefetch_reads.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Anything implementing `planaria_core::Prefetcher` gets the same treatment —\n\
         learning feed, miss-triggered issuing, queue dedup and power accounting."
    );
}
