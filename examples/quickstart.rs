//! Quickstart: simulate one mobile app's memory trace with and without
//! Planaria and compare the headline metrics.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use planaria_sim::experiment::{run_app_suite, PrefetcherKind};
use planaria_sim::ipc;
use planaria_sim::table::{pct, pct0, TextTable};
use planaria_trace::apps::AppId;

fn main() {
    let app = AppId::HoK;
    let length = 300_000;
    println!(
        "Simulating a scaled {} trace ({length} accesses) on the Table 1 system...\n",
        app.name()
    );

    let kinds = [PrefetcherKind::None, PrefetcherKind::Planaria];
    let results = run_app_suite(app, &kinds, length);
    let (none, planaria) = (&results[0], &results[1]);

    let mut t = TextTable::new(["metric", "no prefetcher", "Planaria", "delta"]);
    t.row([
        "SC hit rate".to_string(),
        pct0(none.hit_rate),
        pct0(planaria.hit_rate),
        pct(planaria.hit_rate - none.hit_rate),
    ]);
    t.row([
        "AMAT (cycles)".to_string(),
        format!("{:.1}", none.amat_cycles),
        format!("{:.1}", planaria.amat_cycles),
        pct(planaria.amat_delta(none)),
    ]);
    t.row([
        "IPC (relative)".to_string(),
        "1.000".to_string(),
        format!(
            "{:.3}",
            ipc::relative_ipc(planaria.amat_cycles, none.amat_cycles, app.mem_intensity())
        ),
        pct(ipc::ipc_improvement(planaria.amat_cycles, none.amat_cycles, app.mem_intensity())),
    ]);
    t.row([
        "DRAM traffic (reqs)".to_string(),
        none.traffic.total().to_string(),
        planaria.traffic.total().to_string(),
        pct(planaria.traffic_delta(none)),
    ]);
    t.row([
        "memory power (mW)".to_string(),
        format!("{:.1}", none.power_mw),
        format!("{:.1}", planaria.power_mw),
        pct(planaria.power_delta(none)),
    ]);
    println!("{}", t.render());

    println!(
        "Planaria prefetches: {} issued, {} useful (accuracy {}, coverage {}),\n\
         split SLP {} / TLP {}, metadata {:.1} KB.",
        planaria.traffic.prefetch_reads,
        planaria.useful_prefetches,
        pct0(planaria.prefetch_accuracy),
        pct0(planaria.prefetch_coverage),
        planaria.useful_slp,
        planaria.useful_tlp,
        planaria.storage_bits as f64 / 8.0 / 1024.0,
    );
}
