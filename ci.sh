#!/usr/bin/env bash
# Local CI gate: everything must pass before a change lands.
#
#   ./ci.sh          full gate (release build, tests, clippy, fmt)
#   ./ci.sh fast     skip the release build (debug tests + lints only)
#
# The workspace builds fully offline: external dependencies are vendored
# stand-ins under vendor/ (see Cargo.toml), so no registry access is
# needed at any step.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

if [[ "${1:-}" != "fast" ]]; then
    step "cargo build --release"
    cargo build --release --workspace
fi

step "cargo test -q"
cargo test -q --workspace

step "determinism oracle (debug build)"
# The debug build is the strict one: debug_assert invariants (similarity
# bounds, eviction-order checks) are live, and overflow checks are on. The
# oracle proves bit-identical SimResults across worker thread counts (1 vs
# 8), across hashers (SipHash vs FxHash), and across repeated runs — the
# property every committed figure depends on. Runs in `fast` mode too.
cargo test -q -p planaria-sim --test determinism

step "cargo bench --no-run (benches must compile)"
cargo bench --no-run --workspace

if [[ "${1:-}" != "fast" ]]; then
    step "perf baseline (single-thread throughput -> BENCH_perf.json)"
    cargo run --release -q -p planaria-bench --bin perf_baseline
    # Fail the gate on a malformed measurement file.
    cargo run --release -q -p planaria-bench --bin perf_baseline -- --check BENCH_perf.json

    step "contention sweep (closed-loop traffic model smoke test)"
    cargo run --release -q -p planaria-bench --bin contention -- \
        --len 4000 --apps hok --windows 2,8 --out target/contention_ci.json
    cargo run --release -q -p planaria-bench --bin contention -- --check target/contention_ci.json

    step "serve load (100k concurrent device sessions through planaria-serve)"
    # The service-layer scale gate: every session is a live snapshottable
    # state machine (SC + prefetcher + DRAM), all resident at once. Short
    # per-session traces keep the wall clock down; the concurrency is the
    # point. --check validates the emitted planaria-serve-v1 document.
    cargo run --release -q -p planaria-bench --bin serve_load -- \
        --devices 100000 --len 40 --out target/serve_load_ci.json
    cargo run --release -q -p planaria-bench --bin serve_load -- --check target/serve_load_ci.json

    step "streamed replay (pack 10M accesses, replay from disk, check fingerprints)"
    # Exercises the full on-disk path at a size where materializing would
    # cost ~180 MB but the streamed replay stays flat: record a packed
    # planaria-trace-v1 file with trace_pack, replay it through the
    # streamed engine, and gate on the emitted fingerprint document.
    cargo run --release -q -p planaria-trace --bin trace_pack -- \
        record --app HoK --len 10000000 --out target/ci_hok10m.ptrace
    cargo run --release -q -p planaria-bench --bin perf_baseline -- \
        --stream --trace target/ci_hok10m.ptrace --out target/ci_stream.json
    cargo run --release -q -p planaria-bench --bin perf_baseline -- --check target/ci_stream.json
    rm -f target/ci_hok10m.ptrace
fi

step "planaria-lint --check (determinism / hot-path / API-hygiene invariants)"
lint_start=$(date +%s%N)
cargo run -q -p planaria-lint -- --check --out target/lint_report.json
# The emitted report must itself conform to the planaria-lint-v2 schema.
cargo run -q -p planaria-lint -- --validate target/lint_report.json
lint_ms=$(( ( $(date +%s%N) - lint_start ) / 1000000 ))

step "planaria-lint negative test (a seeded violation must fail --check)"
neg_root=target/lint_negative
rm -rf "$neg_root"
mkdir -p "$neg_root/crates/demo/src"
printf '[workspace]\nmembers = ["crates/demo"]\n' > "$neg_root/Cargo.toml"
printf '[package]\nname = "demo"\nversion = "0.1.0"\nedition = "2021"\n' \
    > "$neg_root/crates/demo/Cargo.toml"
printf '//! Demo.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n/// Stub.\npub fn f() { todo!() }\n' \
    > "$neg_root/crates/demo/src/lib.rs"
if cargo run -q -p planaria-lint -- --root "$neg_root" --check > /dev/null 2>&1; then
    echo "planaria-lint negative test failed: seeded violation passed --check"
    exit 1
fi

step "planaria-lint R9 negative test (an *indirect* wall-clock call must fail --check)"
# driver.rs never names a clock — the token-level R2 cannot see it. Only
# the call-graph pass (R9) can taint drive() through crate::clock.
r9_root=target/lint_negative_r9
rm -rf "$r9_root"
mkdir -p "$r9_root/crates/demo/src"
printf '[workspace]\nmembers = ["crates/demo"]\n' > "$r9_root/Cargo.toml"
printf '[package]\nname = "demo"\nversion = "0.1.0"\nedition = "2021"\n' \
    > "$r9_root/crates/demo/Cargo.toml"
printf '//! Demo.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub mod clock;\npub mod driver;\n' \
    > "$r9_root/crates/demo/src/lib.rs"
printf '//! Clock.\n/// Direct wall-clock read.\npub fn read_clock() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n' \
    > "$r9_root/crates/demo/src/clock.rs"
printf '//! Driver.\n/// Indirect: reaches the clock only through a call.\npub fn drive() -> u64 {\n    crate::clock::read_clock()\n}\n' \
    > "$r9_root/crates/demo/src/driver.rs"
if cargo run -q -p planaria-lint -- --root "$r9_root" --check \
        --out target/lint_negative_r9.json > /dev/null 2>&1; then
    echo "planaria-lint R9 negative test failed: indirect wall clock passed --check"
    exit 1
fi
if ! grep -q '"rule": "R9"' target/lint_negative_r9.json; then
    echo "planaria-lint R9 negative test failed: no R9 finding in the report"
    exit 1
fi
if ! grep -q 'driver.rs' target/lint_negative_r9.json; then
    echo "planaria-lint R9 negative test failed: R9 did not taint driver.rs"
    exit 1
fi

step "markdown link check (local targets must exist)"
link_fail=0
for doc in README.md DESIGN.md EXPERIMENTS.md ARCHITECTURE.md SERVING.md; do
    [[ -f "$doc" ]] || { printf '  %s: file missing\n' "$doc"; link_fail=1; continue; }
    # Every local markdown link target (not http/mailto/#anchor) must exist.
    while IFS= read -r target; do
        case "$target" in
            http*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"
        if [[ ! -e "$path" ]]; then
            printf '  %s: broken link -> %s\n' "$doc" "$target"
            link_fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//')
done
[[ "$link_fail" -eq 0 ]] || { echo "markdown link check failed"; exit 1; }

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo fmt --check"
cargo fmt --all --check

step "cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "ci.sh: all green (planaria-lint --check wall-clock: ${lint_ms} ms)"
