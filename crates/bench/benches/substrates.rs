//! Criterion micro-benchmarks of the substrates: system-cache operations
//! and the LPDDR4 controller's command pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use planaria_cache::{CacheConfig, SetAssocCache};
use planaria_common::{AccessKind, Cycle, PhysAddr, BLOCK_SIZE};
use planaria_dram::{DramConfig, MemoryController, Priority};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 50_000;

fn bench_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let addrs: Vec<PhysAddr> =
        (0..OPS).map(|_| PhysAddr::new(rng.gen_range(0..1u64 << 24) * BLOCK_SIZE)).collect();
    let mut group = c.benchmark_group("system_cache");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("access_fill_mix", |b| {
        b.iter(|| {
            let mut sc = SetAssocCache::new(CacheConfig::system_cache());
            let mut hits = 0u64;
            for &a in &addrs {
                if sc.access(a, AccessKind::Read).is_hit() {
                    hits += 1;
                } else {
                    sc.fill(a, None);
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let reqs: Vec<(PhysAddr, bool, u64)> = (0..OPS)
        .map(|i| {
            (
                PhysAddr::new(rng.gen_range(0..1u64 << 22) * BLOCK_SIZE),
                rng.gen_bool(0.2),
                i as u64 * 20,
            )
        })
        .collect();
    let mut group = c.benchmark_group("lpddr4_controller");
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("enqueue_advance_drain", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(DramConfig::lpddr4());
            let mut buf = Vec::new();
            let mut done = 0usize;
            for &(addr, is_write, at) in &reqs {
                let now = Cycle::new(at);
                mc.advance_to(now, &mut buf);
                done += buf.len();
                let prio = if is_write { Priority::Writeback } else { Priority::Demand };
                let _ = mc.try_enqueue(addr, is_write, prio, now);
            }
            mc.drain(&mut buf);
            done + buf.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_dram);
criterion_main!(benches);
