//! Criterion micro-benchmarks: per-access cost of each prefetcher's
//! learning+issuing path (the hardware model's "pipeline" cost in
//! simulation time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planaria_sim::experiment::PrefetcherKind;
use planaria_trace::apps::{profile, AppId};

const TRACE_LEN: usize = 100_000;

fn bench_prefetchers(c: &mut Criterion) {
    let trace = profile(AppId::HoK).scaled(TRACE_LEN).build();
    let mut group = c.benchmark_group("prefetcher_on_access");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for kind in [
        PrefetcherKind::NextLine,
        PrefetcherKind::Stride,
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::SlpOnly,
        PrefetcherKind::TlpOnly,
        PrefetcherKind::Planaria,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut pf = kind.build();
                let mut out = Vec::new();
                let mut total = 0usize;
                for a in trace.iter() {
                    out.clear();
                    // Alternate hits/misses deterministically to exercise
                    // both the learning-only and issuing paths.
                    let hit = a.cycle.as_u64() % 3 == 0;
                    pf.on_access(a, hit, &mut out);
                    total += out.len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefetchers);
criterion_main!(benches);
