//! Criterion end-to-end benchmark: the full memory-system simulation
//! (trace → SC → prefetcher → LPDDR4) per evaluated prefetcher — the
//! figure-regeneration workhorse, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planaria_sim::experiment::{run_trace, PrefetcherKind};
use planaria_trace::apps::{profile, AppId};

const TRACE_LEN: usize = 100_000;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = profile(AppId::Cfm).scaled(TRACE_LEN).build();
    let mut group = c.benchmark_group("full_system");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for kind in PrefetcherKind::FIGURE_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| run_trace(&trace, kind).hit_rate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
