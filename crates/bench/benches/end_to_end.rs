//! Criterion end-to-end benchmark: the full memory-system simulation
//! (trace → SC → prefetcher → LPDDR4) per evaluated prefetcher — the
//! figure-regeneration workhorse, measured.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planaria_sim::experiment::{run_trace, PrefetcherKind};
use planaria_sim::runner::{Job, Runner, TraceSource};
use planaria_trace::apps::{profile, AppId};

const TRACE_LEN: usize = 100_000;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = profile(AppId::Cfm).scaled(TRACE_LEN).build();
    let mut group = c.benchmark_group("full_system");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for kind in PrefetcherKind::FIGURE_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| run_trace(&trace, kind).hit_rate)
        });
    }
    group.finish();
}

/// The Figure 7 grid (FIGURE_SET over one shared trace) through the
/// parallel Runner at increasing worker counts — the speedup figure the
/// harness binaries' `--threads` flag rides on.
fn bench_parallel_grid(c: &mut Criterion) {
    let trace = Arc::new(profile(AppId::Cfm).scaled(TRACE_LEN).build());
    let kinds = PrefetcherKind::FIGURE_SET;
    let mut group = c.benchmark_group("parallel_grid");
    group.sample_size(10);
    group.throughput(Throughput::Elements((TRACE_LEN * kinds.len()) as u64));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut threads: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&t| t <= cores).collect();
    if threads.is_empty() {
        threads.push(1);
    }
    for t in threads {
        group.bench_function(BenchmarkId::from_parameter(format!("{t}thr")), |b| {
            b.iter(|| {
                let jobs: Vec<Job> = kinds
                    .iter()
                    .map(|&k| Job::new(k.label(), TraceSource::Shared(Arc::clone(&trace)), k))
                    .collect();
                Runner::new(t).run(jobs).total_sim_cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_parallel_grid);
criterion_main!(benches);
