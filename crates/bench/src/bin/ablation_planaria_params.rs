//! Ablation — Planaria's two key design parameters.
//!
//! * **TLP distance threshold** — how far apart two pages may be and still
//!   count as neighbours (paper Figure 5 motivates 64).
//! * **SLP AT timeout** — how long a page must stay idle before its
//!   accumulated bitmap is deemed a complete snapshot.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_planaria_params [--len N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_core::{PatternMerge, Planaria, PlanariaConfig, SlpConfig, TlpConfig};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::{MemorySystem, SystemConfig};
use planaria_trace::apps::profile;

const DISTANCES: [u64; 4] = [4, 16, 64, 512];
const TIMEOUTS: [u64; 4] = [250, 1000, 2000, 8000];

fn main() {
    let mut args = HarnessArgs::from_env();
    // Parameter sweeps multiply runs; default to a representative app pair.
    if args.apps.len() == 10 {
        args.apps = vec![planaria_trace::apps::AppId::HoK, planaria_trace::apps::AppId::Fort];
    }

    println!("Ablation: TLP distance threshold (full Planaria)\n");
    let mut t = TextTable::new(["app", "dist=4", "dist=16", "dist=64", "dist=512"]);
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        for &d in &DISTANCES {
            let cfg = PlanariaConfig {
                tlp: TlpConfig { distance_threshold: d, ..TlpConfig::default() },
                ..PlanariaConfig::default()
            };
            let r = MemorySystem::new(SystemConfig::default(), Box::new(Planaria::new(cfg)))
                .run(&trace);
            cells.push(pct0(r.hit_rate));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("Ablation: SLP accumulation-table timeout (full Planaria)\n");
    let mut t = TextTable::new(["app", "250cy", "1000cy", "2000cy", "8000cy"]);
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        for &timeout in &TIMEOUTS {
            let cfg = PlanariaConfig {
                slp: SlpConfig { timeout, ..SlpConfig::default() },
                ..PlanariaConfig::default()
            };
            let r = MemorySystem::new(SystemConfig::default(), Box::new(Planaria::new(cfg)))
                .run(&trace);
            cells.push(pct0(r.hit_rate));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("Ablation: PT snapshot-merge policy (DSPatch-style duality)\n");
    let mut t = TextTable::new(["app", "replace (paper)", "union", "intersect"]);
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        for merge in [PatternMerge::Replace, PatternMerge::Union, PatternMerge::Intersect] {
            let cfg = PlanariaConfig {
                slp: SlpConfig { pattern_merge: merge, ..SlpConfig::default() },
                ..PlanariaConfig::default()
            };
            let r = MemorySystem::new(SystemConfig::default(), Box::new(Planaria::new(cfg)))
                .run(&trace);
            cells.push(format!(
                "{} / {}",
                pct0(r.hit_rate),
                pct0(r.prefetch_accuracy)
            ));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "Cells are hit rate / accuracy. Expected shapes: the hit rate\n\
         saturates once the distance threshold spans real neighbour clusters\n\
         (the paper picks 64); too short a timeout chops snapshots mid-visit;\n\
         union trades accuracy for coverage, intersect the reverse."
    );
}
