//! Ablation — Planaria's two key design parameters.
//!
//! * **TLP distance threshold** — how far apart two pages may be and still
//!   count as neighbours (paper Figure 5 motivates 64).
//! * **SLP AT timeout** — how long a page must stay idle before its
//!   accumulated bitmap is deemed a complete snapshot.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_planaria_params [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_core::{PatternMerge, Planaria, PlanariaConfig, SlpConfig, TlpConfig};
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SimResult;
use planaria_trace::apps::AppId;

const DISTANCES: [u64; 4] = [4, 16, 64, 512];
const TIMEOUTS: [u64; 4] = [250, 1000, 2000, 8000];
const MERGES: [PatternMerge; 3] =
    [PatternMerge::Replace, PatternMerge::Union, PatternMerge::Intersect];

/// One sweep as a Runner batch: per app, one Planaria variant per value.
fn sweep(
    args: &HarnessArgs,
    tag: &str,
    variants: usize,
    make: impl Fn(usize) -> PlanariaConfig,
) -> Vec<Vec<SimResult>> {
    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for v in 0..variants {
            let cfg = make(v);
            jobs.push(Job::with_factory(
                format!("{}/{tag}#{v}", app.abbr()),
                source.clone(),
                Box::new(move || Box::new(Planaria::new(cfg))),
            ));
        }
    }
    args.run_jobs(jobs).chunks(variants).map(<[SimResult]>::to_vec).collect()
}

fn main() {
    let mut args = HarnessArgs::from_env();
    // Parameter sweeps multiply runs; default to a representative app pair.
    if args.apps.len() == 10 {
        args.apps = vec![AppId::HoK, AppId::Fort];
    }

    println!("Ablation: TLP distance threshold (full Planaria)\n");
    let rows = sweep(&args, "dist", DISTANCES.len(), |i| PlanariaConfig {
        tlp: TlpConfig { distance_threshold: DISTANCES[i], ..TlpConfig::default() },
        ..PlanariaConfig::default()
    });
    let mut t = TextTable::new(["app", "dist=4", "dist=16", "dist=64", "dist=512"]);
    for (app, row) in args.apps.iter().zip(&rows) {
        let mut cells = vec![app.abbr().to_string()];
        cells.extend(row.iter().map(|r| pct0(r.hit_rate)));
        t.row(cells);
    }
    println!("{}", t.render());

    println!("Ablation: SLP accumulation-table timeout (full Planaria)\n");
    let rows = sweep(&args, "timeout", TIMEOUTS.len(), |i| PlanariaConfig {
        slp: SlpConfig { timeout: TIMEOUTS[i], ..SlpConfig::default() },
        ..PlanariaConfig::default()
    });
    let mut t = TextTable::new(["app", "250cy", "1000cy", "2000cy", "8000cy"]);
    for (app, row) in args.apps.iter().zip(&rows) {
        let mut cells = vec![app.abbr().to_string()];
        cells.extend(row.iter().map(|r| pct0(r.hit_rate)));
        t.row(cells);
    }
    println!("{}", t.render());

    println!("Ablation: PT snapshot-merge policy (DSPatch-style duality)\n");
    let rows = sweep(&args, "merge", MERGES.len(), |i| PlanariaConfig {
        slp: SlpConfig { pattern_merge: MERGES[i], ..SlpConfig::default() },
        ..PlanariaConfig::default()
    });
    let mut t = TextTable::new(["app", "replace (paper)", "union", "intersect"]);
    for (app, row) in args.apps.iter().zip(&rows) {
        let mut cells = vec![app.abbr().to_string()];
        cells.extend(
            row.iter().map(|r| format!("{} / {}", pct0(r.hit_rate), pct0(r.prefetch_accuracy))),
        );
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "Cells are hit rate / accuracy. Expected shapes: the hit rate\n\
         saturates once the distance threshold spans real neighbour clusters\n\
         (the paper picks 64); too short a timeout chops snapshots mid-visit;\n\
         union trades accuracy for coverage, intersect the reverse."
    );
}
