//! Ablation — SC capacity (paper §1 motivation).
//!
//! Sweeps the system-cache size with no prefetcher and compares against
//! Planaria on the baseline 4 MB: the paper's point is that doubling (or
//! quadrupling) the SRAM budget buys far less than 345 KB of prefetcher
//! metadata does.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_cache_size [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SystemConfig;

const SIZES_MB: [u64; 4] = [2, 4, 8, 16];

fn main() {
    let args = HarnessArgs::from_env();
    println!("Ablation: SC capacity (no prefetcher) vs Planaria at 4 MB\n");

    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for &mb in &SIZES_MB {
            let mut cfg = SystemConfig::default();
            cfg.cache = cfg.cache.with_size(mb << 20);
            jobs.push(
                Job::new(format!("{}/{mb}MB", app.abbr()), source.clone(), PrefetcherKind::None)
                    .config(cfg),
            );
        }
        jobs.push(Job::new(format!("{}/Planaria", app.abbr()), source, PrefetcherKind::Planaria));
    }
    let results = args.run_jobs(jobs);

    let mut header: Vec<String> = vec!["app".into()];
    header.extend(SIZES_MB.iter().map(|mb| format!("{mb} MB")));
    header.push("4 MB+Planaria".into());
    let mut t = TextTable::new(header);
    for (app, row) in args.apps.iter().zip(results.chunks(SIZES_MB.len() + 1)) {
        let mut cells = vec![app.abbr().to_string()];
        cells.extend(row.iter().map(|r| pct0(r.hit_rate)));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper shape: growing the SC yields shallow gains against footprint\n\
         working sets with long reuse distance; Planaria at 4 MB beats much\n\
         larger prefetch-less caches."
    );
}
