//! Ablation — SC capacity (paper §1 motivation).
//!
//! Sweeps the system-cache size with no prefetcher and compares against
//! Planaria on the baseline 4 MB: the paper's point is that doubling (or
//! quadrupling) the SRAM budget buys far less than 345 KB of prefetcher
//! metadata does.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_cache_size [--len N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::{run_trace_with, PrefetcherKind};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SystemConfig;
use planaria_trace::apps::profile;

const SIZES_MB: [u64; 4] = [2, 4, 8, 16];

fn main() {
    let args = HarnessArgs::from_env();
    println!("Ablation: SC capacity (no prefetcher) vs Planaria at 4 MB\n");

    let mut header: Vec<String> = vec!["app".into()];
    header.extend(SIZES_MB.iter().map(|mb| format!("{mb} MB")));
    header.push("4 MB+Planaria".into());
    let mut t = TextTable::new(header);

    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        for &mb in &SIZES_MB {
            let mut cfg = SystemConfig::default();
            cfg.cache = cfg.cache.with_size(mb << 20);
            let r = run_trace_with(&trace, PrefetcherKind::None, cfg);
            cells.push(pct0(r.hit_rate));
        }
        let planaria = run_trace_with(&trace, PrefetcherKind::Planaria, SystemConfig::default());
        cells.push(pct0(planaria.hit_rate));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper shape: growing the SC yields shallow gains against footprint\n\
         working sets with long reuse distance; Planaria at 4 MB beats much\n\
         larger prefetch-less caches."
    );
}
