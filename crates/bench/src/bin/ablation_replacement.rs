//! Ablation — SC replacement policy (paper §1 motivation).
//!
//! The paper observes that "neither state-of-the-art cache replacement
//! policies nor increasing cache size significantly improve SC
//! performance". This harness sweeps the replacement policy with no
//! prefetcher and contrasts the spread against what Planaria adds on top
//! of plain LRU.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_replacement [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_cache::ReplacementKind;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SystemConfig;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Ablation: SC replacement policy (no prefetcher) vs Planaria on LRU\n");

    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for &repl in &ReplacementKind::ALL {
            let mut cfg = SystemConfig::default();
            cfg.cache = cfg.cache.with_replacement(repl);
            jobs.push(
                Job::new(format!("{}/{repl}", app.abbr()), source.clone(), PrefetcherKind::None)
                    .config(cfg),
            );
        }
        jobs.push(Job::new(format!("{}/Planaria", app.abbr()), source, PrefetcherKind::Planaria));
    }
    let results = args.run_jobs(jobs);

    let mut header: Vec<String> = vec!["app".into()];
    header.extend(ReplacementKind::ALL.iter().map(|k| k.to_string()));
    header.push("LRU+Planaria".into());
    let mut t = TextTable::new(header);
    for (app, row) in args.apps.iter().zip(results.chunks(ReplacementKind::ALL.len() + 1)) {
        let mut cells = vec![app.abbr().to_string()];
        cells.extend(row.iter().map(|r| pct0(r.hit_rate)));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper shape: swapping the replacement policy moves the SC hit rate\n\
         by at most a point or two; a pattern prefetcher moves it by tens."
    );
}
