//! Ablation — SC replacement policy (paper §1 motivation).
//!
//! The paper observes that "neither state-of-the-art cache replacement
//! policies nor increasing cache size significantly improve SC
//! performance". This harness sweeps the replacement policy with no
//! prefetcher and contrasts the spread against what Planaria adds on top
//! of plain LRU.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_replacement [--len N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_cache::ReplacementKind;
use planaria_sim::experiment::{run_trace_with, PrefetcherKind};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SystemConfig;
use planaria_trace::apps::profile;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Ablation: SC replacement policy (no prefetcher) vs Planaria on LRU\n");

    let mut header: Vec<String> = vec!["app".into()];
    header.extend(ReplacementKind::ALL.iter().map(|k| k.to_string()));
    header.push("LRU+Planaria".into());
    let mut t = TextTable::new(header);

    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        for &repl in &ReplacementKind::ALL {
            let mut cfg = SystemConfig::default();
            cfg.cache = cfg.cache.with_replacement(repl);
            let r = run_trace_with(&trace, PrefetcherKind::None, cfg);
            cells.push(pct0(r.hit_rate));
        }
        let planaria = run_trace_with(&trace, PrefetcherKind::Planaria, SystemConfig::default());
        cells.push(pct0(planaria.hit_rate));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper shape: swapping the replacement policy moves the SC hit rate\n\
         by at most a point or two; a pattern prefetcher moves it by tens."
    );
}
