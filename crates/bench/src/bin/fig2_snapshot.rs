//! Figure 2 — the footprint snapshot of one memory page over time.
//!
//! Renders an ASCII scatter of (arrival time × block number) for the most
//! revisited page of a footprint-dominated trace, showing the paper's three
//! qualitative observations: a stable block set, long reuse distance
//! between visit bursts, and non-deterministic intra-visit order.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig2_snapshot
//! ```

use std::collections::HashMap;

use planaria_common::PageNum;
use planaria_trace::apps::{profile, AppId};

const TIME_COLS: usize = 100;

fn main() {
    let trace = profile(AppId::Cfm).scaled(400_000).build();

    // Pick the most accessed page.
    let mut counts: HashMap<PageNum, usize> = HashMap::new();
    for a in trace.iter() {
        *counts.entry(a.addr.page()).or_default() += 1;
    }
    let (&page, &n) = counts.iter().max_by_key(|(_, &c)| c).expect("non-empty trace");
    println!("Figure 2: footprint snapshot of {page} ({n} accesses) in a CFM-like trace\n");

    let events: Vec<(u64, usize)> = trace
        .iter()
        .filter(|a| a.addr.page() == page)
        .map(|a| (a.cycle.as_u64(), a.addr.block_index().as_usize()))
        .collect();
    let (t0, t1) = (events.first().expect("events").0, events.last().expect("events").0);
    let span = (t1 - t0).max(1);

    let mut grid = vec![[' '; TIME_COLS]; 64];
    for &(t, b) in &events {
        let col = ((t - t0) as f64 / span as f64 * (TIME_COLS - 1) as f64) as usize;
        grid[b][col] = '*';
    }
    println!("block│ time ─▶  ({} cycles)", span);
    for (b, row) in grid.iter().enumerate().rev() {
        let line: String = row.iter().collect();
        if line.trim().is_empty() {
            continue;
        }
        println!("{b:>5}│{line}");
    }
    println!("     └{}", "─".repeat(TIME_COLS));
    println!(
        "\nEach column of *s is one visit: the same block set recurs (spatial\n\
         locality), visits are far apart (long reuse distance), and the order\n\
         within a visit varies (unpredictable delta sequence)."
    );
}
