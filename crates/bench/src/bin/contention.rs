//! Closed-loop contention sweep — per-device slowdown and fairness.
//!
//! Replays each selected application once open-loop (the figure pipeline's
//! default) and once closed-loop per `--windows` entry, with every device
//! limited to that many outstanding requests. Emits a
//! `planaria-contention-v1` JSON document with per-device slowdown and the
//! max/min unfairness metric per (app, window), plus a human-readable
//! table on stderr.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin contention -- \
//!     [--len N] [--apps CFM,HoK,...] [--threads N] [--windows 2,8,32] [--out FILE]
//! cargo run --release -p planaria-bench --bin contention -- --check FILE
//! ```

use planaria_bench::cli;
use planaria_common::json;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::{Cell, Job, Runner, TrafficConfig};
use planaria_trace::apps::AppId;

/// One-line usage summary (stderr on `--help` and on argument errors).
const USAGE: &str = "usage: contention [--len N] [--apps CFM,HoK,...] [--threads N] \
                     [--windows 2,8,32] [--out FILE] | --check FILE";

/// Reports a usage error and exits 2 (never returns).
fn fail(msg: String) -> ! {
    cli::usage_error(USAGE, msg)
}

/// Default accesses per application trace (kept small enough for CI).
const DEFAULT_LEN: usize = 30_000;

/// Default window sweep: near-serial, moderate, near-open-loop.
const DEFAULT_WINDOWS: [usize; 3] = [2, 8, 32];

fn main() {
    let mut len = DEFAULT_LEN;
    let mut apps: Vec<AppId> = AppId::ALL.to_vec();
    let mut threads: Option<usize> = None;
    let mut windows: Vec<usize> = DEFAULT_WINDOWS.to_vec();
    let mut out_path = String::from("target/contention.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--len" => {
                len = cli::positive_count("--len", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--apps" => {
                let v = cli::value_of("--apps", args.next()).unwrap_or_else(|e| fail(e));
                apps = v
                    .split(',')
                    .map(|abbr| {
                        AppId::ALL
                            .into_iter()
                            .find(|a| a.abbr().eq_ignore_ascii_case(abbr.trim()))
                            .unwrap_or_else(|| fail(format!("unknown app abbreviation {abbr:?}")))
                    })
                    .collect();
            }
            "--threads" => {
                threads =
                    Some(cli::positive_count("--threads", args.next()).unwrap_or_else(|e| fail(e)));
            }
            "--windows" => {
                let v = cli::value_of("--windows", args.next()).unwrap_or_else(|e| fail(e));
                windows = v
                    .split(',')
                    .map(|w| match w.trim().parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => fail(format!("--windows entries must be positive integers: {w:?}")),
                    })
                    .collect();
                if windows.is_empty() {
                    fail("--windows needs at least one entry".into());
                }
            }
            "--out" => {
                out_path = cli::value_of("--out", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--check" => {
                let path = cli::value_of("--check", args.next()).unwrap_or_else(|e| fail(e));
                check(&path);
                return;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    let kind = PrefetcherKind::Planaria;
    eprintln!(
        "contention: {} apps x (open loop + {} windows), {len} accesses/app",
        apps.len(),
        windows.len()
    );

    // Per app: one open-loop reference cell, then one closed-loop cell per
    // window. Cells are independent, so the parallel runner fans them out.
    let jobs: Vec<Job> = apps
        .iter()
        .flat_map(|&app| {
            std::iter::once(Job::grid_cell(app, kind, len)).chain(
                windows
                    .iter()
                    .map(move |&w| Job::grid_cell(app, kind, len).traffic(TrafficConfig::new(w))),
            )
        })
        .collect();
    let runner = match threads {
        Some(n) => Runner::new(n),
        None => Runner::auto(),
    };
    let report = runner.run(jobs);
    eprintln!("  {}", report.summary());

    let per_app = windows.len() + 1;
    assert!(report.cells.len().is_multiple_of(per_app));
    let rows: Vec<(&AppId, &[Cell])> = apps.iter().zip(report.cells.chunks(per_app)).collect();

    for (app, cells) in &rows {
        let open = &cells[0];
        eprintln!("  {:<5} open-loop AMAT {:>8.1}", app.abbr(), open.result.amat_cycles);
        for cell in &cells[1..] {
            let cl = cell.closed_loop.as_ref().expect("closed-loop cell");
            let worst = cl
                .devices
                .iter()
                .max_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
                .expect("at least one device");
            eprintln!(
                "    window {:>3}  AMAT {:>8.1}  unfairness {:>6.3}  worst {} x{:.3}",
                cl.window, cell.result.amat_cycles, cl.unfairness, worst.device, worst.slowdown
            );
        }
    }

    let doc = render(len, &windows, &rows);
    json::validate(&doc).expect("contention emitted malformed JSON");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &doc).expect("write contention JSON");
    eprintln!("wrote {out_path}");
}

/// Validates a previously written file; exits non-zero on bad JSON.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = json::validate(&text) {
        eprintln!("{path}: malformed JSON: {e}");
        std::process::exit(1);
    }
    if !text.contains("\"schema\": \"planaria-contention-v1\"") {
        eprintln!("{path}: missing planaria-contention-v1 schema marker");
        std::process::exit(1);
    }
    println!("{path}: well-formed planaria-contention-v1 JSON");
}

/// Renders the sweep document (fixed key order, so diffs are clean).
fn render(len: usize, windows: &[usize], rows: &[(&AppId, &[Cell])]) -> String {
    let mut w = json::Writer::pretty();
    w.begin_object();
    w.key("schema");
    w.string("planaria-contention-v1");
    w.key("len_per_app");
    w.u64(len as u64);
    w.key("windows");
    w.begin_array();
    for &win in windows {
        w.u64(win as u64);
    }
    w.end_array();
    w.key("apps");
    w.begin_array();
    for (app, cells) in rows {
        let open = &cells[0];
        w.begin_object();
        w.key("app");
        w.string(app.abbr());
        w.key("open_loop");
        w.begin_object();
        w.key("amat_cycles");
        w.f64(open.result.amat_cycles, 3);
        w.key("hit_rate");
        w.f64(open.result.hit_rate, 6);
        w.end_object();
        w.key("closed_loop");
        w.begin_array();
        for cell in &cells[1..] {
            let cl = cell.closed_loop.as_ref().expect("closed-loop cell");
            w.begin_object();
            w.key("window");
            w.u64(cl.window as u64);
            w.key("amat_cycles");
            w.f64(cell.result.amat_cycles, 3);
            w.key("unfairness");
            w.f64(cl.unfairness, 6);
            w.key("devices");
            w.begin_array();
            for d in &cl.devices {
                w.begin_inline_object();
                w.key("device");
                w.string(&d.device.to_string());
                w.key("accesses");
                w.u64(d.accesses);
                w.key("open_loop_finish");
                w.u64(d.open_loop_finish);
                w.key("derived_finish");
                w.u64(d.derived_finish);
                w.key("slowdown");
                w.f64(d.slowdown, 6);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}
