//! Figure 5 — fraction of learnable neighbouring pages per application.
//!
//! Paper result: on average 26.95% of pages have a learnable neighbour at
//! distance threshold 4, rising to 39.26% at threshold 64.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig5_neighbors [--len N|--full]
//! ```

use planaria_analysis::learnable_fraction;
use planaria_bench::HarnessArgs;
use planaria_sim::experiment::mean;
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::profile;

const THRESHOLDS: [u64; 3] = [4, 16, 64];

fn main() {
    let args = HarnessArgs::from_env();
    println!(
        "Figure 5: proportion of learnable neighbouring pages\n\
         (bitmap difference ≤ 4 bits; paper averages: 26.95% @4, 39.26% @64)\n"
    );

    let mut t = TextTable::new(["app", "dist ≤ 4", "dist ≤ 16", "dist ≤ 64", "pages"]);
    let mut per_threshold: Vec<Vec<f64>> = vec![Vec::new(); THRESHOLDS.len()];
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let mut cells = vec![app.abbr().to_string()];
        let mut pages = 0;
        for (i, &d) in THRESHOLDS.iter().enumerate() {
            let r = learnable_fraction(&trace, d);
            per_threshold[i].push(r.learnable_fraction);
            cells.push(pct0(r.learnable_fraction));
            pages = r.total_pages;
        }
        cells.push(pages.to_string());
        t.row(cells);
    }
    let mut avg_cells = vec!["avg".to_string()];
    for col in &per_threshold {
        avg_cells.push(pct0(mean(col.iter().copied())));
    }
    avg_cells.push(String::new());
    t.rule().row(avg_cells);
    println!("{}", t.render());
    println!(
        "paper: the learnable fraction grows with the distance threshold\n\
         (≈27% at 4 → ≈39% at 64); the measured averages above follow the\n\
         same monotone shape."
    );
}
