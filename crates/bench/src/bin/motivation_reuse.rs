//! Motivation — block reuse-distance distribution per application.
//!
//! Quantifies Observation 1's temporal half ("the reuse distance of the
//! snapshots is usually long") and the §1 claim that neither replacement
//! policies nor modest capacity growth rescue the SC: reuses beyond the
//! cache's block capacity (65 536 blocks for 4 MB) cannot hit under any
//! stack-property policy, and only the band between old and new capacity
//! benefits from growing the cache.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin motivation_reuse [--len N]
//! ```

use planaria_analysis::reuse_histogram;
use planaria_bench::HarnessArgs;
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::profile;

/// 4 MB / 64 B blocks.
const SC_BLOCKS: u64 = 65_536;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Motivation: block reuse distances (SC capacity = {SC_BLOCKS} blocks)\n");

    let mut t = TextTable::new([
        "app",
        "cold",
        "median dist",
        "≥ SC capacity",
        "≥ 2× capacity",
        "≥ 4× capacity",
    ]);
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let r = reuse_histogram(&trace);
        t.row([
            app.abbr().to_string(),
            pct0(r.cold as f64 / r.accesses.max(1) as f64),
            r.median_distance().map_or("—".into(), |d| format!("≥{d}")),
            pct0(r.fraction_at_least(SC_BLOCKS)),
            pct0(r.fraction_at_least(2 * SC_BLOCKS)),
            pct0(r.fraction_at_least(4 * SC_BLOCKS)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reuses at or beyond the SC's capacity are LRU-hopeless: no\n\
         replacement tweak recovers them, and doubling the cache only\n\
         rescues the thin band between the two capacity columns — the\n\
         motivation for prefetching rather than resizing (paper §1)."
    );
}
