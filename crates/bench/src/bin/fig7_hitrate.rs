//! Figure 7 — system-cache hit rate per application and prefetcher.
//!
//! Paper result: Planaria lifts the SC hit rate the most while BOP buys its
//! (smaller) hit-rate gains with heavy extra traffic.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig7_hitrate [--len N|--full]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::{mean, PrefetcherKind};
use planaria_sim::table::{pct0, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    println!("Figure 7: SC hit rate with different prefetchers\n");

    let kinds = PrefetcherKind::FIGURE_SET;
    let grid = args.run_grid(&kinds);

    let mut header = vec!["app".to_string()];
    header.extend(kinds.iter().map(|k| k.label().to_string()));
    let mut t = TextTable::new(header);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for (app, results) in args.apps.iter().zip(&grid) {
        let mut cells = vec![app.abbr().to_string()];
        for (i, r) in results.iter().enumerate() {
            cols[i].push(r.hit_rate);
            cells.push(pct0(r.hit_rate));
        }
        t.row(cells);
    }
    let mut avg = vec!["avg".to_string()];
    for col in &cols {
        avg.push(pct0(mean(col.iter().copied())));
    }
    t.rule().row(avg);
    println!("{}", t.render());
    println!(
        "paper shape: Planaria raises the hit rate most; BOP raises it less\n\
         (and pays for it in traffic — see Figure 10); SPP sits between."
    );
}
