//! Service load harness — many concurrent device sessions through
//! `planaria-serve`.
//!
//! Spins up `--devices` snapshottable device state machines (Table 2
//! apps round-robin, per-device seeds), serves them to completion over
//! the sharded round scheduler, and reports sustained decisions/sec plus
//! p50/p99 per-decision wall-clock latency in a `planaria-serve-v1` JSON
//! document. The serving library itself never reads a clock (invariant
//! R2); all timing here rides the [`ShardObserver`] hooks from outside.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin serve_load -- \
//!     [--devices N] [--len N] [--shards N] [--workers N] [--quantum N] [--out FILE]
//! cargo run --release -p planaria-bench --bin serve_load -- --check FILE
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use planaria_bench::cli;
use planaria_cache::CacheConfig;
use planaria_common::json;
use planaria_serve::{DeviceSpec, ServeConfig, ServedDevice, Service, ShardObserver};
use planaria_sim::{PrefetcherKind, SystemConfig};
use planaria_trace::apps::AppId;

/// One-line usage summary (stderr on `--help` and on argument errors).
const USAGE: &str = "usage: serve_load [--devices N] [--len N] [--shards N] [--workers N] \
                     [--quantum N] [--kind LABEL] [--out FILE] | --check FILE";

/// Reports a usage error and exits 2 (never returns).
fn fail(msg: String) -> ! {
    cli::usage_error(USAGE, msg)
}

/// Defaults sized so the CI gate (`--devices 100000`) finishes on one
/// core while still holding every session live at once.
const DEFAULT_DEVICES: usize = 100_000;
const DEFAULT_LEN: usize = 100;

/// Labels accepted by `--kind`.
const ALL_KINDS: [PrefetcherKind; 12] = [
    PrefetcherKind::None,
    PrefetcherKind::NextLine,
    PrefetcherKind::Stride,
    PrefetcherKind::Bop,
    PrefetcherKind::Spp,
    PrefetcherKind::SlpOnly,
    PrefetcherKind::TlpOnly,
    PrefetcherKind::Planaria,
    PrefetcherKind::PlanariaSlpIssue,
    PrefetcherKind::PlanariaTlpIssue,
    PrefetcherKind::PlanariaParallel,
    PrefetcherKind::PlanariaLean,
];

/// Wall-clock latency of serving decisions, folded into power-of-two
/// buckets of nanoseconds-per-injected-access. Each pump turn with `n`
/// injections contributes `n` samples to the bucket of its mean
/// per-decision latency, so percentiles are over *decisions*, not turns.
#[derive(Debug, Clone)]
struct Histogram {
    buckets: [u64; 64],
}

impl Histogram {
    fn new() -> Self {
        Self { buckets: [0; 64] }
    }

    fn record(&mut self, ns_per_decision: u64, weight: u64) {
        let bucket = (64 - ns_per_decision.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += weight;
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
    }

    /// Upper bound (ns) of the bucket holding the q-quantile decision.
    fn quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }
}

/// Per-shard observer: times each device's pump turn and banks the
/// per-decision latency; merges into the shared histogram when the shard
/// finishes (observers are per-shard, so the mutex is uncontended).
struct LatencyObserver {
    local: Histogram,
    started: Option<Instant>,
    shared: Arc<Mutex<Histogram>>,
}

impl ShardObserver for LatencyObserver {
    fn pump_started(&mut self, _device: u64) {
        self.started = Some(Instant::now());
    }

    fn pump_finished(&mut self, _device: u64, injected: u64) {
        let Some(t0) = self.started.take() else { return };
        if injected == 0 {
            return;
        }
        let ns = t0.elapsed().as_nanos() as u64;
        self.local.record((ns / injected).max(1), injected);
    }
}

impl Drop for LatencyObserver {
    fn drop(&mut self) {
        self.shared.lock().expect("histogram mutex").merge(&self.local);
    }
}

/// Lean per-device memory system: a 64 KiB / 8-way SC instead of the
/// paper's 8 MiB, so 100k+ concurrent devices fit comfortably in memory.
/// Everything else (DRAM model, latencies, Planaria prefetcher) is the
/// paper configuration.
fn lean_system() -> SystemConfig {
    let mut sys = SystemConfig::default();
    sys.cache = CacheConfig { size_bytes: 64 * 1024, ..sys.cache };
    sys
}

fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let mut devices = DEFAULT_DEVICES;
    let mut len = DEFAULT_LEN;
    let mut shards = 64usize;
    let mut workers = 1usize;
    let mut quantum = 4_096usize;
    // Fleet-scale default: the same SLP+TLP+coordinator pipeline with
    // ~20x smaller metadata tables, so 100k+ concurrent devices fit in
    // memory (to match the 64 KiB SC).
    let mut kind = PrefetcherKind::PlanariaLean;
    let mut out_path = String::from("target/serve_load.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = cli::positive_count("--devices", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--len" => {
                len = cli::positive_count("--len", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--shards" => {
                shards = cli::positive_count("--shards", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--workers" => {
                workers = cli::positive_count("--workers", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--quantum" => {
                quantum = cli::positive_count("--quantum", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--kind" => {
                let label = cli::value_of("--kind", args.next()).unwrap_or_else(|e| fail(e));
                kind = ALL_KINDS
                    .into_iter()
                    .find(|k| k.label().eq_ignore_ascii_case(&label))
                    .unwrap_or_else(|| fail(format!("unknown prefetcher label {label:?}")));
            }
            "--out" => {
                out_path = cli::value_of("--out", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--check" => {
                let path = cli::value_of("--check", args.next()).unwrap_or_else(|e| fail(e));
                check(&path);
                return;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "serve_load: {devices} devices x {len} accesses ({}), {shards} shards, {workers} worker(s)",
        kind.label()
    );

    // Build the whole fleet up front — the point of the harness is that
    // every session is live concurrently, not batched.
    let system = lean_system();
    let build0 = Instant::now();
    let fleet: Vec<ServedDevice> = (0..devices as u64)
        .map(|id| {
            let app = AppId::ALL[(id % AppId::ALL.len() as u64) as usize];
            let mut spec = DeviceSpec::new(id, app).scaled(len);
            spec.system = system;
            spec.kind = kind;
            // Short sessions revisit only a handful of pool pages; the
            // profiles' 6-10k-page pools exist for 30M-access traces.
            spec.pool_cap = Some(64);
            ServedDevice::from_spec(spec)
        })
        .collect();
    let build_secs = build0.elapsed().as_secs_f64();
    let rss_after_build = proc_status_kb("VmRSS");
    eprintln!(
        "  fleet built in {build_secs:.1}s, RSS {:.1} MiB",
        rss_after_build.unwrap_or(0) as f64 / 1024.0
    );

    let cfg = ServeConfig {
        shards,
        workers,
        pump_quantum: quantum,
        ingest_quantum: quantum,
        keep_device_reports: false,
    };
    let shared = Arc::new(Mutex::new(Histogram::new()));
    let observer_source = Arc::clone(&shared);
    let t0 = Instant::now();
    let report = Service::new(cfg).run_observed(fleet, move |_shard| {
        Box::new(LatencyObserver {
            local: Histogram::new(),
            started: None,
            shared: Arc::clone(&observer_source),
        })
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let accesses = report.total_accesses();
    let decisions_per_sec = accesses as f64 / wall_secs.max(1e-9);
    let hist = shared.lock().expect("histogram mutex").clone();
    let p50 = hist.quantile_ns(0.50);
    let p99 = hist.quantile_ns(0.99);
    let rounds: u64 = report.shards.iter().map(|s| s.rounds).sum();
    let max_slowdown = report.shards.iter().map(|s| s.max_slowdown).fold(0.0f64, f64::max);
    let rss_kb = proc_status_kb("VmHWM").or(rss_after_build);

    assert_eq!(report.devices(), devices as u64, "every session must finish");
    assert_eq!(accesses, (devices * len) as u64, "every access must inject");

    eprintln!(
        "  {accesses} decisions in {wall_secs:.1}s = {decisions_per_sec:.0}/s, \
         p50 {p50} ns, p99 {p99} ns, peak RSS {:.1} MiB",
        rss_kb.unwrap_or(0) as f64 / 1024.0
    );

    let doc = render(
        devices,
        len,
        shards,
        workers,
        quantum,
        kind,
        accesses,
        build_secs,
        wall_secs,
        decisions_per_sec,
        p50,
        p99,
        rounds,
        max_slowdown,
        rss_kb,
    );
    json::validate(&doc).expect("serve_load emitted malformed JSON");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &doc).expect("write serve_load JSON");
    eprintln!("wrote {out_path}");
}

/// Validates a previously written file; exits non-zero on bad JSON or a
/// structurally incomplete report.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{path}: malformed JSON: {e}");
            std::process::exit(1);
        }
    };
    if doc.get("schema").and_then(|v| v.as_str()) != Some("planaria-serve-v1") {
        eprintln!("{path}: missing planaria-serve-v1 schema marker");
        std::process::exit(1);
    }
    for key in ["devices", "len", "shards", "workers", "accesses", "wall_secs", "decisions_per_sec"]
    {
        if doc.get(key).and_then(|v| v.as_f64()).is_none() {
            eprintln!("{path}: missing numeric field {key:?}");
            std::process::exit(1);
        }
    }
    let devices = doc.get("devices").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let len = doc.get("len").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let accesses = doc.get("accesses").and_then(|v| v.as_f64()).unwrap_or(0.0);
    if accesses != devices * len {
        eprintln!("{path}: accesses {accesses} != devices {devices} x len {len}");
        std::process::exit(1);
    }
    if doc.get("latency_ns").and_then(|v| v.get("p99")).and_then(|v| v.as_f64()).is_none() {
        eprintln!("{path}: missing latency_ns.p99");
        std::process::exit(1);
    }
    println!("{path}: well-formed planaria-serve-v1 JSON ({devices} devices)");
}

/// Renders the report document (fixed key order, so diffs are clean).
#[allow(clippy::too_many_arguments)]
fn render(
    devices: usize,
    len: usize,
    shards: usize,
    workers: usize,
    quantum: usize,
    kind: PrefetcherKind,
    accesses: u64,
    build_secs: f64,
    wall_secs: f64,
    decisions_per_sec: f64,
    p50: u64,
    p99: u64,
    rounds: u64,
    max_slowdown: f64,
    rss_kb: Option<u64>,
) -> String {
    let mut w = json::Writer::pretty();
    w.begin_object();
    w.key("schema");
    w.string("planaria-serve-v1");
    w.key("devices");
    w.u64(devices as u64);
    w.key("len");
    w.u64(len as u64);
    w.key("shards");
    w.u64(shards as u64);
    w.key("workers");
    w.u64(workers as u64);
    w.key("quantum");
    w.u64(quantum as u64);
    w.key("prefetcher");
    w.string(kind.label());
    w.key("accesses");
    w.u64(accesses);
    w.key("rounds");
    w.u64(rounds);
    w.key("build_secs");
    w.f64(build_secs, 3);
    w.key("wall_secs");
    w.f64(wall_secs, 3);
    w.key("decisions_per_sec");
    w.f64(decisions_per_sec, 1);
    w.key("latency_ns");
    w.begin_inline_object();
    w.key("p50");
    w.u64(p50);
    w.key("p99");
    w.u64(p99);
    w.end_object();
    w.key("max_slowdown");
    w.f64(max_slowdown, 6);
    w.key("peak_rss_kb");
    match rss_kb {
        Some(kb) => w.u64(kb),
        None => w.null(),
    }
    w.end_object();
    w.finish()
}
