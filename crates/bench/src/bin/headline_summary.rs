//! The paper's §1/§6 headline numbers: IPC improvement, AMAT reduction,
//! traffic overhead and metadata storage — paper vs measured.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin headline_summary [--len N|--full]
//! ```

use planaria_bench::HarnessArgs;
use planaria_core::{storage, PlanariaConfig};
use planaria_sim::experiment::{mean, PrefetcherKind};
use planaria_sim::ipc::ipc_improvement;
use planaria_sim::table::{pct, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    println!("Headline summary: Planaria vs no prefetcher / BOP / SPP\n");

    let kinds = PrefetcherKind::FIGURE_SET;
    let grid = args.run_grid(&kinds);

    // Per-app IPC improvements of each prefetcher vs the no-prefetcher run.
    let mut ipc = vec![Vec::new(); 3]; // bop, spp, planaria
    let mut amat = vec![Vec::new(); 3]; // planaria vs none/bop/spp
    let mut traffic = vec![Vec::new(); 3]; // bop, spp, planaria vs none
    let mut power = vec![Vec::new(); 3];
    for (app, results) in args.apps.iter().zip(&grid) {
        let (none, bop, spp, planaria) = (&results[0], &results[1], &results[2], &results[3]);
        let mi = app.mem_intensity();
        let rel =
            |r: &planaria_sim::SimResult| ipc_improvement(r.amat_cycles, none.amat_cycles, mi);
        // IPC of Planaria measured against each baseline's own IPC.
        let ipc_n = rel(planaria);
        let ipc_b = (1.0 + rel(planaria)) / (1.0 + rel(bop)) - 1.0;
        let ipc_s = (1.0 + rel(planaria)) / (1.0 + rel(spp)) - 1.0;
        ipc[0].push(ipc_n);
        ipc[1].push(ipc_b);
        ipc[2].push(ipc_s);
        amat[0].push(planaria.amat_delta(none));
        amat[1].push(planaria.amat_delta(bop));
        amat[2].push(planaria.amat_delta(spp));
        traffic[0].push(bop.traffic_delta(none));
        traffic[1].push(spp.traffic_delta(none));
        traffic[2].push(planaria.traffic_delta(none));
        power[0].push(bop.power_delta(none));
        power[1].push(spp.power_delta(none));
        power[2].push(planaria.power_delta(none));
    }

    let m = |v: &Vec<f64>| mean(v.iter().copied());
    let mut t = TextTable::new(["metric", "measured", "paper"]);
    t.row(["Planaria IPC vs none".to_string(), pct(m(&ipc[0])), "+28.9%".to_string()]);
    t.row(["Planaria IPC vs BOP".to_string(), pct(m(&ipc[1])), "+21.9%".to_string()]);
    t.row(["Planaria IPC vs SPP".to_string(), pct(m(&ipc[2])), "+15.3%".to_string()]);
    t.rule();
    t.row(["Planaria AMAT vs none".to_string(), pct(m(&amat[0])), "-24.3%".to_string()]);
    t.row(["Planaria AMAT vs BOP".to_string(), pct(m(&amat[1])), "-21.3%".to_string()]);
    t.row(["Planaria AMAT vs SPP".to_string(), pct(m(&amat[2])), "-15.1%".to_string()]);
    t.rule();
    t.row(["BOP traffic overhead".to_string(), pct(m(&traffic[0])), "+23.4%".to_string()]);
    t.row(["SPP traffic overhead".to_string(), pct(m(&traffic[1])), "+15.9%".to_string()]);
    t.row(["Planaria traffic overhead".to_string(), pct(m(&traffic[2])), "(small)".to_string()]);
    t.rule();
    t.row(["BOP power overhead".to_string(), pct(m(&power[0])), "+13.5%".to_string()]);
    t.row(["SPP power overhead".to_string(), pct(m(&power[1])), "+9.7%".to_string()]);
    t.row(["Planaria power overhead".to_string(), pct(m(&power[2])), "+0.5%".to_string()]);
    t.rule();
    let kb = storage::planaria_kilobytes(&PlanariaConfig::default());
    t.row([
        "Planaria storage".to_string(),
        format!("{kb:.1} KB ({:.1}% of SC)", kb / 4096.0 * 100.0),
        "345.2 KB (8.4%)".to_string(),
    ]);
    println!("{}", t.render());
}
