//! Telemetry export — structured decision-trace dump for one cell.
//!
//! Runs a single (application × prefetcher) simulation with event capture
//! enabled ([`planaria_sim::TelemetryConfig::events`]) and writes the
//! decision trace to stdout, JSONL by default or CSV with `--csv`. Every
//! line of the JSONL stream is one self-contained JSON object: a `meta`
//! header, one `event` line per captured decision/lifecycle event, and a
//! final `summary` line with the full counter set (the summary survives
//! ring-buffer truncation, so the Figure 9 SLP/TLP issue split is always
//! exact regardless of `--capacity`).
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin telemetry_export -- \
//!     --app HoK --len 200_000 > hok.jsonl
//! cargo run --release -p planaria-bench --bin telemetry_export -- \
//!     --app Fort --kind "Planaria(TLP)" --csv > fort.csv
//! ```

use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::{MemorySystem, SystemConfig, TelemetryConfig};
use planaria_trace::apps::{self, AppId};

const ALL_KINDS: [PrefetcherKind; 11] = [
    PrefetcherKind::None,
    PrefetcherKind::NextLine,
    PrefetcherKind::Stride,
    PrefetcherKind::Bop,
    PrefetcherKind::Spp,
    PrefetcherKind::SlpOnly,
    PrefetcherKind::TlpOnly,
    PrefetcherKind::Planaria,
    PrefetcherKind::PlanariaSlpIssue,
    PrefetcherKind::PlanariaTlpIssue,
    PrefetcherKind::PlanariaParallel,
];

struct ExportArgs {
    app: AppId,
    kind: PrefetcherKind,
    len: usize,
    warmup: f64,
    capacity: usize,
    csv: bool,
}

impl ExportArgs {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self {
            app: AppId::HoK,
            kind: PrefetcherKind::Planaria,
            len: 200_000,
            warmup: 0.0,
            capacity: TelemetryConfig::DEFAULT_CAPACITY,
            csv: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--app" => {
                    let v = it.next().expect("--app needs an abbreviation");
                    out.app = AppId::ALL
                        .into_iter()
                        .find(|a| a.abbr().eq_ignore_ascii_case(v.trim()))
                        .unwrap_or_else(|| panic!("unknown app abbreviation {v:?}"));
                }
                "--kind" => {
                    let v = it.next().expect("--kind needs a prefetcher label");
                    out.kind = ALL_KINDS
                        .into_iter()
                        .find(|k| k.label().eq_ignore_ascii_case(v.trim()))
                        .unwrap_or_else(|| panic!("unknown prefetcher kind {v:?}"));
                }
                "--len" => {
                    let v = it.next().expect("--len needs a value");
                    out.len = v.replace('_', "").parse().expect("--len must be an integer");
                }
                "--warmup" => {
                    let v = it.next().expect("--warmup needs a fraction");
                    out.warmup = v.parse().expect("--warmup must be a float");
                }
                "--capacity" => {
                    let v = it.next().expect("--capacity needs a value");
                    out.capacity =
                        v.replace('_', "").parse().expect("--capacity must be an integer");
                }
                "--csv" => out.csv = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--app ABBR] [--kind LABEL] [--len N] [--warmup F] \
                         [--capacity N] [--csv]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        out
    }
}

fn main() {
    let args = ExportArgs::parse(std::env::args().skip(1));
    let trace = apps::profile(args.app).scaled(args.len).build();

    let cfg = SystemConfig {
        telemetry: TelemetryConfig::events_with_capacity(args.capacity),
        ..SystemConfig::default()
    };
    let sys = MemorySystem::new(cfg, args.kind.build());
    let (result, report) = sys.run_telemetry(&trace, args.warmup);

    let label = format!("{}/{}", args.app.abbr(), args.kind.label());
    if args.csv {
        print!("{}", report.to_csv());
    } else {
        print!("{}", report.to_jsonl(&label));
    }
    eprintln!(
        "{label}: {} accesses, hit rate {:.3}, {} events captured ({} dropped), \
         issued slp/tlp = {}/{}",
        args.len,
        result.hit_rate,
        report.events.len(),
        report.events_dropped,
        report.issued(planaria_common::PrefetchOrigin::Slp),
        report.issued(planaria_common::PrefetchOrigin::Tlp),
    );
}
