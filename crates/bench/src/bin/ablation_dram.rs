//! Ablation — memory-controller policies under Planaria.
//!
//! * **Scheduler**: FR-FCFS (default) vs strict FCFS — how much of the
//!   system's performance comes from row-hit-first scheduling, which
//!   Planaria's page-bursting prefetches feed.
//! * **CKE power-down**: on vs off — the LPDDR low-power mechanism that
//!   Table 1's tCKE/tXP parameters model.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_dram [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_dram::{PagePolicy, SchedulerKind};
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::SystemConfig;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![
            planaria_trace::apps::AppId::Cfm,
            planaria_trace::apps::AppId::TikT,
            planaria_trace::apps::AppId::Pm,
        ];
    }
    println!("Ablation: DRAM scheduler and power-down (Planaria prefetcher)\n");

    let variants: [(&str, SchedulerKind, bool, PagePolicy); 4] = [
        ("frfcfs", SchedulerKind::FrFcfs, true, PagePolicy::Open),
        ("fcfs", SchedulerKind::Fcfs, true, PagePolicy::Open),
        ("closed", SchedulerKind::FrFcfs, true, PagePolicy::Closed),
        ("no-pd", SchedulerKind::FrFcfs, false, PagePolicy::Open),
    ];
    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for &(tag, sched, powerdown, page) in &variants {
            let mut cfg = SystemConfig::default();
            cfg.dram = cfg.dram.with_scheduler(sched).with_page_policy(page);
            cfg.dram.powerdown = powerdown;
            jobs.push(
                Job::new(format!("{}/{tag}", app.abbr()), source.clone(), PrefetcherKind::Planaria)
                    .config(cfg),
            );
        }
    }
    let results = args.run_jobs(jobs);

    let mut t = TextTable::new([
        "app",
        "FR-FCFS AMAT",
        "FCFS AMAT",
        "closed-pg AMAT",
        "row-hit FR/closed",
        "power PD-on",
        "power PD-off",
    ]);
    for (app, row) in args.apps.iter().zip(results.chunks(variants.len())) {
        let [frfcfs, fcfs, closed, no_pd] = row else { unreachable!("chunk size") };
        t.row([
            app.abbr().to_string(),
            format!("{:.1}", frfcfs.amat_cycles),
            format!("{:.1}", fcfs.amat_cycles),
            format!("{:.1}", closed.amat_cycles),
            format!("{} / {}", pct0(frfcfs.dram_row_hit_rate), pct0(closed.dram_row_hit_rate)),
            format!("{:.1} mW", frfcfs.power_mw),
            format!("{:.1} mW", no_pd.power_mw),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected shapes: FCFS costs AMAT by forgoing row-hit reordering;\n\
         closed-page forfeits the row hits Planaria's page bursts create;\n\
         disabling power-down raises background power on idle channels."
    );
}
