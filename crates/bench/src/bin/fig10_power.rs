//! Figure 10 — memory-system power per application and prefetcher.
//!
//! Paper result: Planaria adds only 0.5% power on average (range −3.3% on
//! HI3 to +2.8%), while BOP adds 13.5% and SPP 9.7%.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig10_power [--len N|--full]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::{mean, PrefetcherKind};
use planaria_sim::table::{pct, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    println!("Figure 10: memory-system power (normalised to no prefetcher)\n");

    let kinds = PrefetcherKind::FIGURE_SET;
    let grid = args.run_grid(&kinds);

    let mut t = TextTable::new(["app", "None (mW)", "BOP", "SPP", "Planaria"]);
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (app, results) in args.apps.iter().zip(&grid) {
        let (none, bop, spp, planaria) = (&results[0], &results[1], &results[2], &results[3]);
        deltas[0].push(bop.power_delta(none));
        deltas[1].push(spp.power_delta(none));
        deltas[2].push(planaria.power_delta(none));
        t.row([
            app.abbr().to_string(),
            format!("{:.1}", none.power_mw),
            pct(bop.power_delta(none)),
            pct(spp.power_delta(none)),
            pct(planaria.power_delta(none)),
        ]);
    }
    t.rule().row([
        "avg".to_string(),
        String::new(),
        pct(mean(deltas[0].iter().copied())),
        pct(mean(deltas[1].iter().copied())),
        pct(mean(deltas[2].iter().copied())),
    ]);
    println!("{}", t.render());
    println!(
        "paper: BOP +13.5%, SPP +9.7%, Planaria +0.5% average (−3.3%..+2.8% per app).\n\
         The shape to check: Planaria's power cost is an order of magnitude\n\
         below the delta prefetchers', because its traffic is accurate."
    );
}
