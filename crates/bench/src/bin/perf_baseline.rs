//! Performance baseline — single-thread simulation throughput.
//!
//! Runs the Figure 8 grid (all Table 2 apps × the figure prefetcher set)
//! serially, reports accesses/second per prefetcher kind, and writes the
//! measurement to `BENCH_perf.json` so every PR extends the repository's
//! performance trajectory. The recorded pre-optimization reference
//! (`BASELINE_*` below) was measured on this machine at the commit named
//! in the JSON; the emitted file carries both numbers.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin perf_baseline [--len N] [--repeats N] [--out F]
//! cargo run --release -p planaria-bench --bin perf_baseline -- --check F
//! ```
//!
//! Trace synthesis is excluded from the timings: every trace is built
//! before its cells are measured, exactly like the parallel runner's
//! shared trace cache. The whole grid is timed in `--repeats` interleaved
//! rounds and each (kind, app) cell keeps its **minimum** — on a shared
//! machine the min over spread-out samples estimates the noise floor
//! (what the code costs), while a single sample measures whatever else
//! the host happened to be doing.

use std::time::Instant;

use planaria_bench::cli;
use planaria_common::json::{self, Value};
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::{MemorySystem, SimResult, SystemConfig};
use planaria_trace::apps::{profile, AppId};
use planaria_trace::io::ChunkedTraceReader;

/// One-line usage summary (stderr on `--help` and on argument errors).
const USAGE: &str = "usage: perf_baseline [--len N] [--repeats N] [--out FILE] \
                     | --stream [--len N] [--trace FILE] [--verify] [--out FILE] | --check FILE";

/// Reports a usage error and exits 2 (never returns).
fn fail(msg: String) -> ! {
    cli::usage_error(USAGE, msg)
}

/// Default accesses per application trace (kept small enough for CI).
const DEFAULT_LEN: usize = 200_000;

/// Default timing repeats per cell (minimum kept).
const DEFAULT_REPEATS: usize = 5;

/// Commit of the recorded pre-optimization reference measurement.
const BASELINE_COMMIT: &str = "3191706";

/// `--len` the reference measurement was taken at.
const BASELINE_LEN: usize = 200_000;

/// Pre-optimization accesses/second per kind (single thread, this
/// machine, commit [`BASELINE_COMMIT`]), plus the all-kinds total.
const BASELINE_APS: [(&str, f64); 5] = [
    ("None", 1_518_535.0),
    ("BOP", 1_474_618.0),
    ("SPP", 1_318_307.0),
    ("Planaria", 1_014_356.0),
    ("total", 1_298_252.0),
];

fn main() {
    let mut len = DEFAULT_LEN;
    let mut repeats = DEFAULT_REPEATS;
    let mut out_path: Option<String> = None;
    let mut stream = false;
    let mut trace_path: Option<String> = None;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--len" => {
                len = cli::positive_count("--len", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--repeats" => {
                repeats = cli::positive_count("--repeats", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--out" => {
                out_path = Some(cli::value_of("--out", args.next()).unwrap_or_else(|e| fail(e)));
            }
            "--stream" => stream = true,
            "--trace" => {
                trace_path =
                    Some(cli::value_of("--trace", args.next()).unwrap_or_else(|e| fail(e)));
            }
            "--verify" => verify = true,
            "--check" => {
                let path = cli::value_of("--check", args.next()).unwrap_or_else(|e| fail(e));
                check(&path);
                return;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    if stream {
        let out = out_path.unwrap_or_else(|| String::from("BENCH_perf_stream.json"));
        stream_mode(len, trace_path.as_deref(), verify, &out);
        return;
    }
    if trace_path.is_some() || verify {
        fail("--trace/--verify only apply to --stream mode".into());
    }
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_perf.json"));

    let kinds = PrefetcherKind::FIGURE_SET;
    let apps = AppId::ALL;
    eprintln!(
        "perf_baseline: {} apps x {} kinds, {len} accesses/app, 1 thread, min of {repeats}",
        apps.len(),
        4
    );

    let traces: Vec<_> = apps.iter().map(|&a| profile(a).scaled(len).build()).collect();
    // One untimed warm-up cell so lazy init (page faults, allocator pools)
    // doesn't land in the first measured kind.
    MemorySystem::new(SystemConfig::default(), kinds[0].build()).run(&traces[0]);

    // Repeats are interleaved as whole-grid rounds (not back-to-back per
    // cell): a multi-second load burst on a shared host then has to recur
    // in *every* round to bias a cell's minimum, instead of swallowing all
    // of one cell's samples at once.
    let mut cell_secs = vec![f64::INFINITY; kinds.len() * traces.len()];
    let mut cell_accesses = vec![0u64; kinds.len() * traces.len()];
    for _round in 0..repeats {
        for (ki, kind) in kinds.iter().enumerate() {
            for (ti, trace) in traces.iter().enumerate() {
                let sys = MemorySystem::new(SystemConfig::default(), kind.build());
                let t0 = Instant::now();
                let r = sys.run(trace);
                let secs = t0.elapsed().as_secs_f64();
                let cell = ki * traces.len() + ti;
                cell_secs[cell] = cell_secs[cell].min(secs);
                cell_accesses[cell] = r.accesses;
            }
        }
    }

    let mut rows: Vec<(&str, u64, f64)> = Vec::new();
    let mut total_accesses = 0u64;
    let mut total_secs = 0.0f64;
    for (ki, kind) in kinds.iter().enumerate() {
        let cells = ki * traces.len()..(ki + 1) * traces.len();
        let accesses: u64 = cell_accesses[cells.clone()].iter().sum();
        let secs: f64 = cell_secs[cells].iter().sum();
        eprintln!(
            "  {:<10} {:>9.0} accesses/s  ({secs:.2}s)",
            kind.label(),
            accesses as f64 / secs
        );
        rows.push((kind.label(), accesses, secs));
        total_accesses += accesses;
        total_secs += secs;
    }
    let total_aps = total_accesses as f64 / total_secs;
    eprintln!("  {:<10} {:>9.0} accesses/s  ({total_secs:.2}s)", "total", total_aps);

    let doc = render(len, &rows, total_accesses, total_secs);
    json::validate(&doc).expect("perf_baseline emitted malformed JSON");
    std::fs::write(&out_path, &doc).expect("write BENCH_perf.json");
    eprintln!("wrote {out_path}");
    let baseline_total = BASELINE_APS.iter().find(|(k, _)| *k == "total").map(|(_, v)| *v);
    if let Some(b) = baseline_total.filter(|&b| b > 0.0 && len == BASELINE_LEN) {
        eprintln!("speedup vs {BASELINE_COMMIT} baseline: {:.2}x", total_aps / b);
    }
}

/// One measured streamed run.
struct StreamRow {
    name: String,
    accesses: u64,
    secs: f64,
    fingerprint: u64,
    /// Resident set size (kB) sampled right after the run.
    rss_kb: Option<u64>,
}

/// Reads a field like `VmRSS` or `VmHWM` from `/proc/self/status`, in kB
/// (`None` off Linux).
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Opens a packed `planaria-trace-v1` file as a replay stream.
fn open_packed(path: &str) -> ChunkedTraceReader<std::io::BufReader<std::fs::File>> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("--trace: cannot open {path}: {e}");
        std::process::exit(1);
    });
    ChunkedTraceReader::new(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("--trace: {path}: {e}");
        std::process::exit(1);
    })
}

/// `--stream` mode: run the Planaria prefetcher through the streamed
/// engine — synthesizing every Table 2 app at `--len` chunk-at-a-time, or
/// replaying a packed `--trace` file — and record throughput, result
/// fingerprints and the resident-set size per row. No full-trace `Vec` is
/// ever built on this path, so steady-state memory is flat no matter how
/// large `--len` is; the recorded `rss_kb` per row is the evidence.
///
/// `--verify` additionally runs each workload through the materialized
/// engine (this *does* build the trace in memory — use a small `--len`)
/// and exits non-zero unless the two results are bit-identical.
fn stream_mode(len: usize, trace_path: Option<&str>, verify: bool, out_path: &str) {
    let kind = PrefetcherKind::Planaria;
    let sys = || MemorySystem::new(SystemConfig::default(), kind.build());
    let verify_against = |streamed: &SimResult, materialized: &SimResult| {
        if streamed != materialized {
            eprintln!(
                "--verify FAILED for {}: streamed fingerprint {:#018x} != materialized {:#018x}",
                streamed.workload,
                streamed.fingerprint(),
                materialized.fingerprint()
            );
            std::process::exit(1);
        }
        eprintln!("  {:<6} verified: streamed == materialized", streamed.workload);
    };

    let mut rows: Vec<StreamRow> = Vec::new();
    match trace_path {
        Some(path) => {
            eprintln!("perf_baseline --stream: replaying {path} (Planaria, 1 thread)");
            let mut reader = open_packed(path);
            let t0 = Instant::now();
            let r = sys().run_stream(&mut reader);
            let secs = t0.elapsed().as_secs_f64();
            if verify {
                let trace = planaria_trace::io::read_chunked(std::io::BufReader::new(
                    std::fs::File::open(path).expect("re-open packed trace"),
                ))
                .unwrap_or_else(|e| {
                    eprintln!("--verify: {path}: {e}");
                    std::process::exit(1);
                });
                verify_against(&r, &sys().run(&trace));
            }
            rows.push(StreamRow {
                name: r.workload.clone(),
                accesses: r.accesses,
                secs,
                fingerprint: r.fingerprint(),
                rss_kb: proc_status_kb("VmRSS"),
            });
        }
        None => {
            eprintln!(
                "perf_baseline --stream: {} apps x Planaria, {len} accesses/app, 1 thread",
                AppId::ALL.len()
            );
            for app in AppId::ALL {
                let spec = profile(app).scaled(len);
                let t0 = Instant::now();
                let r = sys().run_stream(&mut spec.stream());
                let secs = t0.elapsed().as_secs_f64();
                if verify {
                    verify_against(&r, &sys().run(&spec.build()));
                }
                rows.push(StreamRow {
                    name: r.workload.clone(),
                    accesses: r.accesses,
                    secs,
                    fingerprint: r.fingerprint(),
                    rss_kb: proc_status_kb("VmRSS"),
                });
            }
        }
    }

    for row in &rows {
        eprintln!(
            "  {:<6} {:>9.0} accesses/s  fingerprint {:#018x}  rss {}",
            row.name,
            row.accesses as f64 / row.secs,
            row.fingerprint,
            row.rss_kb.map_or_else(|| "n/a".into(), |kb| format!("{:.1} MB", kb as f64 / 1024.0)),
        );
    }

    let doc = render_stream(len, trace_path, &rows, verify.then_some(true));
    json::validate(&doc).expect("perf_baseline emitted malformed JSON");
    std::fs::write(out_path, &doc).expect("write stream measurement");
    eprintln!("wrote {out_path}");
}

/// Renders the `--stream` measurement document (fixed key order).
fn render_stream(
    len: usize,
    trace_path: Option<&str>,
    rows: &[StreamRow],
    verified: Option<bool>,
) -> String {
    let mut w = json::Writer::pretty();
    w.begin_object();
    w.key("schema");
    w.string("planaria-perf-stream-v1");
    w.key("prefetcher");
    w.string(PrefetcherKind::Planaria.label());
    w.key("mode");
    w.string(if trace_path.is_some() { "replay" } else { "synth" });
    w.key("len_per_app");
    match trace_path {
        Some(_) => w.null(),
        None => w.u64(len as u64),
    }
    w.key("trace");
    match trace_path {
        Some(p) => w.string(p),
        None => w.null(),
    }
    w.key("rows");
    w.begin_object();
    for row in rows {
        w.key(&row.name);
        w.begin_object();
        w.key("accesses");
        w.u64(row.accesses);
        w.key("seconds");
        w.f64(row.secs, 3);
        w.key("accesses_per_sec");
        w.f64(row.accesses as f64 / row.secs, 0);
        w.key("fingerprint");
        w.string(&format!("{:#018x}", row.fingerprint));
        w.key("rss_kb");
        match row.rss_kb {
            Some(kb) => w.u64(kb),
            None => w.null(),
        }
        w.end_object();
    }
    w.end_object();
    w.key("verified");
    match verified {
        Some(v) => w.bool(v),
        None => w.null(),
    }
    w.key("vm_hwm_kb");
    match proc_status_kb("VmHWM") {
        Some(kb) => w.u64(kb),
        None => w.null(),
    }
    w.end_object();
    w.finish()
}

/// Validates a previously written file; exits non-zero on bad JSON or an
/// internally inconsistent measurement.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match check_doc(&text) {
        Ok(summary) => println!("{path}: {summary}"),
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--check` predicate: the document must be well-formed
/// `planaria-perf-v1` JSON, and — whenever a baseline block is recorded —
/// the measurement's `len_per_app` must match the baseline's, because the
/// emitted `speedup_total` compares the two directly and a `--len`
/// mismatch silently turns it into a fiction (shorter traces spend
/// proportionally more time in warmup-phase table misses).
fn check_doc(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("planaria-perf-v1") => check_perf_doc(&doc),
        Some("planaria-perf-stream-v1") => check_stream_doc(&doc),
        Some(other) => Err(format!(
            "unexpected schema {other:?} (want planaria-perf-v1 or planaria-perf-stream-v1)"
        )),
        None => Err("missing \"schema\" key".into()),
    }
}

/// `planaria-perf-v1` branch of [`check_doc`].
fn check_perf_doc(doc: &Value) -> Result<String, String> {
    let len =
        doc.get("len_per_app").and_then(|v| v.as_f64()).ok_or("missing numeric \"len_per_app\"")?;
    let baseline = doc.get("baseline").ok_or("missing \"baseline\" key")?;
    if let Some(base_len) = baseline.get("len_per_app").and_then(|v| v.as_f64()) {
        if base_len != len {
            return Err(format!(
                "len_per_app mismatch: measurement ran --len {len:.0} but the recorded \
                 baseline was taken at --len {base_len:.0}; the speedup comparison is \
                 invalid (re-run without --len, or at --len {base_len:.0})"
            ));
        }
    }
    Ok(format!("well-formed planaria-perf-v1 measurement (len_per_app {len:.0})"))
}

/// `planaria-perf-stream-v1` branch of [`check_doc`]: every row must carry
/// a numeric access count and a parseable 64-bit fingerprint, and a run
/// that recorded `"verified": false` is rejected outright — it means the
/// streamed result diverged from the materialized oracle.
fn check_stream_doc(doc: &Value) -> Result<String, String> {
    let rows = doc.get("rows").and_then(|v| v.as_object()).ok_or("missing \"rows\" object")?;
    if rows.is_empty() {
        return Err("\"rows\" is empty: no workload was measured".into());
    }
    for (name, row) in rows {
        row.get("accesses")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("row {name:?}: missing numeric \"accesses\""))?;
        let fp = row
            .get("fingerprint")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("row {name:?}: missing \"fingerprint\" string"))?;
        let hex = fp
            .strip_prefix("0x")
            .filter(|h| h.len() == 16)
            .ok_or_else(|| format!("row {name:?}: fingerprint {fp:?} is not 0x + 16 hex digits"))?;
        u64::from_str_radix(hex, 16)
            .map_err(|_| format!("row {name:?}: fingerprint {fp:?} is not valid hex"))?;
    }
    if matches!(doc.get("verified"), Some(Value::Bool(false))) {
        return Err("\"verified\" is false: streamed run diverged from materialized".into());
    }
    Ok(format!("well-formed planaria-perf-stream-v1 measurement ({} rows)", rows.len()))
}

/// Renders the measurement document (fixed key order, so diffs are clean).
fn render(len: usize, rows: &[(&str, u64, f64)], total_accesses: u64, total_secs: f64) -> String {
    let mut w = json::Writer::pretty();
    w.begin_object();
    w.key("schema");
    w.string("planaria-perf-v1");
    w.key("grid");
    w.string("fig8");
    w.key("threads");
    w.u64(1);
    w.key("len_per_app");
    w.u64(len as u64);
    w.key("apps");
    w.u64(AppId::ALL.len() as u64);

    w.key("baseline");
    if BASELINE_APS.iter().all(|(_, v)| *v > 0.0) {
        w.begin_object();
        w.key("commit");
        w.string(BASELINE_COMMIT);
        w.key("len_per_app");
        w.u64(BASELINE_LEN as u64);
        w.key("accesses_per_sec");
        w.begin_object();
        for (kind, aps) in BASELINE_APS {
            w.key(kind);
            w.f64(aps, 0);
        }
        w.end_object();
        w.end_object();
    } else {
        w.null();
    }

    let total_aps = total_accesses as f64 / total_secs;
    w.key("current");
    w.begin_object();
    w.key("accesses_per_sec");
    w.begin_object();
    for (kind, accesses, secs) in rows {
        w.key(kind);
        w.f64(*accesses as f64 / secs, 0);
    }
    w.key("total");
    w.f64(total_aps, 0);
    w.end_object();
    w.key("total_accesses");
    w.u64(total_accesses);
    w.key("total_seconds");
    w.f64(total_secs, 3);
    w.end_object();

    w.key("speedup_total");
    let baseline_total = BASELINE_APS.iter().find(|(k, _)| *k == "total").map(|(_, v)| *v);
    match baseline_total.filter(|&b| b > 0.0 && len == BASELINE_LEN) {
        Some(b) => w.f64(total_aps / b, 3),
        None => w.null(),
    }
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<(&'static str, u64, f64)> {
        vec![("None", 1000, 0.5), ("Planaria", 1000, 1.0)]
    }

    #[test]
    fn rendered_doc_at_baseline_len_passes_check() {
        let doc = render(BASELINE_LEN, &rows(), 2000, 1.5);
        let msg = check_doc(&doc).expect("fresh measurement must pass its own check");
        assert!(msg.contains("planaria-perf-v1"), "{msg}");
    }

    #[test]
    fn check_rejects_len_mismatch_against_recorded_baseline() {
        // A measurement taken at a different --len than the committed
        // baseline must fail --check with an actionable message, not slip
        // through as a bogus speedup.
        let doc = render(BASELINE_LEN / 2, &rows(), 2000, 1.5);
        let err = check_doc(&doc).expect_err("len mismatch must fail");
        assert!(err.contains("len_per_app mismatch"), "{err}");
        assert!(err.contains("re-run"), "message must say how to fix it: {err}");
    }

    #[test]
    fn check_rejects_malformed_and_misschemaed_documents() {
        assert!(check_doc("{").expect_err("truncated").contains("malformed"));
        assert!(check_doc("{\"schema\": \"planaria-contention-v1\"}")
            .expect_err("wrong schema")
            .contains("unexpected schema"));
        assert!(check_doc("{\"x\": 1}").expect_err("no schema").contains("missing"));
    }

    fn stream_rows() -> Vec<StreamRow> {
        vec![
            StreamRow {
                name: "HoK".into(),
                accesses: 200_000,
                secs: 0.25,
                fingerprint: 0x0123_4567_89ab_cdef,
                rss_kb: Some(10_240),
            },
            StreamRow {
                name: "Cfm".into(),
                accesses: 200_000,
                secs: 0.30,
                fingerprint: 0xfeed_face_cafe_f00d,
                rss_kb: None,
            },
        ]
    }

    #[test]
    fn rendered_stream_doc_passes_check() {
        let doc = render_stream(200_000, None, &stream_rows(), Some(true));
        json::validate(&doc).expect("stream doc must be well-formed JSON");
        let msg = check_doc(&doc).expect("fresh stream measurement must pass its own check");
        assert!(msg.contains("planaria-perf-stream-v1"), "{msg}");
        assert!(msg.contains("2 rows"), "{msg}");
    }

    #[test]
    fn stream_check_rejects_bad_fingerprints_and_failed_verification() {
        let good = render_stream(200_000, None, &stream_rows(), Some(true));
        // A fingerprint that is not 0x + 16 hex digits must fail.
        let bad_fp = good.replace("0x0123456789abcdef", "0xnot-a-fingerprint");
        assert!(check_doc(&bad_fp).expect_err("bad fingerprint").contains("fingerprint"));
        // A run that recorded a streamed/materialized divergence must fail.
        let unverified = render_stream(200_000, None, &stream_rows(), Some(false));
        assert!(check_doc(&unverified).expect_err("verified: false").contains("diverged"));
        // No rows measured at all must fail.
        assert!(check_doc("{\"schema\": \"planaria-perf-stream-v1\", \"rows\": {}}")
            .expect_err("empty rows")
            .contains("empty"));
    }
}
