//! Performance baseline — single-thread simulation throughput.
//!
//! Runs the Figure 8 grid (all Table 2 apps × the figure prefetcher set)
//! serially, reports accesses/second per prefetcher kind, and writes the
//! measurement to `BENCH_perf.json` so every PR extends the repository's
//! performance trajectory. The recorded pre-optimization reference
//! (`BASELINE_*` below) was measured on this machine at the commit named
//! in the JSON; the emitted file carries both numbers.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin perf_baseline [--len N] [--repeats N] [--out F]
//! cargo run --release -p planaria-bench --bin perf_baseline -- --check F
//! ```
//!
//! Trace synthesis is excluded from the timings: every trace is built
//! before its cells are measured, exactly like the parallel runner's
//! shared trace cache. The whole grid is timed in `--repeats` interleaved
//! rounds and each (kind, app) cell keeps its **minimum** — on a shared
//! machine the min over spread-out samples estimates the noise floor
//! (what the code costs), while a single sample measures whatever else
//! the host happened to be doing.

use std::time::Instant;

use planaria_bench::cli;
use planaria_common::json;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::{MemorySystem, SystemConfig};
use planaria_trace::apps::{profile, AppId};

/// One-line usage summary (stderr on `--help` and on argument errors).
const USAGE: &str = "usage: perf_baseline [--len N] [--repeats N] [--out FILE] | --check FILE";

/// Reports a usage error and exits 2 (never returns).
fn fail(msg: String) -> ! {
    cli::usage_error(USAGE, msg)
}

/// Default accesses per application trace (kept small enough for CI).
const DEFAULT_LEN: usize = 200_000;

/// Default timing repeats per cell (minimum kept).
const DEFAULT_REPEATS: usize = 5;

/// Commit of the recorded pre-optimization reference measurement.
const BASELINE_COMMIT: &str = "3191706";

/// `--len` the reference measurement was taken at.
const BASELINE_LEN: usize = 200_000;

/// Pre-optimization accesses/second per kind (single thread, this
/// machine, commit [`BASELINE_COMMIT`]), plus the all-kinds total.
const BASELINE_APS: [(&str, f64); 5] = [
    ("None", 1_518_535.0),
    ("BOP", 1_474_618.0),
    ("SPP", 1_318_307.0),
    ("Planaria", 1_014_356.0),
    ("total", 1_298_252.0),
];

fn main() {
    let mut len = DEFAULT_LEN;
    let mut repeats = DEFAULT_REPEATS;
    let mut out_path = String::from("BENCH_perf.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--len" => {
                len = cli::positive_count("--len", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--repeats" => {
                repeats = cli::positive_count("--repeats", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--out" => {
                out_path = cli::value_of("--out", args.next()).unwrap_or_else(|e| fail(e));
            }
            "--check" => {
                let path = cli::value_of("--check", args.next()).unwrap_or_else(|e| fail(e));
                check(&path);
                return;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    let kinds = PrefetcherKind::FIGURE_SET;
    let apps = AppId::ALL;
    eprintln!(
        "perf_baseline: {} apps x {} kinds, {len} accesses/app, 1 thread, min of {repeats}",
        apps.len(),
        4
    );

    let traces: Vec<_> = apps.iter().map(|&a| profile(a).scaled(len).build()).collect();
    // One untimed warm-up cell so lazy init (page faults, allocator pools)
    // doesn't land in the first measured kind.
    MemorySystem::new(SystemConfig::default(), kinds[0].build()).run(&traces[0]);

    // Repeats are interleaved as whole-grid rounds (not back-to-back per
    // cell): a multi-second load burst on a shared host then has to recur
    // in *every* round to bias a cell's minimum, instead of swallowing all
    // of one cell's samples at once.
    let mut cell_secs = vec![f64::INFINITY; kinds.len() * traces.len()];
    let mut cell_accesses = vec![0u64; kinds.len() * traces.len()];
    for _round in 0..repeats {
        for (ki, kind) in kinds.iter().enumerate() {
            for (ti, trace) in traces.iter().enumerate() {
                let sys = MemorySystem::new(SystemConfig::default(), kind.build());
                let t0 = Instant::now();
                let r = sys.run(trace);
                let secs = t0.elapsed().as_secs_f64();
                let cell = ki * traces.len() + ti;
                cell_secs[cell] = cell_secs[cell].min(secs);
                cell_accesses[cell] = r.accesses;
            }
        }
    }

    let mut rows: Vec<(&str, u64, f64)> = Vec::new();
    let mut total_accesses = 0u64;
    let mut total_secs = 0.0f64;
    for (ki, kind) in kinds.iter().enumerate() {
        let cells = ki * traces.len()..(ki + 1) * traces.len();
        let accesses: u64 = cell_accesses[cells.clone()].iter().sum();
        let secs: f64 = cell_secs[cells].iter().sum();
        eprintln!(
            "  {:<10} {:>9.0} accesses/s  ({secs:.2}s)",
            kind.label(),
            accesses as f64 / secs
        );
        rows.push((kind.label(), accesses, secs));
        total_accesses += accesses;
        total_secs += secs;
    }
    let total_aps = total_accesses as f64 / total_secs;
    eprintln!("  {:<10} {:>9.0} accesses/s  ({total_secs:.2}s)", "total", total_aps);

    let doc = render(len, &rows, total_accesses, total_secs);
    json::validate(&doc).expect("perf_baseline emitted malformed JSON");
    std::fs::write(&out_path, &doc).expect("write BENCH_perf.json");
    eprintln!("wrote {out_path}");
    let baseline_total = BASELINE_APS.iter().find(|(k, _)| *k == "total").map(|(_, v)| *v);
    if let Some(b) = baseline_total.filter(|&b| b > 0.0 && len == BASELINE_LEN) {
        eprintln!("speedup vs {BASELINE_COMMIT} baseline: {:.2}x", total_aps / b);
    }
}

/// Validates a previously written file; exits non-zero on bad JSON or an
/// internally inconsistent measurement.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match check_doc(&text) {
        Ok(summary) => println!("{path}: {summary}"),
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--check` predicate: the document must be well-formed
/// `planaria-perf-v1` JSON, and — whenever a baseline block is recorded —
/// the measurement's `len_per_app` must match the baseline's, because the
/// emitted `speedup_total` compares the two directly and a `--len`
/// mismatch silently turns it into a fiction (shorter traces spend
/// proportionally more time in warmup-phase table misses).
fn check_doc(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("planaria-perf-v1") => {}
        Some(other) => return Err(format!("unexpected schema {other:?} (want planaria-perf-v1)")),
        None => return Err("missing \"schema\" key".into()),
    }
    let len =
        doc.get("len_per_app").and_then(|v| v.as_f64()).ok_or("missing numeric \"len_per_app\"")?;
    let baseline = doc.get("baseline").ok_or("missing \"baseline\" key")?;
    if let Some(base_len) = baseline.get("len_per_app").and_then(|v| v.as_f64()) {
        if base_len != len {
            return Err(format!(
                "len_per_app mismatch: measurement ran --len {len:.0} but the recorded \
                 baseline was taken at --len {base_len:.0}; the speedup comparison is \
                 invalid (re-run without --len, or at --len {base_len:.0})"
            ));
        }
    }
    Ok(format!("well-formed planaria-perf-v1 measurement (len_per_app {len:.0})"))
}

/// Renders the measurement document (fixed key order, so diffs are clean).
fn render(len: usize, rows: &[(&str, u64, f64)], total_accesses: u64, total_secs: f64) -> String {
    let mut w = json::Writer::pretty();
    w.begin_object();
    w.key("schema");
    w.string("planaria-perf-v1");
    w.key("grid");
    w.string("fig8");
    w.key("threads");
    w.u64(1);
    w.key("len_per_app");
    w.u64(len as u64);
    w.key("apps");
    w.u64(AppId::ALL.len() as u64);

    w.key("baseline");
    if BASELINE_APS.iter().all(|(_, v)| *v > 0.0) {
        w.begin_object();
        w.key("commit");
        w.string(BASELINE_COMMIT);
        w.key("len_per_app");
        w.u64(BASELINE_LEN as u64);
        w.key("accesses_per_sec");
        w.begin_object();
        for (kind, aps) in BASELINE_APS {
            w.key(kind);
            w.f64(aps, 0);
        }
        w.end_object();
        w.end_object();
    } else {
        w.null();
    }

    let total_aps = total_accesses as f64 / total_secs;
    w.key("current");
    w.begin_object();
    w.key("accesses_per_sec");
    w.begin_object();
    for (kind, accesses, secs) in rows {
        w.key(kind);
        w.f64(*accesses as f64 / secs, 0);
    }
    w.key("total");
    w.f64(total_aps, 0);
    w.end_object();
    w.key("total_accesses");
    w.u64(total_accesses);
    w.key("total_seconds");
    w.f64(total_secs, 3);
    w.end_object();

    w.key("speedup_total");
    let baseline_total = BASELINE_APS.iter().find(|(k, _)| *k == "total").map(|(_, v)| *v);
    match baseline_total.filter(|&b| b > 0.0 && len == BASELINE_LEN) {
        Some(b) => w.f64(total_aps / b, 3),
        None => w.null(),
    }
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<(&'static str, u64, f64)> {
        vec![("None", 1000, 0.5), ("Planaria", 1000, 1.0)]
    }

    #[test]
    fn rendered_doc_at_baseline_len_passes_check() {
        let doc = render(BASELINE_LEN, &rows(), 2000, 1.5);
        let msg = check_doc(&doc).expect("fresh measurement must pass its own check");
        assert!(msg.contains("planaria-perf-v1"), "{msg}");
    }

    #[test]
    fn check_rejects_len_mismatch_against_recorded_baseline() {
        // A measurement taken at a different --len than the committed
        // baseline must fail --check with an actionable message, not slip
        // through as a bogus speedup.
        let doc = render(BASELINE_LEN / 2, &rows(), 2000, 1.5);
        let err = check_doc(&doc).expect_err("len mismatch must fail");
        assert!(err.contains("len_per_app mismatch"), "{err}");
        assert!(err.contains("re-run"), "message must say how to fix it: {err}");
    }

    #[test]
    fn check_rejects_malformed_and_misschemaed_documents() {
        assert!(check_doc("{").expect_err("truncated").contains("malformed"));
        assert!(check_doc("{\"schema\": \"planaria-contention-v1\"}")
            .expect_err("wrong schema")
            .contains("unexpected schema"));
        assert!(check_doc("{\"x\": 1}").expect_err("no schema").contains("missing"));
    }
}
