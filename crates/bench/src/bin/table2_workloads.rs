//! Table 2 — the targeted representative applications, plus summary
//! statistics of the synthetic traces standing in for them.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin table2_workloads [--len N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::profile;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Table 2: the targeted representative applications\n");

    let mut t = TextTable::new([
        "workload",
        "description",
        "paper len (M)",
        "abbr",
        "trace pages",
        "reads",
    ]);
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        t.row([
            app.name().to_string(),
            app.description().to_string(),
            format!("{:.2}", app.paper_length_m()),
            app.abbr().to_string(),
            trace.unique_pages().to_string(),
            pct0(trace.read_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(The paper's traces are proprietary bus captures; these synthetic\n\
         stand-ins reproduce their measured regularities — see DESIGN.md.)"
    );
}
