//! Ablation — Planaria's prefetch-degree throttle.
//!
//! A mobile SoC may clamp speculative traffic per trigger; this sweep shows
//! the coverage/traffic trade-off of limiting how much of the learned
//! snapshot is replayed per miss.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_degree [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_core::{Planaria, PlanariaConfig};
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct0, TextTable};

const DEGREES: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![planaria_trace::apps::AppId::Cfm, planaria_trace::apps::AppId::HoK];
    }
    println!("Ablation: Planaria prefetch degree (per-trigger burst cap)\n");

    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for &d in &DEGREES {
            jobs.push(Job::with_factory(
                format!("{}/degree={d}", app.abbr()),
                source.clone(),
                Box::new(move || {
                    let cfg = PlanariaConfig { max_degree: d, ..PlanariaConfig::default() };
                    Box::new(Planaria::new(cfg))
                }),
            ));
        }
    }
    let results = args.run_jobs(jobs);

    for (app, row) in args.apps.iter().zip(results.chunks(DEGREES.len())) {
        println!("=== {} ===", app.abbr());
        let mut t = TextTable::new(["degree", "hit rate", "AMAT", "pf issued", "accuracy"]);
        for (&d, r) in DEGREES.iter().zip(row) {
            t.row([
                d.to_string(),
                pct0(r.hit_rate),
                format!("{:.1}", r.amat_cycles),
                r.traffic.prefetch_reads.to_string(),
                pct0(r.prefetch_accuracy),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: coverage (and hit rate) grows with degree and\n\
         saturates once the whole snapshot fits in one burst; accuracy is\n\
         flat because the snapshot is accurate at any prefix."
    );
}
