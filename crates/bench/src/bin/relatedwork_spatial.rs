//! Related-work study — per-page vs global spatial signatures.
//!
//! The paper's §7 argues that spatial prefetchers keyed by small *global*
//! history tables mispredict at the system cache, which is why SLP keys
//! its snapshots by page number. This harness measures that argument:
//! SLP (per-page) against a PC-free SMS (one global pattern table indexed
//! by trigger offset) on the same traces.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin relatedwork_spatial [--len N]
//! ```

use planaria_baselines::Sms;
use planaria_core::{Prefetcher, Slp};
use planaria_sim::table::{pct0, TextTable};
use planaria_sim::{MemorySystem, SystemConfig};
use planaria_trace::apps::profile;

fn main() {
    let mut args = planaria_bench::HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![
            planaria_trace::apps::AppId::Cfm,
            planaria_trace::apps::AppId::Hi3,
            planaria_trace::apps::AppId::Pm,
        ];
    }
    println!("Related work: per-page (SLP) vs global-table (SMS) spatial signatures\n");

    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        println!("=== {} ===", app.abbr());
        let mut t = TextTable::new(["prefetcher", "hit rate", "accuracy", "coverage", "traffic"]);
        let contenders: Vec<Box<dyn Prefetcher>> =
            vec![Box::new(Sms::default()), Box::new(Slp::default())];
        for pf in contenders {
            let r = MemorySystem::new(SystemConfig::default(), pf).run(&trace);
            t.row([
                r.prefetcher.clone(),
                pct0(r.hit_rate),
                pct0(r.prefetch_accuracy),
                pct0(r.prefetch_coverage),
                r.traffic.total().to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: the global trigger-offset table cross-trains\n\
         unrelated pages and pays in accuracy; the per-page table does not\n\
         (the paper's rationale for PN-keyed snapshot signatures)."
    );
}
