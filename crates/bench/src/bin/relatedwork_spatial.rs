//! Related-work study — per-page vs global spatial signatures.
//!
//! The paper's §7 argues that spatial prefetchers keyed by small *global*
//! history tables mispredict at the system cache, which is why SLP keys
//! its snapshots by page number. This harness measures that argument:
//! SLP (per-page) against a PC-free SMS (one global pattern table indexed
//! by trigger offset) on the same traces.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin relatedwork_spatial [--len N]
//! ```

use planaria_baselines::Sms;
use planaria_core::{Prefetcher, Slp};
use planaria_sim::runner::{Job, PrefetcherFactory, TraceSource};
use planaria_sim::table::{pct0, TextTable};

fn main() {
    let mut args = planaria_bench::HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![
            planaria_trace::apps::AppId::Cfm,
            planaria_trace::apps::AppId::Hi3,
            planaria_trace::apps::AppId::Pm,
        ];
    }
    println!("Related work: per-page (SLP) vs global-table (SMS) spatial signatures\n");

    type MakePrefetcher = fn() -> Box<dyn Prefetcher>;
    let contenders: [(&str, MakePrefetcher); 2] =
        [("SMS", || Box::new(Sms::default())), ("SLP", || Box::new(Slp::default()))];
    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        for (tag, make) in contenders {
            jobs.push(Job::with_factory(
                format!("{}/{tag}", app.abbr()),
                source.clone(),
                Box::new(make) as PrefetcherFactory,
            ));
        }
    }
    let results = args.run_jobs(jobs);

    for (app, row) in args.apps.iter().zip(results.chunks(contenders.len())) {
        println!("=== {} ===", app.abbr());
        let mut t = TextTable::new(["prefetcher", "hit rate", "accuracy", "coverage", "traffic"]);
        for r in row {
            t.row([
                r.prefetcher.clone(),
                pct0(r.hit_rate),
                pct0(r.prefetch_accuracy),
                pct0(r.prefetch_coverage),
                r.traffic.total().to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: the global trigger-offset table cross-trains\n\
         unrelated pages and pays in accuracy; the per-page table does not\n\
         (the paper's rationale for PN-keyed snapshot signatures)."
    );
}
