//! Ablation — coordination policy (paper §7's coordinator comparison).
//!
//! Contrasts Planaria's "parallel training, serial issuing" against its own
//! halves and against a parallel coordinator that lets both sub-prefetchers
//! issue on every trigger (the ISB/MISB-style hybrid). The paper's claim:
//! the decoupled serial-issuing scheme keeps BOTH accuracy and coverage
//! high, where the parallel coordinator trades accuracy for coverage.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_coordinator [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::Job;
use planaria_sim::table::{pct0, TextTable};

const KINDS: [PrefetcherKind; 4] = [
    PrefetcherKind::SlpOnly,
    PrefetcherKind::TlpOnly,
    PrefetcherKind::PlanariaParallel,
    PrefetcherKind::Planaria,
];

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![
            planaria_trace::apps::AppId::Hi3,
            planaria_trace::apps::AppId::HoK,
            planaria_trace::apps::AppId::Fort,
        ];
    }
    println!("Ablation: coordination policy\n");

    let jobs: Vec<Job> = args
        .apps
        .iter()
        .flat_map(|&app| KINDS.map(|k| Job::grid_cell(app, k, args.len_for(app))))
        .collect();
    let results = args.run_jobs(jobs);

    for (app, row) in args.apps.iter().zip(results.chunks(KINDS.len())) {
        println!("=== {} ===", app.abbr());
        let mut t =
            TextTable::new(["coordinator", "hit rate", "accuracy", "coverage", "pf issued"]);
        for r in row {
            t.row([
                r.prefetcher.clone(),
                pct0(r.hit_rate),
                pct0(r.prefetch_accuracy),
                pct0(r.prefetch_coverage),
                r.traffic.prefetch_reads.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: serial issuing matches the parallel coordinator's\n\
         coverage at visibly higher accuracy (and less traffic), and beats\n\
         either sub-prefetcher alone."
    );
}
