//! Figure 9 — breakdown of Planaria's improvement into SLP and TLP shares.
//!
//! Paper result: SLP contributes nearly 80% of the overall improvement on
//! average; on CFM, QSM, HI3, KO and NBA2 TLP's effect is limited, while on
//! Fort TLP contributes most of the improvement.
//!
//! Methodology (matching the paper's "performance breakdown"): run the
//! coordinator with only one sub-prefetcher's issuing phase enabled at a
//! time and attribute the composite AMAT improvement proportionally to the
//! two single-issuer improvements. The origin-tagged useful-prefetch split
//! of the full run is reported as a secondary, direct measurement.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig9_breakdown [--len N|--full]
//! ```

use planaria_bench::{bar, HarnessArgs};
use planaria_sim::experiment::{mean, PrefetcherKind};
use planaria_sim::table::{pct0, TextTable};

const KINDS: [PrefetcherKind; 4] = [
    PrefetcherKind::None,
    PrefetcherKind::PlanariaSlpIssue,
    PrefetcherKind::PlanariaTlpIssue,
    PrefetcherKind::Planaria,
];

fn main() {
    let args = HarnessArgs::from_env();
    println!("Figure 9: Planaria performance breakdown (SLP vs TLP)\n");

    let grid = args.run_grid(&KINDS);

    let mut t =
        TextTable::new(["app", "SLP share", "TLP share", "SLP ▍TLP", "useful SLP/TLP (full run)"]);
    let mut slp_shares = Vec::new();
    for (app, results) in args.apps.iter().zip(&grid) {
        let (none, slp_only, tlp_only, full) = (&results[0], &results[1], &results[2], &results[3]);
        let d_slp = (none.amat_cycles - slp_only.amat_cycles).max(0.0);
        let d_tlp = (none.amat_cycles - tlp_only.amat_cycles).max(0.0);
        let slp_share = if d_slp + d_tlp > 0.0 { d_slp / (d_slp + d_tlp) } else { 0.0 };
        slp_shares.push(slp_share);
        t.row([
            app.abbr().to_string(),
            pct0(slp_share),
            pct0(1.0 - slp_share),
            bar(slp_share, 24),
            format!("{} / {}", full.useful_slp, full.useful_tlp),
        ]);
    }
    let avg = mean(slp_shares.iter().copied());
    t.rule().row(["avg".to_string(), pct0(avg), pct0(1.0 - avg), bar(avg, 24), String::new()]);
    println!("{}", t.render());
    println!(
        "paper shape: SLP ≈80% of the improvement on average; CFM/QSM/HI3/KO/NBA2\n\
         SLP-dominated; Fort TLP-dominated. Measured SLP average: {}",
        pct0(avg)
    );
}
