//! Figure 8 — AMAT of the memory system per application and prefetcher.
//!
//! Paper result: Planaria reduces AMAT by 24.3% over no prefetcher, 21.3%
//! over BOP and 15.1% over SPP; BOP *raises* AMAT on Fort, NBA2 and PM
//! despite raising their hit rates (superfluous prefetch traffic).
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig8_amat [--len N|--full]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::{mean, PrefetcherKind};
use planaria_sim::table::{pct, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    println!("Figure 8: AMAT (cycles) with different prefetchers\n");

    let kinds = PrefetcherKind::FIGURE_SET;
    let grid = args.run_grid(&kinds);

    let mut t = TextTable::new(["app", "None", "BOP", "SPP", "Planaria", "Pl vs None"]);
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); 3]; // vs none/bop/spp
    for (app, results) in args.apps.iter().zip(&grid) {
        let (none, bop, spp, planaria) = (&results[0], &results[1], &results[2], &results[3]);
        deltas[0].push(planaria.amat_delta(none));
        deltas[1].push(planaria.amat_delta(bop));
        deltas[2].push(planaria.amat_delta(spp));
        t.row([
            app.abbr().to_string(),
            format!("{:.1}", none.amat_cycles),
            format!("{:.1}", bop.amat_cycles),
            format!("{:.1}", spp.amat_cycles),
            format!("{:.1}", planaria.amat_cycles),
            pct(planaria.amat_delta(none)),
        ]);
    }
    t.rule();
    println!("{}", t.render());

    let labels = ["no prefetcher", "BOP", "SPP"];
    let paper = [-0.243, -0.213, -0.151];
    println!("Planaria AMAT reduction (average over apps):");
    for ((label, measured), paper) in labels.iter().zip(deltas.iter()).zip(paper) {
        println!(
            "  vs {:<13} measured {:>7}   (paper {:+.1}%)",
            label,
            pct(mean(measured.iter().copied())),
            paper * 100.0
        );
    }
}
