//! Figure 4 — footprint-snapshot overlap rate per application.
//!
//! Paper result: the average overlap rate exceeds 80% on every app, which
//! licenses page-number-only snapshot signatures.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin fig4_overlap [--len N|--full]
//! ```

use planaria_analysis::overlap_rate;
use planaria_bench::{bar, HarnessArgs};
use planaria_sim::experiment::mean;
use planaria_sim::table::{pct0, TextTable};
use planaria_trace::apps::profile;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Figure 4: overlap rate of footprint windows (paper: >80% average)\n");

    let mut t = TextTable::new(["app", "overlap", "", "pages", "window pairs"]);
    let mut rates = Vec::new();
    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        let r = overlap_rate(&trace);
        rates.push(r.mean_overlap);
        t.row([
            app.abbr().to_string(),
            pct0(r.mean_overlap),
            bar(r.mean_overlap, 30),
            r.pages_measured.to_string(),
            r.window_pairs.to_string(),
        ]);
    }
    let avg = mean(rates.iter().copied());
    t.rule().row(["avg".to_string(), pct0(avg), bar(avg, 30), String::new(), String::new()]);
    println!("{}", t.render());
    println!("paper: every app above 80%, average well above 80% — measured average {}", pct0(avg));
}
