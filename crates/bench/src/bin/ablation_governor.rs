//! Ablation — feedback-directed prefetch throttling vs built-in accuracy.
//!
//! A classic systems response to prefetch traffic is a *governor*
//! (feedback-directed prefetching, Srinath et al. HPCA'07): sample
//! accuracy per interval and gate the prefetcher when it is wasting
//! bandwidth. This harness asks the paper's implicit question — can a
//! governor rescue BOP, and does Planaria even need one?
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_governor [--len N] [--threads N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, TraceSource};
use planaria_sim::table::{pct, pct0, TextTable};
use planaria_sim::{GovernorConfig, SystemConfig};

const CONTENDERS: [PrefetcherKind; 2] = [PrefetcherKind::Bop, PrefetcherKind::Planaria];

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![planaria_trace::apps::AppId::HoK, planaria_trace::apps::AppId::Pm];
    }
    println!("Ablation: FDP-style governor on BOP vs Planaria\n");

    // Per app: the no-prefetch baseline, then each contender with the
    // governor off and on.
    let mut jobs = Vec::new();
    for &app in &args.apps {
        let source = TraceSource::App { app, length: args.len_for(app) };
        jobs.push(Job::new(format!("{}/None", app.abbr()), source.clone(), PrefetcherKind::None));
        for kind in CONTENDERS {
            for governed in [false, true] {
                let cfg = SystemConfig {
                    governor: governed.then(GovernorConfig::default),
                    ..SystemConfig::default()
                };
                let tag = if governed { "+gov" } else { "" };
                jobs.push(
                    Job::new(format!("{}/{}{tag}", app.abbr(), kind.label()), source.clone(), kind)
                        .config(cfg),
                );
            }
        }
    }
    let per_app = 1 + CONTENDERS.len() * 2;
    let results = args.run_jobs(jobs);

    for (app, row) in args.apps.iter().zip(results.chunks(per_app)) {
        println!("=== {} ===", app.abbr());
        let none = &row[0];
        let mut t = TextTable::new([
            "config",
            "hit rate",
            "AMAT",
            "traffic vs none",
            "power vs none",
            "accuracy",
        ]);
        for (i, kind) in CONTENDERS.into_iter().enumerate() {
            for (j, governed) in [false, true].into_iter().enumerate() {
                let r = &row[1 + i * 2 + j];
                t.row([
                    format!("{}{}", kind.label(), if governed { " + governor" } else { "" }),
                    pct0(r.hit_rate),
                    format!("{:.1}", r.amat_cycles),
                    pct(r.traffic_delta(none)),
                    pct(r.power_delta(none)),
                    pct0(r.prefetch_accuracy),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: the governor trims BOP's traffic/power at some\n\
         coverage cost; Planaria's accuracy never trips it, so its rows\n\
         with and without the governor coincide — accuracy by construction\n\
         beats accuracy by after-the-fact policing."
    );
}
