//! Ablation — feedback-directed prefetch throttling vs built-in accuracy.
//!
//! A classic systems response to prefetch traffic is a *governor*
//! (feedback-directed prefetching, Srinath et al. HPCA'07): sample
//! accuracy per interval and gate the prefetcher when it is wasting
//! bandwidth. This harness asks the paper's implicit question — can a
//! governor rescue BOP, and does Planaria even need one?
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin ablation_governor [--len N]
//! ```

use planaria_bench::HarnessArgs;
use planaria_sim::experiment::{run_trace_with, PrefetcherKind};
use planaria_sim::table::{pct, pct0, TextTable};
use planaria_sim::{GovernorConfig, SystemConfig};
use planaria_trace::apps::profile;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.apps.len() == 10 {
        args.apps = vec![planaria_trace::apps::AppId::HoK, planaria_trace::apps::AppId::Pm];
    }
    println!("Ablation: FDP-style governor on BOP vs Planaria\n");

    for &app in &args.apps {
        let trace = profile(app).scaled(args.len_for(app)).build();
        println!("=== {} ===", app.abbr());
        let none = run_trace_with(&trace, PrefetcherKind::None, SystemConfig::default());
        let mut t = TextTable::new([
            "config",
            "hit rate",
            "AMAT",
            "traffic vs none",
            "power vs none",
            "accuracy",
        ]);
        for kind in [PrefetcherKind::Bop, PrefetcherKind::Planaria] {
            for governed in [false, true] {
                let cfg = SystemConfig {
                    governor: governed.then(GovernorConfig::default),
                    ..SystemConfig::default()
                };
                let r = run_trace_with(&trace, kind, cfg);
                t.row([
                    format!("{}{}", kind.label(), if governed { " + governor" } else { "" }),
                    pct0(r.hit_rate),
                    format!("{:.1}", r.amat_cycles),
                    pct(r.traffic_delta(&none)),
                    pct(r.power_delta(&none)),
                    pct0(r.prefetch_accuracy),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape: the governor trims BOP's traffic/power at some\n\
         coverage cost; Planaria's accuracy never trips it, so its rows\n\
         with and without the governor coincide — accuracy by construction\n\
         beats accuracy by after-the-fact policing."
    );
}
