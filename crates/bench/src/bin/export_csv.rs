//! Export the full evaluation grid as CSV (for external plotting).
//!
//! Emits one row per (application × prefetcher) run with every metric of
//! [`planaria_sim::SimResult`], to stdout or `--out <FILE>`.
//!
//! ```sh
//! cargo run --release -p planaria-bench --bin export_csv -- --len 1000000 --out results.csv
//! ```

use std::io::Write as _;

use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::SimResult;

const KINDS: [PrefetcherKind; 7] = [
    PrefetcherKind::None,
    PrefetcherKind::NextLine,
    PrefetcherKind::Stride,
    PrefetcherKind::Bop,
    PrefetcherKind::Spp,
    PrefetcherKind::SlpOnly,
    PrefetcherKind::Planaria,
];

fn main() {
    // Split off --out before the shared parser sees it.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    if let Some(i) = raw.iter().position(|a| a == "--out") {
        raw.remove(i);
        if i < raw.len() {
            out_path = Some(raw.remove(i));
        } else {
            eprintln!("--out needs a value");
            std::process::exit(2);
        }
    }
    let args = planaria_bench::HarnessArgs::parse(raw);

    let grid = args.run_grid(&KINDS);
    let mut body = String::new();
    body.push_str(SimResult::csv_header());
    body.push('\n');
    for per_app in &grid {
        for r in per_app {
            body.push_str(&r.csv_row());
            body.push('\n');
        }
    }
    match out_path {
        Some(path) => {
            std::fs::write(&path, body).unwrap_or_else(|e| {
                eprintln!("error writing {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => {
            std::io::stdout().write_all(body.as_bytes()).expect("stdout");
        }
    }
}
