//! A minimal JSON syntax validator.
//!
//! The benchmark harnesses hand-roll their JSON output (the vendored
//! `serde` stand-in has no `serde_json`), so `ci.sh` needs an offline way
//! to prove the emitted files are well-formed. This is a strict
//! recursive-descent checker for RFC 8259 syntax — it validates, it does
//! not build a document tree.

/// Validates that `text` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn validate(text: &str) -> Result<(), String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|b| b.is_ascii_hexdigit()) {
                                return Err(self.err("bad \\u escape"));
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_wellformed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#""a\nbÿ""#,
            r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#,
            "  {\n\"k\": 0\n}\n",
        ] {
            assert_eq!(validate(ok), Ok(()), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{]",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a": 1,}"#,
            "01",
            "1.",
            "nul",
            r#""unterminated"#,
            "{} extra",
            r#"{"a": }"#,
        ] {
            assert!(validate(bad).is_err(), "accepted malformed JSON: {bad}");
        }
    }
}
