//! Shared helpers for the figure-harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They share a tiny command-line convention:
//!
//! * `--len <N>` — accesses per application trace (default 1,000,000;
//!   large enough for several training rounds of every app's working set);
//! * `--full` — use the paper's full Table 2 lengths (~67–71 M accesses
//!   per app; slow but exact);
//! * `--apps CFM,HoK,...` — restrict to a subset of applications;
//! * `--threads <N>` — worker threads for the experiment grid (default:
//!   all available cores);
//! * `--progress` — live per-cell progress lines (interim hit rate) on
//!   stderr;
//! * `--telemetry` — after each grid, print the batch's merged decision
//!   and lifecycle counters (see `planaria_telemetry`) on stderr.
//!
//! Output is an aligned text table (one row per app plus an average row) —
//! the faithful terminal rendering of the paper's bar charts. Grids run on
//! `planaria-sim`'s parallel [`Runner`]; a wall-clock summary (slowest
//! cell, simulated-cycle throughput) lands on stderr after each grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::runner::{Job, RunReport, Runner};
use planaria_sim::SimResult;
use planaria_trace::apps::AppId;

/// Default per-app trace length for figure regeneration.
pub const DEFAULT_LEN: usize = 1_000_000;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Accesses per application trace (`None` = the paper's full length).
    pub len: Option<usize>,
    /// Applications to run.
    pub apps: Vec<AppId>,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
    /// Emit live per-cell progress lines on stderr.
    pub progress: bool,
    /// Print the merged telemetry counter table after each grid.
    pub telemetry: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            len: Some(DEFAULT_LEN),
            apps: AppId::ALL.to_vec(),
            threads: None,
            progress: false,
            telemetry: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing harnesses, not a user CLI).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--len" => {
                    let v = it.next().expect("--len needs a value");
                    out.len = Some(v.replace('_', "").parse().expect("--len must be an integer"));
                }
                "--full" => out.len = None,
                "--apps" => {
                    let v = it.next().expect("--apps needs a comma-separated list");
                    out.apps = v
                        .split(',')
                        .map(|abbr| {
                            AppId::ALL
                                .into_iter()
                                .find(|a| a.abbr().eq_ignore_ascii_case(abbr.trim()))
                                .unwrap_or_else(|| panic!("unknown app abbreviation {abbr:?}"))
                        })
                        .collect();
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    let n: usize = v.parse().expect("--threads must be an integer");
                    assert!(n > 0, "--threads must be positive");
                    out.threads = Some(n);
                }
                "--progress" => out.progress = true,
                "--telemetry" => out.telemetry = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--len N | --full] [--apps CFM,HoK,...] [--threads N] \
                         [--progress] [--telemetry]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The effective trace length for `app`.
    pub fn len_for(&self, app: AppId) -> usize {
        self.len.unwrap_or_else(|| (app.paper_length_m() * 1_000_000.0) as usize)
    }

    /// A [`Runner`] configured from `--threads` / `--progress`.
    pub fn runner(&self) -> Runner {
        let runner = match self.threads {
            Some(n) => Runner::new(n),
            None => Runner::auto(),
        };
        if self.progress {
            runner.with_progress(|e| {
                eprintln!(
                    "  [{}/{}] {}: {:.0}% (hit rate {:.3})",
                    e.job + 1,
                    e.total,
                    e.label,
                    e.done as f64 / e.trace_len.max(1) as f64 * 100.0,
                    e.hit_rate,
                )
            })
        } else {
            runner
        }
    }

    /// Runs every `kind` over each selected app on the parallel engine,
    /// printing the batch summary on stderr. Rows are per app in `kinds`
    /// order.
    pub fn run_grid(&self, kinds: &[PrefetcherKind]) -> Vec<Vec<SimResult>> {
        let report = self.run_grid_report(kinds);
        eprintln!("  {}", report.summary());
        self.maybe_print_telemetry(&report);
        report.into_rows(kinds.len())
    }

    /// Like [`HarnessArgs::run_grid`], returning the full [`RunReport`]
    /// (per-cell timings) instead of bare rows.
    pub fn run_grid_report(&self, kinds: &[PrefetcherKind]) -> RunReport {
        let jobs: Vec<Job> = self
            .apps
            .iter()
            .flat_map(|&app| kinds.iter().map(move |&k| Job::grid_cell(app, k, self.len_for(app))))
            .collect();
        self.runner().run(jobs)
    }

    /// Runs a caller-assembled job batch on this harness's runner and
    /// prints the batch summary on stderr (the ablation harnesses' path).
    pub fn run_jobs(&self, jobs: Vec<Job>) -> Vec<SimResult> {
        let report = self.runner().run(jobs);
        eprintln!("  {}", report.summary());
        self.maybe_print_telemetry(&report);
        report.into_results()
    }

    /// Prints the batch's merged telemetry counters on stderr when
    /// `--telemetry` was given.
    fn maybe_print_telemetry(&self, report: &RunReport) {
        if self.telemetry {
            eprintln!("  telemetry (merged over the batch):");
            for line in report.telemetry().summary_table().lines() {
                eprintln!("    {line}");
            }
        }
    }
}

/// Graceful command-line error handling for the measurement binaries.
///
/// The figure harnesses go through [`HarnessArgs`] and may panic on bad
/// input (developer-facing, documented). The *measurement* binaries
/// (`perf_baseline`, `contention`) are run from CI and scripts, where a
/// panic with a backtrace hint buries the actual mistake; they report
/// `error: …` plus their usage line on stderr and exit with status 2
/// (the conventional "usage error" code, distinct from a failed check's
/// exit 1).
pub mod cli {
    use std::fmt::Display;

    /// Prints `error: {msg}`, the usage line, and exits with status 2.
    pub fn usage_error(usage: &str, msg: impl Display) -> ! {
        eprintln!("error: {msg}");
        eprintln!("{usage}");
        std::process::exit(2);
    }

    /// The value following a flag, or a "needs a value" error.
    pub fn value_of(flag: &str, v: Option<String>) -> Result<String, String> {
        v.ok_or_else(|| format!("{flag} needs a value"))
    }

    /// Parses a flag's value as a positive integer (underscores allowed,
    /// so `--len 200_000` reads like the source constants).
    pub fn positive_count(flag: &str, v: Option<String>) -> Result<usize, String> {
        let v = value_of(flag, v)?;
        let n: usize = v
            .replace('_', "")
            .parse()
            .map_err(|_| format!("{flag} must be an integer (got {v:?})"))?;
        if n == 0 {
            return Err(format!("{flag} must be at least 1"));
        }
        Ok(n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn positive_count_parses_with_underscores() {
            assert_eq!(positive_count("--len", Some("200_000".into())), Ok(200_000));
            assert_eq!(positive_count("--repeats", Some("5".into())), Ok(5));
        }

        #[test]
        fn positive_count_rejects_garbage_zero_and_missing() {
            assert!(positive_count("--len", Some("fast".into()))
                .is_err_and(|e| e.contains("--len") && e.contains("integer")));
            assert!(positive_count("--repeats", Some("0".into()))
                .is_err_and(|e| e.contains("at least 1")));
            assert!(value_of("--out", None).is_err_and(|e| e.contains("needs a value")));
        }
    }
}

/// Renders a unit-interval value as a crude horizontal bar (figure flavour).
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), "·".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = HarnessArgs::parse(Vec::<String>::new());
        assert_eq!(a.len, Some(DEFAULT_LEN));
        assert_eq!(a.apps.len(), 10);
        assert_eq!(a.threads, None);
        assert!(!a.progress);
    }

    #[test]
    fn parse_len_and_apps() {
        let a = HarnessArgs::parse(["--len", "50_000", "--apps", "CFM,fort"].map(String::from));
        assert_eq!(a.len, Some(50_000));
        assert_eq!(a.apps, vec![AppId::Cfm, AppId::Fort]);
    }

    #[test]
    fn parse_threads_and_progress() {
        let a = HarnessArgs::parse(["--threads", "4", "--progress"].map(String::from));
        assert_eq!(a.threads, Some(4));
        assert!(a.progress);
        assert_eq!(a.runner().threads(), 4);
    }

    #[test]
    fn parse_telemetry_flag() {
        assert!(!HarnessArgs::parse(Vec::<String>::new()).telemetry);
        assert!(HarnessArgs::parse(["--telemetry"].map(String::from)).telemetry);
    }

    #[test]
    fn parse_full_uses_paper_lengths() {
        let a = HarnessArgs::parse(["--full"].map(String::from));
        assert_eq!(a.len, None);
        assert_eq!(a.len_for(AppId::Cfm), 67_480_000);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn parse_rejects_unknown_app() {
        let _ = HarnessArgs::parse(["--apps", "WAT"].map(String::from));
    }

    #[test]
    #[should_panic(expected = "--threads must be positive")]
    fn parse_rejects_zero_threads() {
        let _ = HarnessArgs::parse(["--threads", "0"].map(String::from));
    }

    #[test]
    fn grid_runs_on_runner() {
        let a = HarnessArgs {
            len: Some(2_000),
            apps: vec![AppId::Cfm, AppId::Hi3],
            threads: Some(2),
            progress: false,
            telemetry: false,
        };
        let rows = a.run_grid(&[PrefetcherKind::None, PrefetcherKind::NextLine]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][0].workload, "CFM");
        assert_eq!(rows[1][1].prefetcher, "NextLine");
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 10), "#####·····");
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.5, 4), "####");
    }
}
