//! Shared helpers for the figure-harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They share a tiny command-line convention:
//!
//! * `--len <N>` — accesses per application trace (default 1,000,000;
//!   large enough for several training rounds of every app's working set);
//! * `--full` — use the paper's full Table 2 lengths (~67–71 M accesses
//!   per app; slow but exact);
//! * `--apps CFM,HoK,...` — restrict to a subset of applications.
//!
//! Output is an aligned text table (one row per app plus an average row) —
//! the faithful terminal rendering of the paper's bar charts.

#![forbid(unsafe_code)]

use planaria_sim::experiment::{run_trace, PrefetcherKind};
use planaria_sim::SimResult;
use planaria_trace::apps::{profile, AppId};

/// Default per-app trace length for figure regeneration.
pub const DEFAULT_LEN: usize = 1_000_000;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Accesses per application trace (`None` = the paper's full length).
    pub len: Option<usize>,
    /// Applications to run.
    pub apps: Vec<AppId>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self { len: Some(DEFAULT_LEN), apps: AppId::ALL.to_vec() }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing harnesses, not a user CLI).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--len" => {
                    let v = it.next().expect("--len needs a value");
                    out.len = Some(v.replace('_', "").parse().expect("--len must be an integer"));
                }
                "--full" => out.len = None,
                "--apps" => {
                    let v = it.next().expect("--apps needs a comma-separated list");
                    out.apps = v
                        .split(',')
                        .map(|abbr| {
                            AppId::ALL
                                .into_iter()
                                .find(|a| a.abbr().eq_ignore_ascii_case(abbr.trim()))
                                .unwrap_or_else(|| panic!("unknown app abbreviation {abbr:?}"))
                        })
                        .collect();
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--len N | --full] [--apps CFM,HoK,...]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The effective trace length for `app`.
    pub fn len_for(&self, app: AppId) -> usize {
        self.len
            .unwrap_or_else(|| (app.paper_length_m() * 1_000_000.0) as usize)
    }

    /// Builds each selected app's trace and runs every `kind` over it,
    /// reporting progress on stderr.
    pub fn run_grid(&self, kinds: &[PrefetcherKind]) -> Vec<Vec<SimResult>> {
        self.apps
            .iter()
            .map(|&app| {
                eprintln!("  [{}] building trace ({} accesses)...", app.abbr(), self.len_for(app));
                let trace = profile(app).scaled(self.len_for(app)).build();
                kinds
                    .iter()
                    .map(|&k| {
                        eprintln!("  [{}] running {}...", app.abbr(), k.label());
                        run_trace(&trace, k)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Renders a unit-interval value as a crude horizontal bar (figure flavour).
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), "·".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = HarnessArgs::parse(Vec::<String>::new());
        assert_eq!(a.len, Some(DEFAULT_LEN));
        assert_eq!(a.apps.len(), 10);
    }

    #[test]
    fn parse_len_and_apps() {
        let a = HarnessArgs::parse(
            ["--len", "50_000", "--apps", "CFM,fort"].map(String::from),
        );
        assert_eq!(a.len, Some(50_000));
        assert_eq!(a.apps, vec![AppId::Cfm, AppId::Fort]);
    }

    #[test]
    fn parse_full_uses_paper_lengths() {
        let a = HarnessArgs::parse(["--full"].map(String::from));
        assert_eq!(a.len, None);
        assert_eq!(a.len_for(AppId::Cfm), 67_480_000);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn parse_rejects_unknown_app() {
        let _ = HarnessArgs::parse(["--apps", "WAT"].map(String::from));
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 10), "#####·····");
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.5, 4), "####");
    }
}
