//! Versioned device snapshot / restore.
//!
//! A quiesced [`ServedDevice`] serialises to a small JSON document —
//! schema `planaria-serve-snapshot-v1`, specified field-by-field in
//! `SERVING.md` — from which [`ServedDevice::restore`] rebuilds a device
//! whose continuation is bit-identical to the original (pinned by
//! `tests/serve.rs`). That property is what lets a device migrate
//! between shards, workers or hosts mid-session.
//!
//! v1 is *replay-based*: the snapshot records the workload identity and
//! the stream position (`consumed`), not the internal state of the cache,
//! prefetcher and DRAM model. Restore re-renders the first `consumed`
//! accesses from the seeded stream and re-simulates them. Because the
//! whole stack is deterministic, the rebuilt state machine is identical;
//! the cost is restore time proportional to the elapsed session, which
//! SERVING.md documents as the accepted v1 trade-off.

use planaria_common::json::{Value, Writer};
use planaria_sim::{PrefetcherKind, SystemConfig};
use planaria_trace::apps::AppId;

use crate::device::{DevicePump, ServedDevice};

/// The schema tag every snapshot document carries.
pub const SNAPSHOT_SCHEMA: &str = "planaria-serve-snapshot-v1";

/// All prefetcher kinds a snapshot can name, used to parse labels back.
const KINDS: [PrefetcherKind; 12] = [
    PrefetcherKind::None,
    PrefetcherKind::NextLine,
    PrefetcherKind::Stride,
    PrefetcherKind::Bop,
    PrefetcherKind::Spp,
    PrefetcherKind::SlpOnly,
    PrefetcherKind::TlpOnly,
    PrefetcherKind::Planaria,
    PrefetcherKind::PlanariaSlpIssue,
    PrefetcherKind::PlanariaTlpIssue,
    PrefetcherKind::PlanariaParallel,
    PrefetcherKind::PlanariaLean,
];

fn kind_from_label(label: &str) -> Result<PrefetcherKind, String> {
    KINDS
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| format!("unknown prefetcher label {label:?}"))
}

fn app_from_abbr(abbr: &str) -> Result<AppId, String> {
    AppId::ALL
        .into_iter()
        .find(|a| a.abbr() == abbr)
        .ok_or_else(|| format!("unknown app abbreviation {abbr:?}"))
}

fn str_field<'a>(doc: &'a Value, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("snapshot field {key:?} missing or not a string"))
}

/// Reads a numeric field. The vendored parser carries numbers as `f64`,
/// which is lossless only below 2^53 — fine for the counts stored
/// numerically; full-range u64 fields (`seed`, `home_page`) are strings.
fn num_field(doc: &Value, key: &str) -> Result<u64, String> {
    let v = doc
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("snapshot field {key:?} missing or not a number"))?;
    if v < 0.0 || v.fract() != 0.0 || v > 9_007_199_254_740_992.0 {
        return Err(format!("snapshot field {key:?} is not an exact count: {v}"));
    }
    Ok(v as u64)
}

/// Reads a numeric field that must fit the platform's `usize` (lengths,
/// window and mailbox sizes). An out-of-range value is a typed error,
/// never a silent truncation.
fn usize_field(doc: &Value, key: &str) -> Result<usize, String> {
    let v = num_field(doc, key)?;
    usize::try_from(v)
        .map_err(|_| format!("snapshot field {key:?} value {v} exceeds this platform's usize"))
}

fn u64_string_field(doc: &Value, key: &str) -> Result<u64, String> {
    str_field(doc, key)?
        .parse::<u64>()
        .map_err(|e| format!("snapshot field {key:?} is not a decimal u64: {e}"))
}

impl ServedDevice {
    /// Serialises this device to a `planaria-serve-snapshot-v1` JSON
    /// document, quiescing it first (snapshots are only meaningful at the
    /// input-starved point, where the mailbox is empty and the simulated
    /// state is a pure function of the accesses consumed so far).
    ///
    /// # Errors
    ///
    /// Fails for externally fed devices (their traffic is not
    /// replayable) and for devices that already finished.
    ///
    /// # Examples
    ///
    /// Snapshot round-trip — the restored device continues bit-identically:
    ///
    /// ```
    /// use planaria_serve::{DeviceSpec, ServedDevice};
    /// use planaria_trace::apps::AppId;
    ///
    /// let spec = DeviceSpec::new(7, AppId::Cfm).scaled(600);
    ///
    /// // Run a device halfway, snapshot it, restore, finish both.
    /// let mut original = ServedDevice::from_spec(spec.clone());
    /// original.ingest(300);
    /// original.quiesce();
    /// let doc = original.snapshot().unwrap();
    /// assert!(doc.contains("planaria-serve-snapshot-v1"));
    ///
    /// let parsed = planaria_common::json::parse(&doc).unwrap();
    /// let mut restored = ServedDevice::restore(&parsed, spec.system).unwrap();
    ///
    /// while !original.is_done() { original.ingest(usize::MAX); original.quiesce(); }
    /// while !restored.is_done() { restored.ingest(usize::MAX); restored.quiesce(); }
    /// assert_eq!(original.report(), restored.report());
    /// ```
    pub fn snapshot(&mut self) -> Result<String, String> {
        if self.source.is_none() {
            return Err("externally fed devices cannot snapshot (no replayable source)".into());
        }
        if self.is_done() {
            return Err("session already finished; persist its report instead".into());
        }
        if self.quiesce() != DevicePump::Starved {
            return Err("device finished while quiescing; persist its report instead".into());
        }
        debug_assert_eq!(self.mailbox_len(), 0, "quiesced device has an empty mailbox");

        let mut w = Writer::pretty();
        w.begin_object();
        w.key("schema");
        w.string(SNAPSHOT_SCHEMA);
        w.key("device");
        w.u64(self.spec.id);
        // Full-range u64s go through strings: the parser's f64 numbers
        // would silently round values above 2^53.
        w.key("home_page");
        w.string(&self.spec.home_page.to_string());
        w.key("app");
        w.string(self.spec.app.abbr());
        w.key("length");
        w.u64(self.spec.length as u64);
        w.key("seed");
        w.string(&self.spec.seed.to_string());
        w.key("window");
        w.u64(self.spec.window as u64);
        w.key("mailbox");
        w.u64(self.spec.mailbox as u64);
        w.key("pool_cap");
        match self.spec.pool_cap {
            Some(cap) => w.u64(cap as u64),
            None => w.null(),
        }
        w.key("prefetcher");
        w.string(self.spec.kind.label());
        w.key("consumed");
        w.u64(self.consumed);
        w.key("eof");
        w.bool(self.source_eof);
        w.end_object();
        Ok(w.finish())
    }

    /// Rebuilds a device from a parsed snapshot document so that its
    /// continuation is bit-identical to the snapshotted original.
    ///
    /// `system` supplies the memory-system sizing: v1 snapshots
    /// deliberately do not serialise [`SystemConfig`] (it is fleet
    /// configuration, not session state — SERVING.md requires the
    /// operator to restore under the same config the device ran with).
    ///
    /// # Errors
    ///
    /// Fails on a wrong/missing schema tag, missing or ill-typed fields,
    /// unknown app/prefetcher labels, or a source stream shorter than the
    /// recorded `consumed` position.
    pub fn restore(doc: &Value, system: SystemConfig) -> Result<ServedDevice, String> {
        let schema = str_field(doc, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported snapshot schema {schema:?} (want {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let spec = crate::DeviceSpec {
            id: num_field(doc, "device")?,
            home_page: u64_string_field(doc, "home_page")?,
            app: app_from_abbr(str_field(doc, "app")?)?,
            length: usize_field(doc, "length")?,
            seed: u64_string_field(doc, "seed")?,
            window: usize_field(doc, "window")?,
            mailbox: usize_field(doc, "mailbox")?,
            pool_cap: match doc.get("pool_cap") {
                Some(Value::Null) => None,
                Some(_) => Some(usize_field(doc, "pool_cap")?),
                None => return Err("snapshot field \"pool_cap\" missing".into()),
            },
            system,
            kind: kind_from_label(str_field(doc, "prefetcher")?)?,
        };
        let target = num_field(doc, "consumed")?;
        let eof = doc
            .get("eof")
            .and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            })
            .ok_or("snapshot field \"eof\" missing or not a bool")?;

        // Replay: re-render exactly the consumed prefix of the seeded
        // stream through a fresh device. Feeding happens only at the
        // driver's NeedInput boundaries (inside pump), so chunking here
        // cannot perturb the rebuilt state.
        let mut dev = ServedDevice::from_spec(spec);
        while dev.consumed < target {
            // `want` is an upper bound for ingest, so clamping the u64
            // remainder is loss-free — the loop simply iterates again.
            let want = usize::try_from(target - dev.consumed).unwrap_or(usize::MAX);
            if dev.ingest(want) == 0 {
                return Err(format!(
                    "source stream ended at {} accesses but snapshot consumed {target}",
                    dev.consumed
                ));
            }
            if dev.quiesce() == DevicePump::Done {
                break;
            }
        }
        if dev.consumed != target {
            return Err(format!(
                "replay consumed {} accesses, snapshot recorded {target}",
                dev.consumed
            ));
        }
        if eof && !dev.source_eof {
            // The original had observed end-of-stream; observe it here
            // too so the rebuilt flag state matches exactly.
            if dev.ingest(1) != 0 || !dev.source_eof {
                return Err("snapshot says eof but the rebuilt stream has more accesses".into());
            }
            dev.quiesce();
        }
        Ok(dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_kind_from_label() {
        for kind in KINDS {
            assert_eq!(kind_from_label(kind.label()).unwrap(), kind);
        }
        assert!(kind_from_label("nope").is_err());
    }

    #[test]
    fn apps_round_trip_through_abbr() {
        for app in AppId::ALL {
            assert_eq!(app_from_abbr(app.abbr()).unwrap(), app);
        }
        assert!(app_from_abbr("nope").is_err());
    }

    #[test]
    fn external_devices_cannot_snapshot() {
        let spec = crate::DeviceSpec::new(1, AppId::HoK);
        let mut dev = ServedDevice::external(spec);
        assert!(dev.snapshot().unwrap_err().contains("externally fed"));
    }

    #[test]
    fn restore_rejects_wrong_schema() {
        let doc = planaria_common::json::parse("{\"schema\": \"other-v9\"}").unwrap();
        assert!(ServedDevice::restore(&doc, SystemConfig::default())
            .unwrap_err()
            .contains("unsupported snapshot schema"));
    }
}
