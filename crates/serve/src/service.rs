//! Round-based multiplexing of many devices over a worker pool.

use std::collections::BTreeMap;

use planaria_telemetry::TelemetryReport;

use crate::device::{DevicePump, DeviceReport, ServedDevice};
use crate::shard::shard_of;

/// Sizing knobs for a [`Service`] run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Independent scheduling domains; devices map to shards by
    /// [`shard_of`] over their home page. Results depend on the shard
    /// count only through routing, never through timing.
    pub shards: usize,
    /// OS threads multiplexing the shards. Worker `w` owns shards
    /// `w, w + workers, w + 2·workers, …` — shards never split across
    /// workers, so any worker count produces identical results.
    pub workers: usize,
    /// Driver iterations granted to one device per scheduling round.
    pub pump_quantum: usize,
    /// Accesses one device may ingest from its stream per round.
    pub ingest_quantum: usize,
    /// Keep every finished [`DeviceReport`] in the [`ServeReport`].
    /// Defaults off: at 100k+ devices the per-device reports dominate
    /// memory, and the per-shard summaries already conserve the totals.
    pub keep_device_reports: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            workers: 1,
            pump_quantum: 4_096,
            ingest_quantum: 4_096,
            keep_device_reports: false,
        }
    }
}

/// Hooks around each device's turn in the round loop.
///
/// The serving library itself never reads a wall clock (invariant R2);
/// an observer is how a harness such as `serve_load` measures real-time
/// behaviour from the outside. One observer instance exists per shard,
/// owned by the worker running that shard, so implementations need
/// `Send` but no interior locking.
pub trait ShardObserver: Send {
    /// A device is about to be pumped.
    fn pump_started(&mut self, _device: u64) {}
    /// The device's turn ended after injecting `injected` accesses.
    fn pump_finished(&mut self, _device: u64, _injected: u64) {}
}

/// The do-nothing observer [`Service::run`] uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ShardObserver for NullObserver {}

/// What one shard did over a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index in `0..config.shards`.
    pub shard: usize,
    /// Devices routed to this shard.
    pub devices: u64,
    /// Demand accesses injected across the shard's devices.
    pub accesses: u64,
    /// Scheduling rounds until every device finished.
    pub rounds: u64,
    /// Worst per-requestor slowdown observed on the shard.
    pub max_slowdown: f64,
    /// Prefetch-lifecycle counters absorbed over the shard's devices in
    /// device-id order.
    pub telemetry: TelemetryReport,
}

/// Results of a [`Service::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-shard summaries, in shard-index order (deterministic for any
    /// worker count).
    pub shards: Vec<ShardSummary>,
    /// Per-device reports in device-id order, if
    /// [`ServeConfig::keep_device_reports`] was set.
    pub device_reports: Vec<DeviceReport>,
}

impl ServeReport {
    /// Devices served across all shards.
    pub fn devices(&self) -> u64 {
        self.shards.iter().map(|s| s.devices).sum()
    }

    /// Demand accesses injected across all shards.
    pub fn total_accesses(&self) -> u64 {
        self.shards.iter().map(|s| s.accesses).sum()
    }

    /// All shard telemetry absorbed into one report, in shard-index
    /// order.
    pub fn merged_telemetry(&self) -> TelemetryReport {
        let mut merged = TelemetryReport::default();
        for shard in &self.shards {
            merged.absorb(&shard.telemetry);
        }
        merged
    }
}

/// Multiplexes [`ServedDevice`] state machines over a worker pool with
/// deterministic round-based scheduling.
///
/// Within a shard, each round visits the live devices in ascending
/// device-id order, granting each an ingest quantum and a pump quantum.
/// All scheduling is in virtual (simulated) time; two runs over the same
/// devices and config produce identical reports regardless of worker
/// count or host load.
#[derive(Debug, Clone)]
pub struct Service {
    cfg: ServeConfig,
}

impl Service {
    /// Creates a service with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `workers` or either quantum is zero.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.pump_quantum > 0, "pump quantum must be positive");
        assert!(cfg.ingest_quantum > 0, "ingest quantum must be positive");
        Self { cfg }
    }

    /// Serves the devices to completion with no observation hooks.
    pub fn run(&self, devices: Vec<ServedDevice>) -> ServeReport {
        self.run_observed(devices, |_shard| Box::new(NullObserver))
    }

    /// Serves the devices to completion, building one observer per shard
    /// through `make_observer` (called with the shard index, from the
    /// worker thread that owns the shard).
    pub fn run_observed<F>(&self, devices: Vec<ServedDevice>, make_observer: F) -> ServeReport
    where
        F: Fn(usize) -> Box<dyn ShardObserver> + Sync,
    {
        // Route: shard buckets, each sorted by device id so the round
        // order is a pure function of the device set.
        let mut buckets: Vec<Vec<ServedDevice>> =
            (0..self.cfg.shards).map(|_| Vec::new()).collect();
        for dev in devices {
            let shard = shard_of(dev.home_page(), self.cfg.shards);
            buckets[shard].push(dev);
        }
        for bucket in &mut buckets {
            bucket.sort_by_key(ServedDevice::id);
        }

        let keep = self.cfg.keep_device_reports;
        let cfg = self.cfg;

        // Interleaved shard → worker assignment; each worker returns its
        // shards' outcomes tagged with the shard index so the merge below
        // can restore shard order independent of completion order.
        let mut tagged: Vec<(usize, ShardSummary, Vec<DeviceReport>)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(cfg.workers);
                let make_observer = &make_observer;
                // Hand each worker its own shards; drain in reverse so
                // removal indices stay valid.
                let mut per_worker: Vec<Vec<(usize, Vec<ServedDevice>)>> =
                    (0..cfg.workers).map(|_| Vec::new()).collect();
                for (shard, bucket) in buckets.into_iter().enumerate() {
                    per_worker[shard % cfg.workers].push((shard, bucket));
                }
                for own in per_worker {
                    handles.push(scope.spawn(move || {
                        own.into_iter()
                            .map(|(shard, bucket)| {
                                let mut obs = make_observer(shard);
                                let (summary, reports) =
                                    run_shard(shard, bucket, &cfg, keep, obs.as_mut());
                                (shard, summary, reports)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles.into_iter().flat_map(|h| h.join().expect("serve worker panicked")).collect()
            });

        tagged.sort_by_key(|(shard, ..)| *shard);
        let mut shards = Vec::with_capacity(tagged.len());
        let mut device_reports = Vec::new();
        for (_, summary, reports) in tagged {
            shards.push(summary);
            device_reports.extend(reports);
        }
        device_reports.sort_by_key(|r| r.id);
        ServeReport { shards, device_reports }
    }
}

/// Runs one shard's round loop to completion.
fn run_shard(
    shard: usize,
    mut devices: Vec<ServedDevice>,
    cfg: &ServeConfig,
    keep: bool,
    obs: &mut dyn ShardObserver,
) -> (ShardSummary, Vec<DeviceReport>) {
    let total = devices.len() as u64;
    let mut rounds = 0u64;
    let mut live = devices.len();
    while live > 0 {
        rounds += 1;
        for dev in &mut devices {
            if dev.is_done() {
                continue;
            }
            dev.ingest(cfg.ingest_quantum);
            let before = dev.injected();
            obs.pump_started(dev.id());
            let state = dev.pump(cfg.pump_quantum);
            obs.pump_finished(dev.id(), dev.injected() - before);
            if state == DevicePump::Done {
                live -= 1;
            } else if state == DevicePump::Starved && dev.mailbox_len() == 0 {
                // A spec-sourced device only starves at end-of-stream
                // (ingest fills the mailbox each round); an externally
                // fed device starving here would spin the round loop
                // forever, so the round-based service rejects it.
                assert!(
                    dev.has_source(),
                    "device {} starved with no source: feed external devices \
                     manually, not through Service::run",
                    dev.id()
                );
            }
        }
    }

    let mut accesses = 0u64;
    let mut max_slowdown = 0.0f64;
    let mut telemetry = TelemetryReport::default();
    // Absorb in device-id order (BTreeMap keys) so the summary is
    // independent of round interleaving.
    let mut by_id: BTreeMap<u64, DeviceReport> = BTreeMap::new();
    for dev in devices {
        let report = dev.into_report();
        by_id.insert(report.id, report);
    }
    let mut reports = Vec::new();
    for report in by_id.into_values() {
        accesses += report.result.accesses;
        for outcome in &report.closed_loop.devices {
            max_slowdown = max_slowdown.max(outcome.slowdown);
        }
        telemetry.absorb(&report.telemetry);
        if keep {
            reports.push(report);
        }
    }
    (ShardSummary { shard, devices: total, accesses, rounds, max_slowdown, telemetry }, reports)
}
