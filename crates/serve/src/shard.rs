//! Page-keyed shard assignment.
//!
//! Devices are routed to shards by hashing their home page with a fixed
//! 64-bit finalizer. The function is pure and versioned by `SERVING.md`:
//! every implementation (and every host in a fleet) MUST agree on it,
//! because snapshot migration assumes `shard_of` is stable.

/// The splitmix64 finalizer: a fixed, seedless 64-bit bijection with
/// full avalanche.
///
/// This is the mixing step shard routing is built on. Being a bijection,
/// it cannot collide two distinct pages before the modulo; being
/// seedless, every process computes the same value for the same page.
///
/// # Examples
///
/// ```
/// use planaria_serve::mix64;
///
/// // Pinned by SERVING.md — these exact values are normative.
/// assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which shard owns a device with the given home page.
///
/// `shard_of(p, n) = mix64(p) mod n` — sequential pages spread across
/// shards instead of clustering, and the assignment depends only on
/// `(home_page, shards)`, never on worker count or arrival order.
///
/// # Examples
///
/// ```
/// use planaria_serve::shard_of;
///
/// let s = shard_of(42, 16);
/// assert!(s < 16);
/// // Pure function: same inputs, same shard, on every host.
/// assert_eq!(s, shard_of(42, 16));
/// ```
///
/// # Panics
///
/// Panics if `shards` is zero.
#[inline]
#[must_use]
pub fn shard_of(home_page: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    (mix64(home_page) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_the_splitmix64_finalizer() {
        // Reference values from the splitmix64 sequence with seed 0: the
        // n-th output equals mix64(n * GOLDEN_GAMMA) but the finalizer
        // itself is checked directly against independently computed values.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(mix64(2), 0x9758_35DE_1C97_56CE);
    }

    #[test]
    fn shard_of_spreads_sequential_pages() {
        let shards = 16;
        let mut seen = vec![0usize; shards];
        for page in 0..1_024u64 {
            seen[shard_of(page, shards)] += 1;
        }
        // With a good mixer every shard gets close to 64 of 1024; the
        // loose bound just proves sequential pages do not cluster.
        assert!(seen.iter().all(|&n| n > 32 && n < 96), "skewed spread: {seen:?}");
    }

    #[test]
    fn shard_of_is_stable() {
        for page in [0u64, 1, 7, u64::MAX] {
            assert_eq!(shard_of(page, 5), shard_of(page, 5));
            assert!(shard_of(page, 1) == 0);
        }
    }
}
