//! Sharded long-running prefetch service.
//!
//! Everything below `planaria-serve` runs *batch* experiments: build or
//! stream a trace, drive one [`MemorySystem`](planaria_sim::MemorySystem)
//! to completion, report. This crate adds the *service* shape the ROADMAP
//! asks for: each simulated phone — system cache, Planaria prefetcher and
//! DRAM model — becomes a compact, snapshottable state machine
//! ([`ServedDevice`]), and a [`Service`] multiplexes very many of them
//! (100k–1M+) over a worker pool.
//!
//! The moving parts, in data-flow order:
//!
//! * **Ingress** — every device renders its own demand traffic from a
//!   seeded [`WorkloadSpec::stream()`](planaria_trace::WorkloadSpec)
//!   (or is fed externally via [`ServedDevice::try_push`]) into a
//!   *bounded mailbox*. A full mailbox refuses the access
//!   ([`Push::Full`]); the producer retries later — nothing is ever
//!   dropped or reordered.
//! * **Simulation** — the mailbox feeds the resumable
//!   [`ClosedLoopDriver`](planaria_sim::ClosedLoopDriver) exactly at its
//!   `NeedInput` boundaries, so a served device is bit-identical to a
//!   batch [`TrafficModel`](planaria_sim::TrafficModel) run over the same
//!   accesses (pinned by `tests/serve.rs`).
//! * **Sharding** — devices are partitioned by [`shard_of`] over their
//!   home page; shards are independent, so any worker count produces
//!   identical results. Scheduling inside a shard is round-based and
//!   driven purely by virtual time — no wall clock exists anywhere in
//!   this crate (invariant R2; `serve_load` measures wall-clock latency
//!   from the *outside* through the [`ShardObserver`] hooks).
//! * **Snapshot / restore** — [`ServedDevice::snapshot`] serialises a
//!   quiesced device to the versioned `planaria-serve-snapshot-v1` JSON
//!   document and [`ServedDevice::restore`] rebuilds it with a
//!   bit-identical continuation, so devices can migrate between shards
//!   or hosts. `SERVING.md` is the normative spec for all of the above.
//!
//! # Examples
//!
//! Serve two devices and compare with the batch closed loop:
//!
//! ```
//! use planaria_serve::{DeviceSpec, ServeConfig, ServedDevice, Service};
//! use planaria_trace::apps::AppId;
//!
//! let devices: Vec<ServedDevice> = (0..2)
//!     .map(|id| ServedDevice::from_spec(DeviceSpec::new(id, AppId::HoK).scaled(1_000)))
//!     .collect();
//! let report = Service::new(ServeConfig::default()).run(devices);
//! assert_eq!(report.devices(), 2);
//! assert_eq!(report.total_accesses(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod service;
mod shard;
mod snapshot;

pub use device::{DevicePump, DeviceReport, DeviceSpec, Push, ServedDevice};
pub use service::{NullObserver, ServeConfig, ServeReport, Service, ShardObserver, ShardSummary};
pub use shard::{mix64, shard_of};
pub use snapshot::SNAPSHOT_SCHEMA;
