//! One served device: bounded mailbox → resumable closed-loop driver →
//! private memory system.

use std::collections::VecDeque;

use planaria_common::MemAccess;
use planaria_sim::experiment::PrefetcherKind;
use planaria_sim::{
    ClosedLoopDriver, ClosedLoopReport, MemorySystem, Pump, SimResult, SystemConfig, TrafficConfig,
};
use planaria_telemetry::TelemetryReport;
use planaria_trace::apps::{profile, AppId};
use planaria_trace::stream::{AccessStream, WorkloadStream};
use planaria_trace::{ComponentSpec, WorkloadSpec};

use crate::shard::mix64;

/// Identity and sizing of one served device session.
///
/// A spec is everything needed to (re)create the device deterministically:
/// the workload identity (`app`, `length`, `seed`) regenerates its demand
/// stream, and the remaining fields size the state machine. The snapshot
/// format serialises exactly these fields plus the stream position.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Unique session id (round scheduling order within a shard).
    pub id: u64,
    /// Page key for shard routing (see [`crate::shard_of`]). Defaults to
    /// the id so distinct devices spread across shards.
    pub home_page: u64,
    /// Which Table 2 application profile renders the demand traffic.
    pub app: AppId,
    /// Accesses the device's session replays.
    pub length: usize,
    /// Master seed of the device's private workload stream. The default
    /// perturbs the app profile's seed with [`mix64`]`(id)` so a fleet of
    /// same-app devices still renders distinct traffic.
    pub seed: u64,
    /// Closed-loop outstanding-request window per requestor.
    pub window: usize,
    /// Mailbox bound: accesses queued between ingress and the driver.
    pub mailbox: usize,
    /// Cap on any footprint component's revisited page pool in the
    /// derived workload. The Table 2 profiles size their pools (6–10k
    /// pages) for 30M-access batch traces; a served session of a few
    /// hundred accesses revisits only a handful, yet every device pays
    /// the pool's generator state up front. `None` keeps the profile
    /// exactly; `Some(cap)` bounds per-device memory for dense fleets.
    pub pool_cap: Option<usize>,
    /// Memory-system sizing (cache geometry, DRAM model, latencies).
    pub system: SystemConfig,
    /// Which prefetcher the device runs.
    pub kind: PrefetcherKind,
}

impl DeviceSpec {
    /// A spec with serving defaults: 2 000 accesses, window 8, mailbox
    /// 256, the paper's Table 1 system, the full Planaria prefetcher, and
    /// a per-device seed derived from the app profile.
    pub fn new(id: u64, app: AppId) -> Self {
        Self {
            id,
            home_page: id,
            app,
            length: 2_000,
            seed: profile(app).seed ^ mix64(id),
            window: 8,
            mailbox: 256,
            pool_cap: None,
            system: SystemConfig::default(),
            kind: PrefetcherKind::Planaria,
        }
    }

    /// Returns the spec with a different session length.
    #[must_use]
    pub fn scaled(mut self, length: usize) -> Self {
        self.length = length;
        self
    }

    /// The seeded workload this device replays.
    pub fn workload(&self) -> WorkloadSpec {
        let mut spec = profile(self.app).scaled(self.length);
        spec.seed = self.seed;
        if let Some(cap) = self.pool_cap {
            for wc in &mut spec.components {
                if let ComponentSpec::Footprint(f) = &mut wc.spec {
                    f.pages = f.pages.min(cap.max(1));
                }
            }
        }
        spec
    }
}

/// What [`ServedDevice::try_push`] did with an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// The access was queued.
    Accepted,
    /// The mailbox is at its bound; retry after pumping. The access was
    /// *not* taken — backpressure never drops or reorders.
    Full,
}

/// Why [`ServedDevice::pump`] returned control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePump {
    /// The iteration budget ran out; more simulation work remains.
    Working,
    /// Mailbox empty and ingress still open: the device is input-starved
    /// (this is the quiescent point snapshots are taken at).
    Starved,
    /// The session is complete; [`ServedDevice::report`] is available.
    Done,
}

/// Everything a finished session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// The session id ([`DeviceSpec::id`]).
    pub id: u64,
    /// Headline simulation metrics (hit rate, AMAT, traffic, energy).
    pub result: SimResult,
    /// Per-requestor closed-loop outcomes (slowdown, fairness).
    pub closed_loop: ClosedLoopReport,
    /// Prefetch-lifecycle and decision counters.
    pub telemetry: TelemetryReport,
}

/// One simulated phone as a compact, snapshottable state machine: a
/// private [`MemorySystem`], the resumable closed-loop driver, and a
/// bounded mailbox between ingress and injection.
///
/// The mailbox feeds the driver only when the driver reports
/// `NeedInput` — the same lazy-pull discipline the batch
/// [`TrafficModel`](planaria_sim::TrafficModel) uses — so a served run is
/// bit-identical to the batch closed loop over the same accesses, no
/// matter how ingress is chunked or how often pumping pauses.
///
/// # Examples
///
/// Mailbox backpressure — a full mailbox refuses (never drops) and the
/// refused access can be retried after pumping:
///
/// ```
/// use planaria_serve::{DeviceSpec, Push, ServedDevice};
/// use planaria_trace::apps::{profile, AppId};
///
/// let mut spec = DeviceSpec::new(0, AppId::TikT);
/// spec.mailbox = 2;
/// let mut dev = ServedDevice::external(spec);
///
/// let accesses = profile(AppId::TikT).scaled(100).build();
/// let a = accesses.accesses();
/// assert_eq!(dev.try_push(a[0]), Push::Accepted);
/// assert_eq!(dev.try_push(a[1]), Push::Accepted);
/// assert_eq!(dev.try_push(a[2]), Push::Full, "bound reached: refused, not dropped");
///
/// dev.pump(usize::MAX); // drains the mailbox into the driver
/// assert_eq!(dev.try_push(a[2]), Push::Accepted, "same access retries after pumping");
/// ```
pub struct ServedDevice {
    pub(crate) spec: DeviceSpec,
    /// Result label (the workload abbreviation, like batch runs use).
    label: String,
    /// Self-ingress source; `None` for externally fed devices.
    pub(crate) source: Option<WorkloadStream>,
    /// Accesses that entered the mailbox so far (= the replay position).
    pub(crate) consumed: u64,
    /// Ingress has ended (stream exhausted, or closed externally).
    pub(crate) source_eof: bool,
    mailbox: VecDeque<MemAccess>,
    scratch: Vec<MemAccess>,
    sys: Option<MemorySystem>,
    driver: Option<ClosedLoopDriver>,
    report: Option<DeviceReport>,
}

impl std::fmt::Debug for ServedDevice {
    // The driver and memory system are deep state machines; summarize
    // progress instead of dumping them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedDevice")
            .field("id", &self.spec.id)
            .field("app", &self.spec.app)
            .field("consumed", &self.consumed)
            .field("injected", &self.injected())
            .field("mailbox", &self.mailbox.len())
            .field("eof", &self.source_eof)
            .field("done", &self.is_done())
            .finish_non_exhaustive()
    }
}

impl ServedDevice {
    /// A device that renders its own demand traffic from
    /// [`DeviceSpec::workload`].
    pub fn from_spec(spec: DeviceSpec) -> Self {
        let workload = spec.workload();
        let source = Some(workload.stream());
        Self::build(spec, workload.abbr, source)
    }

    /// A device fed externally through [`ServedDevice::try_push`] and
    /// [`ServedDevice::close_ingress`]. External devices cannot snapshot
    /// (there is no replayable source).
    pub fn external(spec: DeviceSpec) -> Self {
        let label = spec.workload().abbr;
        Self::build(spec, label, None)
    }

    fn build(spec: DeviceSpec, label: String, source: Option<WorkloadStream>) -> Self {
        assert!(spec.mailbox > 0, "mailbox bound must be at least 1");
        let sys = MemorySystem::new(spec.system, spec.kind.build());
        let driver = ClosedLoopDriver::new(TrafficConfig::new(spec.window));
        Self {
            spec,
            label,
            source,
            consumed: 0,
            source_eof: false,
            mailbox: VecDeque::new(),
            scratch: Vec::new(),
            sys: Some(sys),
            driver: Some(driver),
            report: None,
        }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.spec.id
    }

    /// The page key shards route on.
    pub fn home_page(&self) -> u64 {
        self.spec.home_page
    }

    /// Whether this device renders its own demand traffic (as opposed to
    /// being fed externally through [`ServedDevice::try_push`]).
    pub fn has_source(&self) -> bool {
        self.source.is_some()
    }

    /// Accesses currently queued in the mailbox.
    pub fn mailbox_len(&self) -> usize {
        self.mailbox.len()
    }

    /// Accesses that entered the mailbox so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Accesses injected into the memory system so far.
    pub fn injected(&self) -> u64 {
        match (&self.driver, &self.report) {
            (Some(d), _) => d.injected(),
            (None, Some(r)) => r.result.accesses,
            (None, None) => 0,
        }
    }

    /// Whether the session has finished ([`DevicePump::Done`]).
    pub fn is_done(&self) -> bool {
        self.report.is_some()
    }

    /// The finished session's report, once done.
    pub fn report(&self) -> Option<&DeviceReport> {
        self.report.as_ref()
    }

    /// Consumes the device, returning its report.
    ///
    /// # Panics
    ///
    /// Panics if the session has not finished.
    pub fn into_report(self) -> DeviceReport {
        self.report.expect("into_report requires a finished session")
    }

    /// Queues one access from an external producer; see [`Push`].
    ///
    /// Accesses must arrive cycle-sorted (the same contract every
    /// [`AccessStream`] satisfies).
    ///
    /// # Panics
    ///
    /// Panics on self-sourced devices (their ingress is
    /// [`ServedDevice::ingest`]) and after
    /// [`ServedDevice::close_ingress`].
    pub fn try_push(&mut self, access: MemAccess) -> Push {
        assert!(self.source.is_none(), "spec-sourced devices ingest from their own stream");
        assert!(!self.source_eof, "push after close_ingress");
        if self.mailbox.len() >= self.spec.mailbox {
            return Push::Full;
        }
        self.mailbox.push_back(access);
        self.consumed += 1;
        Push::Accepted
    }

    /// Declares external ingress over: once the mailbox drains, the
    /// session runs to completion.
    pub fn close_ingress(&mut self) {
        self.source_eof = true;
    }

    /// Pulls up to `max` accesses from the device's own workload stream
    /// into the mailbox (bounded by the free mailbox space). Returns how
    /// many were queued; observes end-of-stream by returning 0 and
    /// latching ingress closed.
    pub fn ingest(&mut self, max: usize) -> usize {
        if self.source_eof || self.report.is_some() {
            return 0;
        }
        let Some(source) = self.source.as_mut() else {
            return 0;
        };
        let want = max.min(self.spec.mailbox - self.mailbox.len());
        if want == 0 {
            return 0;
        }
        let n = source.next_chunk(want, &mut self.scratch);
        if n == 0 {
            self.source_eof = true;
            return 0;
        }
        self.mailbox.extend(self.scratch.iter().copied());
        self.consumed += n as u64;
        n
    }

    /// Advances the simulation by at most `budget` driver iterations,
    /// feeding the driver from the mailbox at its `NeedInput` boundaries.
    /// Finishing the session computes [`ServedDevice::report`].
    pub fn pump(&mut self, budget: usize) -> DevicePump {
        if self.report.is_some() {
            return DevicePump::Done;
        }
        let sys = self.sys.as_mut().expect("live session has a memory system");
        let driver = self.driver.as_mut().expect("live session has a driver");
        loop {
            match driver.pump(sys, budget) {
                Pump::Budget => return DevicePump::Working,
                Pump::NeedInput => {
                    if self.mailbox.is_empty() {
                        if self.source_eof {
                            driver.close();
                            continue;
                        }
                        return DevicePump::Starved;
                    }
                    while let Some(a) = self.mailbox.pop_front() {
                        driver.offer(&a);
                    }
                }
                Pump::Drained => break,
            }
        }
        let driver = self.driver.take().expect("drained session still owns its driver");
        let sys = self.sys.take().expect("drained session still owns its memory system");
        let (result, closed_loop, telemetry) = driver.finish(sys, &self.label);
        self.report = Some(DeviceReport { id: self.spec.id, result, closed_loop, telemetry });
        DevicePump::Done
    }

    /// Pumps without budget until the device is input-starved (mailbox
    /// empty, driver waiting) or done — the quiescent point snapshots
    /// require.
    pub fn quiesce(&mut self) -> DevicePump {
        loop {
            match self.pump(usize::MAX) {
                DevicePump::Working => {}
                other => return other,
            }
        }
    }
}
