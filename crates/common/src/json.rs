//! Shared JSON plumbing for every emitter in the workspace.
//!
//! The build environment has no registry access, so the vendored `serde`
//! stand-in ships without `serde_json`; every JSON document the workspace
//! emits (the `planaria-perf-v1` / `planaria-contention-v1` /
//! `planaria-lint-v1` measurement schemas, the telemetry JSONL stream) is
//! written by hand. This module is the single home for that plumbing —
//! `planaria-lint` rule R6 rejects escape helpers or schema emitters
//! defined anywhere else:
//!
//! * [`escape`] — JSON string-literal escaping;
//! * [`Writer`] — a comma/indent-discipline builder for hand-rolled
//!   documents with a fixed key order (pretty for committed measurement
//!   files, compact for JSONL);
//! * [`parse`] / [`Value`] — a strict RFC 8259 recursive-descent parser
//!   (object key order preserved — no maps, so parsing is deterministic);
//! * [`validate`] — syntax check built on the parser, used by every
//!   `--check` entry point.
//!
//! # Examples
//!
//! ```
//! use planaria_common::json::{self, Writer};
//!
//! let mut w = Writer::pretty();
//! w.begin_object();
//! w.key("schema");
//! w.string("demo-v1");
//! w.key("values");
//! w.begin_array();
//! w.u64(1);
//! w.u64(2);
//! w.end_array();
//! w.end_object();
//! let doc = w.finish();
//! assert!(json::validate(&doc).is_ok());
//! assert_eq!(json::parse(&doc).unwrap().get("schema").unwrap().as_str(), Some("demo-v1"));
//! ```

use core::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates that `text` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Parses `text` as exactly one JSON value.
///
/// Object member order is preserved ([`Value::Object`] is a `Vec`, not a
/// map), so round-tripping and iteration are deterministic.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members in document order, duplicates preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The number, if this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(members)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().filter(u8::is_ascii_hexdigit);
                            match d {
                                Some(d) => {
                                    code = code * 16 + (d as char).to_digit(16).unwrap_or(0);
                                }
                                None => return Err(self.err("bad \\u escape")),
                            }
                        }
                        // Lone surrogates cannot become chars; map them to
                        // U+FFFD (the validator is strict about syntax, not
                        // about surrogate pairing, matching RFC 8259).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8: the input is a &str, so
                    // continuation bytes are guaranteed well-formed.
                    if b.is_ascii() {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while self.peek().is_some_and(|n| n & 0xc0 == 0x80) {
                            self.pos += 1;
                        }
                        out.push_str(
                            core::str::from_utf8(&self.bytes[start..self.pos])
                                .map_err(|_| self.err("invalid UTF-8"))?,
                        );
                    }
                }
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("unrepresentable number"))
    }
}

/// How a [`Writer`] lays out the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Two-space indent, one member per line — for committed files.
    Pretty,
    /// No whitespace at all — for JSONL streams.
    Compact,
}

/// A builder for hand-rolled JSON documents with a fixed key order.
///
/// The writer owns the comma/newline/indent discipline that every emitter
/// previously re-implemented; callers only state structure. Numbers are
/// pushed either typed ([`Writer::u64`], [`Writer::f64`]) or preformatted
/// ([`Writer::raw`]) so emitters keep exact control of precision.
///
/// Calls must nest correctly; [`Writer::finish`] panics on unbalanced
/// documents (emitters are deterministic, so any imbalance is a plain bug
/// caught by the first test that runs the emitter).
#[derive(Debug)]
pub struct Writer {
    buf: String,
    layout: Layout,
    /// One frame per open container: `(is_array, member_count)`.
    stack: Vec<(bool, usize)>,
    /// Set between `key()` and the value that consumes it.
    pending_key: bool,
    /// Nesting depth at which inline (single-line) mode was entered.
    inline_from: Option<usize>,
}

impl Writer {
    /// A writer producing two-space-indented output with a trailing newline.
    pub fn pretty() -> Self {
        Writer {
            buf: String::new(),
            layout: Layout::Pretty,
            stack: Vec::new(),
            pending_key: false,
            inline_from: None,
        }
    }

    /// A writer producing whitespace-free output (one JSONL record).
    pub fn compact() -> Self {
        Writer {
            buf: String::new(),
            layout: Layout::Compact,
            stack: Vec::new(),
            pending_key: false,
            inline_from: None,
        }
    }

    fn multiline(&self) -> bool {
        self.layout == Layout::Pretty && self.inline_from.is_none()
    }

    fn newline_indent(&mut self, depth: usize) {
        self.buf.push('\n');
        for _ in 0..depth {
            self.buf.push_str("  ");
        }
    }

    /// Writes the separator a new member needs, if any.
    fn prepare_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((is_array, count)) = self.stack.last().copied() {
            assert!(is_array, "object values need a key() first");
            if count > 0 {
                self.buf.push(',');
                if self.layout == Layout::Pretty && !self.multiline() {
                    self.buf.push(' ');
                }
            }
            if self.multiline() {
                let depth = self.stack.len();
                self.newline_indent(depth);
            }
            if let Some(last) = self.stack.last_mut() {
                last.1 += 1;
            }
        }
    }

    /// Starts a member of the current object: separator, `"name":`.
    pub fn key(&mut self, name: &str) {
        let (is_array, count) = *self.stack.last().expect("key() outside any object");
        assert!(!is_array, "key() inside an array");
        assert!(!self.pending_key, "two key() calls without a value");
        if count > 0 {
            self.buf.push(',');
            if self.layout == Layout::Pretty && !self.multiline() {
                self.buf.push(' ');
            }
        }
        if self.multiline() {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
        if self.layout == Layout::Pretty {
            self.buf.push(' ');
        }
        if let Some(last) = self.stack.last_mut() {
            last.1 += 1;
        }
        self.pending_key = true;
    }

    /// Opens an object (as a value or array element).
    pub fn begin_object(&mut self) {
        self.prepare_value();
        self.buf.push('{');
        self.stack.push((false, 0));
    }

    /// Opens an object rendered on a single line even in pretty layout —
    /// for dense row records inside arrays.
    pub fn begin_inline_object(&mut self) {
        self.prepare_value();
        self.buf.push('{');
        self.stack.push((false, 0));
        if self.inline_from.is_none() {
            self.inline_from = Some(self.stack.len());
        }
    }

    /// Closes the current object.
    pub fn end_object(&mut self) {
        let (is_array, count) = self.stack.pop().expect("end_object() with nothing open");
        assert!(!is_array, "end_object() closes an array");
        assert!(!self.pending_key, "key() without a value");
        if self.inline_from == Some(self.stack.len() + 1) {
            self.inline_from = None;
        } else if self.multiline() && count > 0 {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.buf.push('}');
    }

    /// Opens an array (as a value or array element).
    pub fn begin_array(&mut self) {
        self.prepare_value();
        self.buf.push('[');
        self.stack.push((true, 0));
    }

    /// Closes the current array.
    pub fn end_array(&mut self) {
        let (is_array, count) = self.stack.pop().expect("end_array() with nothing open");
        assert!(is_array, "end_array() closes an object");
        if self.multiline() && count > 0 {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.buf.push(']');
    }

    /// Writes a string value (escaped, quoted).
    pub fn string(&mut self, s: &str) {
        self.prepare_value();
        let _ = write!(self.buf, "\"{}\"", escape(s));
    }

    /// Writes a preformatted value verbatim — the caller guarantees it is
    /// valid JSON (typically a number formatted with explicit precision).
    pub fn raw(&mut self, preformatted: &str) {
        self.prepare_value();
        self.buf.push_str(preformatted);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, n: u64) {
        self.prepare_value();
        let _ = write!(self.buf, "{n}");
    }

    /// Writes a float with fixed decimal precision.
    pub fn f64(&mut self, v: f64, precision: usize) {
        self.prepare_value();
        let _ = write!(self.buf, "{v:.precision$}");
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, b: bool) {
        self.prepare_value();
        self.buf.push_str(if b { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.prepare_value();
        self.buf.push_str("null");
    }

    /// Finishes the document and returns it (pretty layout gains a
    /// trailing newline, matching the committed measurement files).
    pub fn finish(mut self) -> String {
        assert!(self.stack.is_empty(), "unbalanced JSON document");
        assert!(!self.pending_key, "key() without a value");
        if self.layout == Layout::Pretty {
            self.buf.push('\n');
        }
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#""a\nbÿ""#,
            r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#,
            "  {\n\"k\": 0\n}\n",
        ] {
            assert_eq!(validate(ok), Ok(()), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{]",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a": 1,}"#,
            "01",
            "1.",
            "nul",
            r#""unterminated"#,
            "{} extra",
            r#"{"a": }"#,
        ] {
            assert!(validate(bad).is_err(), "accepted malformed JSON: {bad}");
        }
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\u{1}y"), "x\\u0001y");
        assert_eq!(escape("tab\there"), "tab\\there");
    }

    #[test]
    fn parse_preserves_object_order_and_unescapes() {
        let v = parse(r#"{"b": 1, "a": "x\ny", "z": [true, null]}"#).unwrap();
        let members = v.as_object().unwrap();
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a", "z"]);
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("z").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn writer_pretty_roundtrips() {
        let mut w = Writer::pretty();
        w.begin_object();
        w.key("schema");
        w.string("t-v1");
        w.key("n");
        w.f64(1.25, 3);
        w.key("rows");
        w.begin_array();
        w.begin_inline_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.bool(false);
        w.end_object();
        w.begin_inline_object();
        w.key("a");
        w.null();
        w.end_object();
        w.end_array();
        w.key("empty");
        w.begin_object();
        w.end_object();
        w.end_object();
        let doc = w.finish();
        assert_eq!(validate(&doc), Ok(()), "{doc}");
        assert!(doc.contains("{\"a\": 1, \"b\": false}"), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
        assert!(doc.contains("\"n\": 1.250"), "{doc}");
        assert_eq!(parse(&doc).unwrap().get("schema").unwrap().as_str(), Some("t-v1"));
    }

    #[test]
    fn writer_compact_has_no_whitespace() {
        let mut w = Writer::compact();
        w.begin_object();
        w.key("k");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"k\":[1,2]}");
    }
}
