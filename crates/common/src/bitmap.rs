//! Fixed-width footprint bitmaps.
//!
//! Planaria represents the set of accessed blocks in a page (its *footprint
//! snapshot*) as a bitmap: bit *i* is set when block *i* has been accessed.
//! Because a 4 KB page is channel-sliced into four 16-block segments, the
//! per-channel hardware tables store [`Bitmap16`]; whole-page analyses (the
//! Figure 4/5 experiments) use [`Bitmap64`].
//!
//! # Examples
//!
//! ```
//! use planaria_common::Bitmap16;
//!
//! // A footprint snapshot: blocks 0, 2 and 5 of the segment were touched.
//! let snapshot: Bitmap16 = [0usize, 2, 5].into_iter().collect();
//! assert_eq!(snapshot.count(), 3);
//!
//! // On replay, blocks already covered by the current access are pruned
//! // with set subtraction; `iter_set` yields what is left to prefetch.
//! let already_seen = Bitmap16::EMPTY.with(2);
//! let todo = snapshot.minus(already_seen);
//! assert_eq!(todo.iter_set().collect::<Vec<_>>(), vec![0, 5]);
//!
//! // TLP's similarity test is bit overlap between two snapshots.
//! assert_eq!(snapshot.overlap(already_seen), 1);
//! ```

use core::fmt;

macro_rules! impl_bitmap {
    ($name:ident, $repr:ty, $bits:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name($repr);

        impl $name {
            /// Number of bits in the bitmap.
            pub const BITS: usize = $bits;

            /// The empty bitmap.
            pub const EMPTY: $name = $name(0);

            /// The full bitmap (every block accessed).
            pub const FULL: $name = $name(<$repr>::MAX);

            /// Creates a bitmap from its raw bits.
            pub const fn from_bits(bits: $repr) -> Self {
                Self(bits)
            }

            /// Returns the raw bits.
            pub const fn bits(self) -> $repr {
                self.0
            }

            /// Returns `true` if no bit is set.
            pub const fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// Returns the number of set bits (footprint size).
            pub const fn count(self) -> usize {
                self.0.count_ones() as usize
            }

            /// Returns whether bit `idx` is set.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= Self::BITS`.
            pub fn get(self, idx: usize) -> bool {
                assert!(idx < Self::BITS, "bit {idx} out of range 0..{}", Self::BITS);
                self.0 & (1 << idx) != 0
            }

            /// Sets bit `idx`, returning the new bitmap.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= Self::BITS`.
            #[must_use]
            pub fn with(self, idx: usize) -> Self {
                assert!(idx < Self::BITS, "bit {idx} out of range 0..{}", Self::BITS);
                Self(self.0 | (1 << idx))
            }

            /// Sets bit `idx` in place.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= Self::BITS`.
            pub fn set(&mut self, idx: usize) {
                *self = self.with(idx);
            }

            /// Clears bit `idx` in place.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= Self::BITS`.
            pub fn clear(&mut self, idx: usize) {
                assert!(idx < Self::BITS, "bit {idx} out of range 0..{}", Self::BITS);
                self.0 &= !(1 << idx);
            }

            /// Bitwise intersection (blocks present in both footprints).
            pub const fn and(self, other: Self) -> Self {
                Self(self.0 & other.0)
            }

            /// Bitwise union.
            pub const fn or(self, other: Self) -> Self {
                Self(self.0 | other.0)
            }

            /// Bits set in `self` but not in `other`.
            pub const fn minus(self, other: Self) -> Self {
                Self(self.0 & !other.0)
            }

            /// Hamming distance: number of differing bits.
            ///
            /// TLP's neighbour test declares two pages "learnable neighbours"
            /// when this distance is at most a small threshold (4 bits in
            /// the paper's Figure 5 experiment).
            pub const fn hamming_distance(self, other: Self) -> usize {
                (self.0 ^ other.0).count_ones() as usize
            }

            /// Number of bits set in both bitmaps (common-pattern size).
            ///
            /// TLP picks the candidate neighbour maximising this overlap.
            pub const fn overlap(self, other: Self) -> usize {
                (self.0 & other.0).count_ones() as usize
            }

            /// Overlap rate of `self` relative to `current` as defined for
            /// the paper's Figure 4: `|self ∩ current| / |current|`.
            ///
            /// Returns `None` when `current` is empty.
            pub fn overlap_rate(self, current: Self) -> Option<f64> {
                if current.is_empty() {
                    None
                } else {
                    Some(self.overlap(current) as f64 / current.count() as f64)
                }
            }

            /// Iterates over the indices of set bits in ascending order.
            pub fn iter_set(self) -> IterSet<$repr> {
                IterSet { bits: self.0 }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:0width$b}", self.0, width = Self::BITS)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$repr> for $name {
            fn from(bits: $repr) -> Self {
                Self(bits)
            }
        }

        impl From<$name> for $repr {
            fn from(b: $name) -> $repr {
                b.0
            }
        }

        impl FromIterator<usize> for $name {
            fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
                let mut b = Self::EMPTY;
                for idx in iter {
                    b.set(idx);
                }
                b
            }
        }
    };
}

impl_bitmap!(
    Bitmap16,
    u16,
    16,
    "A 16-bit footprint bitmap for one page segment (one DRAM channel's share of a page)."
);
impl_bitmap!(
    Bitmap64,
    u64,
    64,
    "A 64-bit footprint bitmap covering a whole 4 KB page (64 blocks)."
);

/// Iterator over set-bit indices, produced by `iter_set`.
#[derive(Debug, Clone)]
pub struct IterSet<R> {
    bits: R,
}

macro_rules! impl_iter_set {
    ($repr:ty) => {
        impl Iterator for IterSet<$repr> {
            type Item = usize;

            fn next(&mut self) -> Option<usize> {
                if self.bits == 0 {
                    None
                } else {
                    let idx = self.bits.trailing_zeros() as usize;
                    self.bits &= self.bits - 1;
                    Some(idx)
                }
            }

            fn size_hint(&self) -> (usize, Option<usize>) {
                let n = self.bits.count_ones() as usize;
                (n, Some(n))
            }
        }

        impl ExactSizeIterator for IterSet<$repr> {}
    };
}

impl_iter_set!(u16);
impl_iter_set!(u64);

impl Bitmap64 {
    /// Splits a whole-page bitmap into its four per-channel segment bitmaps.
    pub fn split_segments(self) -> [Bitmap16; crate::NUM_CHANNELS] {
        let mut out = [Bitmap16::EMPTY; crate::NUM_CHANNELS];
        for (seg, slot) in out.iter_mut().enumerate() {
            let shifted = (self.bits() >> (seg * crate::BLOCKS_PER_SEGMENT)) as u16;
            *slot = Bitmap16::from_bits(shifted);
        }
        out
    }

    /// Reassembles a whole-page bitmap from per-channel segment bitmaps.
    pub fn from_segments(segments: [Bitmap16; crate::NUM_CHANNELS]) -> Self {
        let mut bits = 0u64;
        for (seg, bm) in segments.iter().enumerate() {
            bits |= (bm.bits() as u64) << (seg * crate::BLOCKS_PER_SEGMENT);
        }
        Self::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap16::EMPTY;
        assert!(b.is_empty());
        b.set(3);
        b.set(15);
        assert!(b.get(3) && b.get(15) && !b.get(4));
        assert_eq!(b.count(), 2);
        b.clear(3);
        assert!(!b.get(3));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn iter_set_ascending() {
        let b: Bitmap64 = [0usize, 5, 63].into_iter().collect();
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![0, 5, 63]);
        assert_eq!(b.iter_set().len(), 3);
    }

    #[test]
    fn set_ops() {
        let a = Bitmap16::from_bits(0b1100);
        let b = Bitmap16::from_bits(0b1010);
        assert_eq!(a.and(b).bits(), 0b1000);
        assert_eq!(a.or(b).bits(), 0b1110);
        assert_eq!(a.minus(b).bits(), 0b0100);
        assert_eq!(a.hamming_distance(b), 2);
        assert_eq!(a.overlap(b), 1);
    }

    #[test]
    fn overlap_rate_matches_figure4_definition() {
        // prev window {0,1,2,3}, current window {2,3,4,5}:
        // |prev ∩ cur| / |cur| = 2/4.
        let prev: Bitmap64 = [0usize, 1, 2, 3].into_iter().collect();
        let cur: Bitmap64 = [2usize, 3, 4, 5].into_iter().collect();
        assert_eq!(prev.overlap_rate(cur), Some(0.5));
        assert_eq!(prev.overlap_rate(Bitmap64::EMPTY), None);
    }

    #[test]
    fn segment_split_round_trip() {
        let b = Bitmap64::from_bits(0xDEAD_BEEF_1234_5678);
        let segs = b.split_segments();
        assert_eq!(Bitmap64::from_segments(segs), b);
        assert_eq!(segs[0].bits(), 0x5678);
        assert_eq!(segs[3].bits(), 0xDEAD);
    }

    #[test]
    fn display_is_fixed_width() {
        assert_eq!(format!("{}", Bitmap16::from_bits(0b101)).len(), 16);
        assert_eq!(format!("{}", Bitmap64::EMPTY).len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range() {
        let _ = Bitmap16::EMPTY.get(16);
    }

    proptest! {
        #[test]
        fn prop_count_equals_iter_len(bits: u64) {
            let b = Bitmap64::from_bits(bits);
            prop_assert_eq!(b.count(), b.iter_set().count());
        }

        #[test]
        fn prop_hamming_triangle_inequality(a: u16, b: u16, c: u16) {
            let (a, b, c) = (Bitmap16::from_bits(a), Bitmap16::from_bits(b), Bitmap16::from_bits(c));
            prop_assert!(a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c));
        }

        #[test]
        fn prop_split_round_trips(bits: u64) {
            let b = Bitmap64::from_bits(bits);
            prop_assert_eq!(Bitmap64::from_segments(b.split_segments()), b);
        }

        #[test]
        fn prop_minus_disjoint_from_other(a: u16, b: u16) {
            let (a, b) = (Bitmap16::from_bits(a), Bitmap16::from_bits(b));
            prop_assert_eq!(a.minus(b).and(b), Bitmap16::EMPTY);
            prop_assert_eq!(a.minus(b).or(a.and(b)), a);
        }
    }
}
