//! Shared primitives for the Planaria memory-system simulator.
//!
//! This crate defines the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`addr`] — physical addresses, page numbers and block indices for the
//!   4 KB-page / 64 B-block geometry used throughout the paper.
//! * [`bitmap`] — fixed-width footprint bitmaps ([`Bitmap16`], [`Bitmap64`])
//!   that record which blocks of a page (or page segment) have been touched.
//! * [`access`] — demand-access records ([`MemAccess`]) carrying the fields a
//!   memory-side prefetcher can observe: physical address, read/write kind,
//!   originating device and arrival cycle. There is deliberately **no program
//!   counter**: the system cache sits on the memory side where a PC is
//!   unavailable, which is the core constraint Planaria is designed around.
//! * [`prefetch`] — prefetch request records produced by prefetchers.
//! * [`json`] — the shared JSON escape/writer/parser helpers every emitter
//!   in the workspace routes through (there is no `serde_json`; see the
//!   module docs and `planaria-lint` rule R6).
//!
//! # Geometry
//!
//! The paper's mobile SoC uses 4 KB pages, 64 B cache blocks (so 64 blocks
//! per page) and four DRAM channels. A page is statically partitioned into
//! four 16-block segments, one per channel, so the per-channel prefetcher
//! hardware tracks 16-bit footprint bitmaps.
//!
//! # Examples
//!
//! ```
//! use planaria_common::{PhysAddr, BLOCK_SIZE, BLOCKS_PER_PAGE};
//!
//! let addr = PhysAddr::new(0x1234_5678);
//! assert_eq!(addr.page().base_addr().as_u64(), 0x1234_5000);
//! assert_eq!(addr.block_index().as_usize(), (0x678 / BLOCK_SIZE as usize));
//! assert!(addr.block_index().as_usize() < BLOCKS_PER_PAGE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod bitmap;
pub mod json;
pub mod prefetch;

pub use access::{AccessKind, DeviceId, MemAccess};
pub use addr::{BlockIndex, ChannelId, Cycle, PageNum, PhysAddr, SegmentIndex};
pub use bitmap::{Bitmap16, Bitmap64};
pub use prefetch::{PrefetchOrigin, PrefetchRequest};

/// Size of a memory page in bytes (4 KB, as in the paper's mobile SoC).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a cache block in bytes (64 B system-cache line).
pub const BLOCK_SIZE: u64 = 64;

/// Number of cache blocks in a page (`PAGE_SIZE / BLOCK_SIZE` = 64).
pub const BLOCKS_PER_PAGE: usize = (PAGE_SIZE / BLOCK_SIZE) as usize;

/// Number of DRAM channels in the baseline system (Table 1).
pub const NUM_CHANNELS: usize = 4;

/// Number of blocks in a page segment statically mapped to one channel.
pub const BLOCKS_PER_SEGMENT: usize = BLOCKS_PER_PAGE / NUM_CHANNELS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(BLOCK_SIZE, 64);
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(NUM_CHANNELS, 4);
        assert_eq!(BLOCKS_PER_SEGMENT, 16);
        assert_eq!(BLOCKS_PER_SEGMENT * NUM_CHANNELS, BLOCKS_PER_PAGE);
    }
}
