//! Demand-access records as observed on the memory bus.
//!
//! Each record mirrors one entry of the paper's bus-monitor trace format:
//! physical address, access type (read/write), requesting device id and
//! arrival time. No program counter is available — the defining constraint
//! of memory-side prefetching.

use core::fmt;

use crate::{Cycle, PhysAddr};

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A read (load / fetch / DMA-in) request.
    Read,
    /// A write (store / writeback / DMA-out) request.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// The SoC agent that issued a memory request.
///
/// The system cache is shared by heterogeneous devices; the trace records
/// which device issued each request (the paper lists CPU, GPU, DSP, NPU and
/// ISP agents). Planaria itself ignores the device id — it cannot rely on
/// per-device state the way PC-indexed prefetchers rely on per-PC state —
/// but workload generators and statistics use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeviceId {
    /// One of the eight CPU cores (index 0..=7).
    Cpu(u8),
    /// The Mali GPU.
    Gpu,
    /// The neural processing unit.
    Npu,
    /// The image signal processor.
    Isp,
    /// The digital signal processor.
    Dsp,
}

impl DeviceId {
    /// Number of distinct devices: eight CPU cores plus GPU/NPU/ISP/DSP.
    pub const COUNT: usize = 12;

    /// Every device, ordered by [`DeviceId::index`] (the canonical order
    /// for per-device statistics tables).
    pub const ALL: [DeviceId; DeviceId::COUNT] = [
        DeviceId::Cpu(0),
        DeviceId::Cpu(1),
        DeviceId::Cpu(2),
        DeviceId::Cpu(3),
        DeviceId::Cpu(4),
        DeviceId::Cpu(5),
        DeviceId::Cpu(6),
        DeviceId::Cpu(7),
        DeviceId::Gpu,
        DeviceId::Npu,
        DeviceId::Isp,
        DeviceId::Dsp,
    ];

    /// Returns `true` if the device is a CPU core.
    pub const fn is_cpu(self) -> bool {
        matches!(self, DeviceId::Cpu(_))
    }

    /// A dense index in `0..`[`DeviceId::COUNT`]: CPU cores map to their
    /// core number (clamped to 7), then GPU, NPU, ISP, DSP.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_common::DeviceId;
    ///
    /// assert_eq!(DeviceId::Cpu(3).index(), 3);
    /// assert_eq!(DeviceId::Gpu.index(), 8);
    /// assert_eq!(DeviceId::ALL[DeviceId::Dsp.index()], DeviceId::Dsp);
    /// ```
    pub const fn index(self) -> usize {
        match self {
            DeviceId::Cpu(i) => {
                if i > 7 {
                    7
                } else {
                    i as usize
                }
            }
            DeviceId::Gpu => 8,
            DeviceId::Npu => 9,
            DeviceId::Isp => 10,
            DeviceId::Dsp => 11,
        }
    }

    /// Inverse of [`DeviceId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= DeviceId::COUNT`.
    pub const fn from_index(index: usize) -> DeviceId {
        DeviceId::ALL[index]
    }

    /// Stable short label (`"cpu0"`..`"cpu7"`, `"gpu"`, `"npu"`, `"isp"`,
    /// `"dsp"`), identical to the [`core::fmt::Display`] rendering but
    /// available as a `&'static str` for table headers and JSON keys.
    pub const fn label(self) -> &'static str {
        match self {
            DeviceId::Cpu(0) => "cpu0",
            DeviceId::Cpu(1) => "cpu1",
            DeviceId::Cpu(2) => "cpu2",
            DeviceId::Cpu(3) => "cpu3",
            DeviceId::Cpu(4) => "cpu4",
            DeviceId::Cpu(5) => "cpu5",
            DeviceId::Cpu(6) => "cpu6",
            DeviceId::Cpu(_) => "cpu7",
            DeviceId::Gpu => "gpu",
            DeviceId::Npu => "npu",
            DeviceId::Isp => "isp",
            DeviceId::Dsp => "dsp",
        }
    }
}

impl Default for DeviceId {
    fn default() -> Self {
        DeviceId::Cpu(0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Cpu(i) => write!(f, "cpu{i}"),
            DeviceId::Gpu => f.write_str("gpu"),
            DeviceId::Npu => f.write_str("npu"),
            DeviceId::Isp => f.write_str("isp"),
            DeviceId::Dsp => f.write_str("dsp"),
        }
    }
}

/// One demand access observed at the system-cache boundary.
///
/// # Examples
///
/// ```
/// use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PhysAddr};
///
/// let a = MemAccess::new(PhysAddr::new(0x4000), AccessKind::Read, DeviceId::Gpu, Cycle::new(10));
/// assert_eq!(a.addr.page().as_u64(), 4);
/// assert!(a.kind.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemAccess {
    /// Physical byte address of the request.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Requesting SoC agent.
    pub device: DeviceId,
    /// Arrival time at the system cache, in memory-controller cycles.
    pub cycle: Cycle,
}

impl MemAccess {
    /// Creates an access record.
    pub const fn new(addr: PhysAddr, kind: AccessKind, device: DeviceId, cycle: Cycle) -> Self {
        Self { addr, kind, device, cycle }
    }

    /// Convenience constructor for a CPU read, the most common trace entry.
    pub const fn read(addr: PhysAddr, cycle: Cycle) -> Self {
        Self::new(addr, AccessKind::Read, DeviceId::Cpu(0), cycle)
    }

    /// Convenience constructor for a CPU write.
    pub const fn write(addr: PhysAddr, cycle: Cycle) -> Self {
        Self::new(addr, AccessKind::Write, DeviceId::Cpu(0), cycle)
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} @{}", self.kind, self.addr, self.device, self.cycle.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
    }

    #[test]
    fn device_display_and_cpu_check() {
        assert_eq!(DeviceId::Cpu(3).to_string(), "cpu3");
        assert_eq!(DeviceId::Gpu.to_string(), "gpu");
        assert!(DeviceId::Cpu(0).is_cpu());
        assert!(!DeviceId::Npu.is_cpu());
    }

    #[test]
    fn device_index_round_trips() {
        for (i, d) in DeviceId::ALL.into_iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(DeviceId::from_index(i), d);
            assert_eq!(d.label(), d.to_string());
        }
        // Out-of-range core numbers clamp rather than collide with GPU+.
        assert_eq!(DeviceId::Cpu(200).index(), 7);
        assert_eq!(DeviceId::Cpu(200).label(), "cpu7");
    }

    #[test]
    fn convenience_constructors() {
        let r = MemAccess::read(PhysAddr::new(0x40), Cycle::new(1));
        assert!(r.kind.is_read());
        let w = MemAccess::write(PhysAddr::new(0x80), Cycle::new(2));
        assert!(w.kind.is_write());
        assert!(!w.to_string().is_empty());
    }
}
