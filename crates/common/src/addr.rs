//! Physical address arithmetic for the 4 KB-page / 64 B-block geometry.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use crate::{BLOCKS_PER_PAGE, BLOCKS_PER_SEGMENT, BLOCK_SIZE, NUM_CHANNELS, PAGE_SIZE};

/// A physical byte address on the memory bus.
///
/// All simulator components exchange `PhysAddr`s; helpers derive the page
/// number, block index and channel mapping from it.
///
/// # Examples
///
/// ```
/// use planaria_common::PhysAddr;
///
/// let a = PhysAddr::new(0x2000 + 3 * 64 + 7);
/// assert_eq!(a.page().as_u64(), 2);
/// assert_eq!(a.block_index().as_usize(), 3);
/// assert_eq!(a.block_base().as_u64(), 0x2000 + 3 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Builds the address of a specific block within a page.
    ///
    /// # Panics
    ///
    /// Panics if `block.as_usize() >= BLOCKS_PER_PAGE` cannot occur because
    /// [`BlockIndex`] is validated on construction.
    pub const fn from_parts(page: PageNum, block: BlockIndex) -> Self {
        Self(page.0 * PAGE_SIZE + block.0 as u64 * BLOCK_SIZE)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the page this address falls in.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE)
    }

    /// Returns the index of the 64 B block within its page (0..64).
    pub const fn block_index(self) -> BlockIndex {
        BlockIndex(((self.0 % PAGE_SIZE) / BLOCK_SIZE) as u8)
    }

    /// Returns the address aligned down to its 64 B block boundary.
    pub const fn block_base(self) -> PhysAddr {
        Self(self.0 & !(BLOCK_SIZE - 1))
    }

    /// Returns the global block number (address / 64).
    pub const fn block_number(self) -> u64 {
        self.0 / BLOCK_SIZE
    }

    /// Returns the DRAM channel this address is statically mapped to.
    ///
    /// Per the paper, each 4 KB page is split into four 16-block segments
    /// and segment *i* always lives on channel *i*.
    pub const fn channel(self) -> ChannelId {
        ChannelId(self.block_index().segment().0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> u64 {
        addr.0
    }
}

/// A 4 KB physical page number.
///
/// The page number is the *only* signature Planaria uses to index its
/// pattern tables (no PC is available at the system-cache level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a page number.
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// Returns the raw page number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first block in the page.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }

    /// Absolute page-number distance to another page.
    ///
    /// TLP treats two pages as potential "learnable neighbours" when this
    /// distance is at most the configured distance threshold.
    pub const fn distance(self, other: PageNum) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Returns the page `delta` pages away, saturating at zero.
    pub const fn offset(self, delta: i64) -> PageNum {
        PageNum(self.0.saturating_add_signed(delta))
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {:#x}", self.0)
    }
}

impl From<u64> for PageNum {
    fn from(n: u64) -> Self {
        Self(n)
    }
}

impl From<PageNum> for u64 {
    fn from(p: PageNum) -> u64 {
        p.0
    }
}

/// The index of a 64 B block within its 4 KB page (0..=63).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockIndex(u8);

impl BlockIndex {
    /// Creates a block index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= BLOCKS_PER_PAGE` (64).
    pub fn new(idx: usize) -> Self {
        assert!(idx < BLOCKS_PER_PAGE, "block index {idx} out of range 0..{BLOCKS_PER_PAGE}");
        Self(idx as u8)
    }

    /// Creates a block index without bounds checking overhead in const
    /// contexts; still panics on out-of-range input.
    pub const fn new_const(idx: u8) -> Self {
        assert!((idx as usize) < BLOCKS_PER_PAGE);
        Self(idx)
    }

    /// Returns the index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the 16-block segment this block falls in (0..=3).
    pub const fn segment(self) -> SegmentIndex {
        SegmentIndex((self.0 as usize / BLOCKS_PER_SEGMENT) as u8)
    }

    /// Returns the block's position within its segment (0..=15).
    pub const fn index_in_segment(self) -> usize {
        self.0 as usize % BLOCKS_PER_SEGMENT
    }
}

impl fmt::Display for BlockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}", self.0)
    }
}

/// A 16-block segment of a page (0..=3); segment *i* maps to channel *i*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentIndex(u8);

impl SegmentIndex {
    /// Creates a segment index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_CHANNELS` (4).
    pub fn new(idx: usize) -> Self {
        assert!(idx < NUM_CHANNELS, "segment index {idx} out of range 0..{NUM_CHANNELS}");
        Self(idx as u8)
    }

    /// Returns the index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the first block index of this segment.
    pub const fn first_block(self) -> BlockIndex {
        BlockIndex(self.0 * BLOCKS_PER_SEGMENT as u8)
    }

    /// Builds the page-level block index from this segment and a within-
    /// segment position.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= BLOCKS_PER_SEGMENT` (16).
    pub fn block(self, pos: usize) -> BlockIndex {
        assert!(pos < BLOCKS_PER_SEGMENT, "segment position {pos} out of range");
        BlockIndex(self.0 * BLOCKS_PER_SEGMENT as u8 + pos as u8)
    }
}

impl fmt::Display for SegmentIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "segment {}", self.0)
    }
}

/// A DRAM channel identifier (0..=3 in the baseline system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelId(u8);

impl ChannelId {
    /// Creates a channel id.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_CHANNELS`.
    pub fn new(idx: usize) -> Self {
        assert!(idx < NUM_CHANNELS, "channel {idx} out of range 0..{NUM_CHANNELS}");
        Self(idx as u8)
    }

    /// Returns the channel index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all channels of the baseline system.
    pub fn all() -> impl Iterator<Item = ChannelId> {
        (0..NUM_CHANNELS as u8).map(ChannelId)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A point in simulated time, measured in memory-controller cycles.
///
/// `Cycle` supports saturating-free plain arithmetic because the simulator
/// never runs long enough to overflow `u64` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp.
    pub const fn new(c: u64) -> Self {
        Self(c)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(c: u64) -> Self {
        Self(c)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trip_through_parts() {
        for page in [0u64, 1, 7, 1 << 20] {
            for blk in [0usize, 1, 15, 16, 63] {
                let a = PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(blk));
                assert_eq!(a.page(), PageNum::new(page));
                assert_eq!(a.block_index(), BlockIndex::new(blk));
            }
        }
    }

    #[test]
    fn block_base_aligns_down() {
        let a = PhysAddr::new(0x1234_5678);
        assert_eq!(a.block_base().as_u64() % BLOCK_SIZE, 0);
        assert!(a.as_u64() - a.block_base().as_u64() < BLOCK_SIZE);
    }

    #[test]
    fn segment_mapping_matches_static_channel_slicing() {
        // Blocks 0..16 -> segment/channel 0, 16..32 -> 1, etc.
        assert_eq!(BlockIndex::new(0).segment().as_usize(), 0);
        assert_eq!(BlockIndex::new(15).segment().as_usize(), 0);
        assert_eq!(BlockIndex::new(16).segment().as_usize(), 1);
        assert_eq!(BlockIndex::new(47).segment().as_usize(), 2);
        assert_eq!(BlockIndex::new(63).segment().as_usize(), 3);
        assert_eq!(BlockIndex::new(17).index_in_segment(), 1);
    }

    #[test]
    fn channel_follows_segment() {
        for blk in 0..BLOCKS_PER_PAGE {
            let a = PhysAddr::from_parts(PageNum::new(42), BlockIndex::new(blk));
            assert_eq!(a.channel().as_usize(), blk / BLOCKS_PER_SEGMENT);
        }
    }

    #[test]
    fn segment_block_round_trip() {
        for seg in 0..NUM_CHANNELS {
            for pos in 0..BLOCKS_PER_SEGMENT {
                let b = SegmentIndex::new(seg).block(pos);
                assert_eq!(b.segment().as_usize(), seg);
                assert_eq!(b.index_in_segment(), pos);
            }
        }
    }

    #[test]
    fn page_distance_is_symmetric() {
        let a = PageNum::new(100);
        let b = PageNum::new(164);
        assert_eq!(a.distance(b), 64);
        assert_eq!(b.distance(a), 64);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn page_offset_saturates_at_zero() {
        assert_eq!(PageNum::new(3).offset(-5), PageNum::new(0));
        assert_eq!(PageNum::new(3).offset(5), PageNum::new(8));
    }

    #[test]
    fn cycle_arithmetic() {
        let t0 = Cycle::new(100);
        let t1 = t0 + 50;
        assert_eq!(t1.since(t0), 50);
        assert_eq!(t0.since(t1), 0);
        assert_eq!(t1 - t0, 50);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_index_rejects_out_of_range() {
        let _ = BlockIndex::new(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_rejects_out_of_range() {
        let _ = ChannelId::new(4);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", PhysAddr::new(0xabc)).is_empty());
        assert!(!format!("{}", PageNum::new(1)).is_empty());
        assert!(!format!("{}", BlockIndex::new(2)).is_empty());
        assert!(!format!("{}", SegmentIndex::new(3)).is_empty());
        assert!(!format!("{}", ChannelId::new(1)).is_empty());
        assert!(!format!("{}", Cycle::new(9)).is_empty());
    }
}
