//! Prefetch request records produced by prefetchers.

use core::fmt;

use crate::{Cycle, DeviceId, PhysAddr};

/// Which (sub-)prefetcher generated a request.
///
/// The simulator tags every prefetch with its origin so that the paper's
/// Figure 9 breakdown (SLP vs TLP contribution) can be measured directly on
/// the full composite prefetcher rather than only via ablation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PrefetchOrigin {
    /// The self-learning (intra-page) sub-prefetcher.
    Slp,
    /// The transfer-learning (inter-page) sub-prefetcher.
    Tlp,
    /// A monolithic baseline prefetcher (BOP, SPP, stride, ...).
    Baseline,
}

impl fmt::Display for PrefetchOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrefetchOrigin::Slp => "SLP",
            PrefetchOrigin::Tlp => "TLP",
            PrefetchOrigin::Baseline => "baseline",
        })
    }
}

/// A block-granular prefetch request.
///
/// Addresses are always block-aligned; constructing a request aligns the
/// address down to its 64 B block boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefetchRequest {
    /// Block-aligned target address.
    pub addr: PhysAddr,
    /// Which sub-prefetcher produced the request.
    pub origin: PrefetchOrigin,
    /// The cycle of the demand access that triggered this prefetch.
    pub triggered_at: Cycle,
    /// The device whose demand access triggered this prefetch.
    ///
    /// Prefetchers construct requests with the default device; the memory
    /// system stamps the true trigger device centrally (every request in a
    /// batch comes from the access currently being processed), so per-device
    /// attribution needs no plumbing through the prefetcher implementations.
    pub device: DeviceId,
}

impl PrefetchRequest {
    /// Creates a prefetch request, aligning `addr` to its block base. The
    /// trigger device starts at [`DeviceId::default`]; the simulator
    /// overwrites it with the device of the triggering demand access.
    pub const fn new(addr: PhysAddr, origin: PrefetchOrigin, triggered_at: Cycle) -> Self {
        Self { addr: addr.block_base(), origin, triggered_at, device: DeviceId::Cpu(0) }
    }
}

impl fmt::Display for PrefetchRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PF[{}] {} @{}", self.origin, self.addr, self.triggered_at.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_aligns_to_block() {
        let r = PrefetchRequest::new(PhysAddr::new(0x1047), PrefetchOrigin::Slp, Cycle::new(5));
        assert_eq!(r.addr.as_u64(), 0x1040);
        assert_eq!(r.origin, PrefetchOrigin::Slp);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn origin_display() {
        assert_eq!(PrefetchOrigin::Slp.to_string(), "SLP");
        assert_eq!(PrefetchOrigin::Tlp.to_string(), "TLP");
        assert_eq!(PrefetchOrigin::Baseline.to_string(), "baseline");
    }
}
