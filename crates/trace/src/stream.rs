//! Pull-based access streaming: render or replay traces chunk-at-a-time.
//!
//! Every trace consumer in the workspace ultimately wants an ordered
//! sequence of [`MemAccess`] values. Materializing that sequence as a
//! `Vec` caps experiments at whatever fits in RAM; this module defines the
//! [`AccessStream`] abstraction that decouples *production* of the
//! sequence from *consumption*, so the engine can simulate hundreds of
//! millions of accesses in constant memory:
//!
//! * [`WorkloadStream`] renders a [`WorkloadSpec`] on demand from its
//!   seeds (see [`WorkloadSpec::stream`]) — bit-identical to
//!   [`WorkloadSpec::build`].
//! * [`TraceStream`] adapts an in-memory [`Trace`] (see
//!   [`Trace::stream`]), so every streamed code path also accepts
//!   materialized traces.
//! * [`crate::io::ChunkedTraceReader`] replays the on-disk
//!   `planaria-trace-v1` format documented in `TRACE_FORMAT.md`.
//!
//! # The chunk-determinism contract
//!
//! An [`AccessStream`] yields a single well-defined access sequence. The
//! chunk sizes a consumer asks for are *not* part of that sequence:
//! concatenating the chunks of any `next_chunk` schedule must produce the
//! identical sequence (pinned by `tests/streaming.rs`). Streams buffer at
//! most one chunk of internal state — no hidden whole-trace buffering —
//! which is what keeps the engine's steady-state memory flat.

use planaria_common::MemAccess;

use crate::io::ParseTraceError;
use crate::synth::ComponentGen;
use crate::{Trace, WorkloadSpec};

/// A pull-based, deterministic source of memory accesses.
///
/// Implementations yield the accesses of one workload in arrival
/// (cycle-sorted) order, a chunk at a time. The sequence is a pure
/// function of the stream's construction — rewinding is done by
/// constructing a fresh stream, and two streams built the same way yield
/// bit-identical sequences regardless of the chunk sizes requested.
///
/// # Errors
///
/// `next_chunk` is infallible so the simulation loops stay `Result`-free;
/// a source that can fail mid-stream (e.g. a corrupt on-disk trace)
/// instead ends the stream early and latches the failure in
/// [`AccessStream::error`]. Consumers must check `error()` once a stream
/// is exhausted and fail loudly — treating a truncated replay as a short
/// workload would silently skew every derived metric.
///
/// # Examples
///
/// ```
/// use planaria_trace::stream::AccessStream;
/// use planaria_trace::apps::{profile, AppId};
///
/// let spec = profile(AppId::HoK).scaled(10_000);
/// let mut stream = spec.stream();
/// assert_eq!(stream.total_len(), Some(10_000));
///
/// let mut chunk = Vec::new();
/// let mut total = 0;
/// while stream.next_chunk(4096, &mut chunk) > 0 {
///     total += chunk.len();
/// }
/// assert_eq!(total, 10_000);
/// assert!(stream.error().is_none());
/// ```
pub trait AccessStream {
    /// The workload name (used for result labelling, like [`Trace::name`]).
    fn name(&self) -> &str;

    /// Total number of accesses the stream will yield, when known up
    /// front.
    ///
    /// Synthetic and packed-file streams know their length; `None` is
    /// reserved for open-ended sources. Consumers that need the length
    /// (e.g. warmup-fraction accounting) must reject `None` rather than
    /// guess.
    fn total_len(&self) -> Option<u64>;

    /// Clears `out`, fills it with up to `max` next accesses, and returns
    /// how many were produced.
    ///
    /// Returns `0` only on exhaustion (or a latched error), and keeps
    /// returning `0` from then on. `max` must be positive; chunks are
    /// never empty mid-stream.
    fn next_chunk(&mut self, max: usize, out: &mut Vec<MemAccess>) -> usize;

    /// The failure that ended the stream early, if any.
    ///
    /// `None` while the stream is live and after a clean end-of-stream.
    fn error(&self) -> Option<&ParseTraceError> {
        None
    }
}

/// Borrowing [`AccessStream`] adapter over an in-memory [`Trace`].
///
/// See [`Trace::stream`]; this is what lets materialized traces flow
/// through streamed code paths with identical results.
#[derive(Debug)]
pub struct TraceStream<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl Trace {
    /// Returns a stream yielding this trace's accesses in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_trace::stream::AccessStream;
    /// use planaria_trace::apps::{profile, AppId};
    ///
    /// let trace = profile(AppId::Cfm).scaled(1_000).build();
    /// let mut stream = trace.stream();
    /// let mut chunk = Vec::new();
    /// assert_eq!(stream.next_chunk(300, &mut chunk), 300);
    /// assert_eq!(chunk, trace.accesses()[..300]);
    /// ```
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream { trace: self, pos: 0 }
    }
}

impl AccessStream for TraceStream<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn total_len(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }

    fn next_chunk(&mut self, max: usize, out: &mut Vec<MemAccess>) -> usize {
        out.clear();
        let n = max.min(self.trace.len() - self.pos);
        out.extend_from_slice(&self.trace.accesses()[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// One component's progress inside a [`WorkloadStream`].
struct CompState {
    gen: ComponentGen,
    /// Accesses of the component's share still to be drawn after `head`.
    remaining: usize,
    /// The component's next (not yet merged) access.
    head: Option<MemAccess>,
}

/// Streaming renderer of a [`WorkloadSpec`] (see [`WorkloadSpec::stream`]).
///
/// Runs every component's generator concurrently and merges their
/// per-component timelines in arrival order, exactly reproducing
/// [`WorkloadSpec::build`]: the bulk path concatenates whole component
/// shares and stable-sorts by cycle, and since each component's timeline
/// is strictly increasing, that stable sort equals a k-way merge keyed on
/// `(cycle, component index)` — which is what this stream performs, in
/// O(components) memory.
pub struct WorkloadStream {
    name: String,
    length: u64,
    emitted: u64,
    comps: Vec<CompState>,
}

impl WorkloadStream {
    /// Creates the stream; see [`WorkloadSpec::stream`].
    ///
    /// # Panics
    ///
    /// Panics if the spec has no components.
    pub(crate) fn new(spec: &WorkloadSpec) -> Self {
        let comps = spec
            .plans()
            .into_iter()
            .map(|plan| {
                let mut gen = plan.spec.generator(plan.seed, plan.region_base);
                // Shares are always positive (the bulk path overshoots each
                // share by 16), so the first head draw is unconditional.
                let head = Some(gen.next_access());
                CompState { gen, remaining: plan.share - 1, head }
            })
            .collect();
        Self { name: spec.abbr.clone(), length: spec.length as u64, emitted: 0, comps }
    }
}

impl AccessStream for WorkloadStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn total_len(&self) -> Option<u64> {
        Some(self.length)
    }

    fn next_chunk(&mut self, max: usize, out: &mut Vec<MemAccess>) -> usize {
        out.clear();
        let want = max.min((self.length - self.emitted) as usize);
        out.reserve(want);
        for _ in 0..want {
            // Earliest head wins; ties go to the lowest component index,
            // matching the bulk path's stable sort over concatenated
            // shares.
            let mut best: Option<usize> = None;
            for (i, c) in self.comps.iter().enumerate() {
                let Some(h) = &c.head else { continue };
                match best {
                    Some(b) if self.comps[b].head.expect("best head set").cycle <= h.cycle => {}
                    _ => best = Some(i),
                }
            }
            let Some(b) = best else { break };
            let c = &mut self.comps[b];
            let access = c.head.take().expect("selected head present");
            if c.remaining > 0 {
                c.remaining -= 1;
                c.head = Some(c.gen.next_access());
            }
            out.push(access);
            self.emitted += 1;
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{profile, AppId};

    /// Concatenates a stream's chunks under the given `max` schedule.
    fn drain(stream: &mut dyn AccessStream, max: usize) -> Vec<MemAccess> {
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while stream.next_chunk(max, &mut chunk) > 0 {
            assert!(chunk.len() <= max, "chunk exceeded requested max");
            all.extend_from_slice(&chunk);
        }
        // Exhaustion is permanent.
        assert_eq!(stream.next_chunk(max, &mut chunk), 0);
        all
    }

    #[test]
    fn workload_stream_matches_build_for_every_app() {
        for app in AppId::ALL {
            let spec = profile(app).scaled(5_000);
            let built = spec.build();
            let streamed = drain(&mut spec.stream(), 1024);
            assert_eq!(streamed, built.accesses(), "{app:?} diverged");
        }
    }

    #[test]
    fn workload_stream_is_chunk_size_independent() {
        let spec = profile(AppId::Qsm).scaled(3_000);
        let whole = drain(&mut spec.stream(), 3_000);
        for max in [1usize, 7, 256, 4096] {
            assert_eq!(drain(&mut spec.stream(), max), whole, "chunk max {max} diverged");
        }
    }

    #[test]
    fn trace_stream_replays_accesses_verbatim() {
        let trace = profile(AppId::TikT).scaled(2_000).build();
        let mut s = trace.stream();
        assert_eq!(s.name(), trace.name());
        assert_eq!(s.total_len(), Some(2_000));
        assert_eq!(drain(&mut s, 333), trace.accesses());
    }

    #[test]
    fn empty_trace_stream_is_immediately_exhausted() {
        let trace = Trace::empty("e");
        let mut s = trace.stream();
        let mut chunk = vec![MemAccess::read(
            planaria_common::PhysAddr::new(0x40),
            planaria_common::Cycle::ZERO,
        )];
        assert_eq!(s.next_chunk(16, &mut chunk), 0);
        assert!(chunk.is_empty(), "next_chunk must clear the buffer even at exhaustion");
        assert!(s.error().is_none());
    }
}
