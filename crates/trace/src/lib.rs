//! Memory-bus traces and synthetic mobile workloads.
//!
//! The Planaria paper evaluates on memory-bus traces captured from a physical
//! mobile phone running ten commercial applications (Table 2). Those traces
//! are proprietary, so this crate provides a faithful *synthetic* substitute:
//! parameterised generators that reproduce the two access regularities the
//! paper identifies and measures —
//!
//! 1. **Intra-page footprint snapshots** (Observation 1, Figures 2 and 4):
//!    a stable group of blocks in a page is re-accessed together, in
//!    non-deterministic order, with long reuse distance between visits.
//! 2. **Inter-page pattern similarity** (Observation 2, Figure 5): pages
//!    close in address space often share similar footprints.
//!
//! plus the background traffic classes a system cache really sees (GPU
//! streaming, strided DMA, irregular pointer-chasing), which is what the
//! delta-based baselines BOP and SPP exploit or choke on.
//!
//! Entry points:
//!
//! * [`Trace`] — an in-memory trace with summary statistics.
//! * [`WorkloadSpec`] — a deterministic, seeded description of a workload as
//!   a weighted mix of [`synth`] components; [`WorkloadSpec::build`] renders
//!   it into a [`Trace`].
//! * [`apps`] — the ten per-application profiles standing in for Table 2.
//! * [`stream`] — pull-based [`stream::AccessStream`] chunked rendering
//!   and replay, for runs too large to materialize
//!   ([`WorkloadSpec::stream`], [`Trace::stream`]).
//! * [`io`] — text and binary serialisation of traces, including the
//!   chunked on-disk `planaria-trace-v1` format (see `TRACE_FORMAT.md`).
//! * [`filter`] — per-device private-cache filtering for users bringing
//!   raw core-side traces (the SC only sees what the upper levels miss).
//!
//! # Examples
//!
//! ```
//! use planaria_trace::apps::{self, AppId};
//!
//! // A scaled-down Honor-of-Kings-like trace (deterministic for a seed).
//! let trace = apps::profile(AppId::HoK).scaled(10_000).build();
//! assert_eq!(trace.len(), trace.accesses().len());
//! assert!(trace.unique_pages() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod filter;
pub mod io;
pub mod stream;
pub mod synth;
mod trace;

pub use stream::{AccessStream, TraceStream, WorkloadStream};
pub use synth::{ComponentSpec, WeightedComponent, WorkloadSpec};
pub use trace::{DeviceStream, Trace, TraceSummary};
