//! The ten target applications of the paper's Table 2.
//!
//! The paper evaluates on memory traces of ten top-chart mobile apps
//! captured on a physical phone. Those traces are proprietary, so each app
//! is represented here by a [`WorkloadSpec`] whose component mix reproduces
//! the app's *measured characteristics* from the paper:
//!
//! * every app's footprint-snapshot overlap rate is above 80% (Figure 4),
//!   with per-app levels spread over ≈85–97%;
//! * the learnable-neighbour fraction varies per app (Figure 5);
//! * CFM, QSM, HI3, KO and NBA2 are SLP-dominated while Fort is
//!   TLP-dominated (Figure 9) — encoded as revisited-footprint-heavy vs
//!   one-shot-neighbour-heavy mixes;
//! * NBA2 and PM carry a large irregular share, which is what makes BOP's
//!   aggressive traffic counter-productive on them (Figure 7/8 discussion).
//!
//! Trace lengths default to the paper's Table 2 access counts (millions);
//! use [`WorkloadSpec::scaled`] for faster, shape-preserving runs.

use planaria_common::DeviceId;

use crate::synth::{Envelope, FootprintSpec, NeighborSpec, RandomSpec, StreamSpec, StrideSpec};
use crate::{ComponentSpec, WorkloadSpec};

/// Identifiers for the ten Table 2 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AppId {
    /// Cross Fire Mobile — first-person shooter.
    Cfm,
    /// Honor of Kings — multiplayer MOBA.
    HoK,
    /// Identity V — asymmetric battle arena.
    IdV,
    /// QQ Speed Mobile — 3D racing game.
    Qsm,
    /// TikTok — short-video sharing app.
    TikT,
    /// Fortnite — multiplayer battle royale.
    Fort,
    /// Honkai Impact 3 — 3D action game.
    Hi3,
    /// Knives Out — multiplayer battle royale.
    Ko,
    /// NBA 2K19 — basketball game.
    Nba2,
    /// PUBG Mobile — multiplayer battle royale.
    Pm,
}

impl AppId {
    /// All ten applications in Table 2 order.
    pub const ALL: [AppId; 10] = [
        AppId::Cfm,
        AppId::HoK,
        AppId::IdV,
        AppId::Qsm,
        AppId::TikT,
        AppId::Fort,
        AppId::Hi3,
        AppId::Ko,
        AppId::Nba2,
        AppId::Pm,
    ];

    /// The figure abbreviation (Table 2 "Abbr." column).
    pub const fn abbr(self) -> &'static str {
        match self {
            AppId::Cfm => "CFM",
            AppId::HoK => "HoK",
            AppId::IdV => "Id-V",
            AppId::Qsm => "QSM",
            AppId::TikT => "TikT",
            AppId::Fort => "Fort",
            AppId::Hi3 => "HI3",
            AppId::Ko => "KO",
            AppId::Nba2 => "NBA2",
            AppId::Pm => "PM",
        }
    }

    /// The full application name.
    pub const fn name(self) -> &'static str {
        match self {
            AppId::Cfm => "Cross Fire Mobile",
            AppId::HoK => "Honor of Kings",
            AppId::IdV => "Identity V",
            AppId::Qsm => "QQ Speed Mobile",
            AppId::TikT => "TikTok",
            AppId::Fort => "Fortnite",
            AppId::Hi3 => "Honkai Impact 3",
            AppId::Ko => "Knives Out",
            AppId::Nba2 => "NBA 2K19",
            AppId::Pm => "PUBG Mobile",
        }
    }

    /// Short description (Table 2 "Description" column).
    pub const fn description(self) -> &'static str {
        match self {
            AppId::Cfm => "First-person shooter",
            AppId::HoK => "Multiplayer MOBA",
            AppId::IdV => "Asymmetric battle arena",
            AppId::Qsm => "3D racing mobile game",
            AppId::TikT => "Short video sharing app",
            AppId::Fort => "Multiplayer battle royale",
            AppId::Hi3 => "3D action game",
            AppId::Ko => "Multiplayer battle royale",
            AppId::Nba2 => "Basketball game",
            AppId::Pm => "Multiplayer battle royale",
        }
    }

    /// The paper's trace length in millions of accesses (Table 2).
    pub const fn paper_length_m(self) -> f64 {
        match self {
            AppId::Cfm => 67.48,
            AppId::HoK => 71.37,
            AppId::IdV => 68.27,
            AppId::Qsm => 69.45,
            AppId::TikT => 70.82,
            AppId::Fort => 66.71,
            AppId::Hi3 => 67.65,
            AppId::Ko => 68.00,
            AppId::Nba2 => 67.71,
            AppId::Pm => 67.71,
        }
    }

    /// Per-app memory-boundedness used by the analytic IPC model: the
    /// fraction of execution time that scales with AMAT. The paper's
    /// headline pair (IPC +28.9% from AMAT −24.3%) implies the targeted
    /// mobile apps are heavily memory-bound (intensity ≈ 0.9), consistent
    /// with its premise that memory dominates the phone's user experience.
    pub const fn mem_intensity(self) -> f64 {
        match self {
            AppId::Cfm => 0.90,
            AppId::HoK => 0.92,
            AppId::IdV => 0.90,
            AppId::Qsm => 0.88,
            AppId::TikT => 0.93,
            AppId::Fort => 0.91,
            AppId::Hi3 => 0.90,
            AppId::Ko => 0.91,
            AppId::Nba2 => 0.93,
            AppId::Pm => 0.92,
        }
    }
}

/// Per-app workload-mix parameters (see module docs for the rationale).
struct MixParams {
    footprint_w: f64,
    neighbor_w: f64,
    stream_w: f64,
    stride_w: f64,
    random_w: f64,
    /// Footprint pool size in pages (working-set knob).
    pool_pages: usize,
    /// Snapshot mutation probability (Figure 4 overlap knob).
    mutation_prob: f64,
    /// Blocks swapped per mutation.
    mutation_bits: usize,
    /// Pages per neighbour cluster (Figure 5 knob).
    cluster_span: usize,
    /// Per-page bitmap noise within a cluster.
    noise_bits: usize,
    /// Random-pool pages (irregular working set).
    random_pages: usize,
}

fn mix(app: AppId) -> MixParams {
    use AppId::*;
    match app {
        // SLP-dominated apps: large revisited footprint pools (well beyond
        // the 4 MB SC, so revisits are capacity misses), very stable
        // snapshots, small one-shot-neighbour share.
        Cfm => MixParams {
            footprint_w: 0.70,
            neighbor_w: 0.05,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.12,
            pool_pages: 6144,
            mutation_prob: 0.30,
            mutation_bits: 2,
            cluster_span: 8,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        Qsm => MixParams {
            footprint_w: 0.66,
            neighbor_w: 0.06,
            stream_w: 0.10,
            stride_w: 0.06,
            random_w: 0.12,
            pool_pages: 6144,
            mutation_prob: 0.40,
            mutation_bits: 2,
            cluster_span: 8,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        Hi3 => MixParams {
            footprint_w: 0.72,
            neighbor_w: 0.05,
            stream_w: 0.06,
            stride_w: 0.05,
            random_w: 0.12,
            pool_pages: 6144,
            mutation_prob: 0.25,
            mutation_bits: 2,
            cluster_span: 8,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        Ko => MixParams {
            footprint_w: 0.62,
            neighbor_w: 0.08,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.17,
            pool_pages: 8192,
            mutation_prob: 0.50,
            mutation_bits: 2,
            cluster_span: 12,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        Nba2 => MixParams {
            footprint_w: 0.56,
            neighbor_w: 0.05,
            stream_w: 0.05,
            stride_w: 0.05,
            random_w: 0.29,
            pool_pages: 10240,
            mutation_prob: 0.60,
            mutation_bits: 2,
            cluster_span: 8,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        // Mixed apps.
        HoK => MixParams {
            footprint_w: 0.62,
            neighbor_w: 0.08,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.17,
            pool_pages: 8192,
            mutation_prob: 0.50,
            mutation_bits: 2,
            cluster_span: 16,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        IdV => MixParams {
            footprint_w: 0.57,
            neighbor_w: 0.11,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.19,
            pool_pages: 8192,
            mutation_prob: 0.60,
            mutation_bits: 2,
            cluster_span: 16,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        TikT => MixParams {
            footprint_w: 0.64,
            neighbor_w: 0.08,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.15,
            pool_pages: 10240,
            mutation_prob: 0.80,
            mutation_bits: 2,
            cluster_span: 16,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        // TLP-dominated: mostly one-shot neighbouring pages, SLP has little
        // history to work with.
        Fort => MixParams {
            footprint_w: 0.15,
            neighbor_w: 0.55,
            stream_w: 0.08,
            stride_w: 0.05,
            random_w: 0.17,
            pool_pages: 4096,
            mutation_prob: 0.90,
            mutation_bits: 3,
            cluster_span: 24,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
        // Irregular-heavy: BOP's extra traffic backfires here (Figure 7/8).
        Pm => MixParams {
            footprint_w: 0.52,
            neighbor_w: 0.10,
            stream_w: 0.04,
            stride_w: 0.05,
            random_w: 0.29,
            pool_pages: 10240,
            mutation_prob: 0.70,
            mutation_bits: 2,
            cluster_span: 12,
            noise_bits: 1,
            random_pages: 1 << 14,
        },
    }
}

/// Builds the [`WorkloadSpec`] for one Table 2 application.
///
/// The spec's default length is the paper's full trace length; call
/// [`WorkloadSpec::scaled`] to shrink it for fast runs.
///
/// # Examples
///
/// ```
/// use planaria_trace::apps::{profile, AppId};
///
/// let spec = profile(AppId::Fort);
/// assert_eq!(spec.abbr, "Fort");
/// let trace = spec.scaled(20_000).build();
/// assert_eq!(trace.len(), 20_000);
/// ```
pub fn profile(app: AppId) -> WorkloadSpec {
    let m = mix(app);
    let seed = 0x504C_414E_u64 // "PLAN"
        .wrapping_mul(31)
        .wrapping_add(app as u64 + 1);
    let length = (app.paper_length_m() * 1_000_000.0) as usize;

    // Every component spans the whole trace: its mean access period is the
    // overall bus period divided by its weight. The overall demand rate
    // (one access per `BUS_PERIOD` cycles) keeps the 4-channel LPDDR4
    // moderately loaded, so extra prefetch traffic shows up as queueing —
    // the mechanism behind the paper's Fort/NBA2/PM observations.
    const BUS_PERIOD: f64 = 18.0;
    let period = |w: f64| BUS_PERIOD / w;
    // Footprint/neighbour visits keep tight intra-visit bursts (timeliness
    // pressure on one-step-lookahead prefetchers); the inter-visit gap
    // absorbs the rest of the component's period budget.
    let fp_intra = 30u64;
    let fp_inter = ((period(m.footprint_w) - fp_intra as f64) * 16.0).max(16.0) as u64;
    let nb_intra = 35u64;
    let nb_inter = ((period(m.neighbor_w) - nb_intra as f64) * 16.0).max(16.0) as u64;

    WorkloadSpec::new(app.name(), app.abbr(), seed, length)
        .with(
            m.footprint_w,
            ComponentSpec::Footprint(FootprintSpec {
                pages: m.pool_pages,
                footprint_blocks: 16,
                mutation_prob: m.mutation_prob,
                mutation_bits: m.mutation_bits,
                intra_gap: fp_intra,
                inter_gap: fp_inter,
                page_spread: 131,
                envelope: Envelope { device: DeviceId::Cpu(0), read_ratio: 0.8 },
            }),
        )
        .with(
            m.neighbor_w,
            ComponentSpec::Neighbor(NeighborSpec {
                cluster_span: m.cluster_span,
                cluster_gap: 40,
                footprint_blocks: 16,
                noise_bits: m.noise_bits,
                revisits: 1,
                page_spacing_max: 24,
                intra_gap: nb_intra,
                inter_gap: nb_inter,
                envelope: Envelope { device: DeviceId::Cpu(2), read_ratio: 0.8 },
            }),
        )
        .with(
            m.stream_w,
            ComponentSpec::Stream(StreamSpec {
                run_blocks: 96,
                gap: period(m.stream_w) as u64,
                run_gap: 4 * period(m.stream_w) as u64,
                envelope: Envelope { device: DeviceId::Gpu, read_ratio: 0.7 },
            }),
        )
        .with(
            m.stride_w,
            ComponentSpec::Stride(StrideSpec {
                stride_blocks: 4,
                run_len: 128,
                gap: period(m.stride_w) as u64,
                run_gap: 4 * period(m.stride_w) as u64,
                envelope: Envelope { device: DeviceId::Dsp, read_ratio: 0.85 },
            }),
        )
        .with(
            m.random_w,
            ComponentSpec::Random(RandomSpec {
                pages: m.random_pages,
                gap: period(m.random_w) as u64,
                page_spread: 131,
                envelope: Envelope { device: DeviceId::Cpu(1), read_ratio: 0.75 },
            }),
        )
}

/// Builds all ten application specs in Table 2 order.
pub fn all_profiles() -> Vec<WorkloadSpec> {
    AppId::ALL.iter().map(|&a| profile(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_apps_with_table2_metadata() {
        assert_eq!(AppId::ALL.len(), 10);
        for app in AppId::ALL {
            assert!(!app.abbr().is_empty());
            assert!(!app.name().is_empty());
            assert!(!app.description().is_empty());
            assert!(app.paper_length_m() > 60.0 && app.paper_length_m() < 75.0);
            let mi = app.mem_intensity();
            assert!(mi > 0.0 && mi < 1.0);
        }
    }

    #[test]
    fn profiles_build_and_are_deterministic() {
        for app in [AppId::Cfm, AppId::Fort, AppId::TikT] {
            let a = profile(app).scaled(5_000).build();
            let b = profile(app).scaled(5_000).build();
            assert_eq!(a.accesses(), b.accesses(), "{}", app.abbr());
            assert_eq!(a.len(), 5_000);
        }
    }

    #[test]
    fn profiles_differ_across_apps() {
        let a = profile(AppId::Cfm).scaled(3_000).build();
        let b = profile(AppId::HoK).scaled(3_000).build();
        assert_ne!(a.accesses(), b.accesses());
    }

    #[test]
    fn default_lengths_match_table2() {
        assert_eq!(profile(AppId::Cfm).length, 67_480_000);
        assert_eq!(profile(AppId::HoK).length, 71_370_000);
    }

    #[test]
    fn weights_sum_to_one_ish() {
        for app in AppId::ALL {
            let m = mix(app);
            let sum = m.footprint_w + m.neighbor_w + m.stream_w + m.stride_w + m.random_w;
            assert!((sum - 1.0).abs() < 1e-9, "{} weights sum to {sum}", app.abbr());
        }
    }

    #[test]
    fn fort_is_neighbor_dominated() {
        let m = mix(AppId::Fort);
        assert!(m.neighbor_w > m.footprint_w);
        for app in [AppId::Cfm, AppId::Qsm, AppId::Hi3, AppId::Ko, AppId::Nba2] {
            let m = mix(app);
            assert!(m.footprint_w > m.neighbor_w, "{} should be SLP-leaning", app.abbr());
        }
    }

    #[test]
    fn all_profiles_returns_table_order() {
        let all = all_profiles();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].abbr, "CFM");
        assert_eq!(all[9].abbr, "PM");
    }
}
