//! `trace_pack` — record, convert and inspect chunked `planaria-trace-v1`
//! files (the streaming replay format; byte layout in `TRACE_FORMAT.md`).
//!
//! ```text
//! trace_pack record --app HoK --len 10000000 --out hok.ptrace
//! trace_pack convert hok.bin hok.ptrace
//! trace_pack info hok.ptrace
//! ```
//!
//! `record` renders the app's synthetic workload straight to disk through
//! the streaming generators — memory use is independent of `--len`, so
//! packing 100M+ access traces is routine. `convert` re-encodes a legacy
//! `.bin`/text trace (materialized, the legacy format is not chunked) or
//! stream-copies an existing v1 file. `info` replays a v1 file in constant
//! memory and prints its header and per-device histogram.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::path::Path;
use std::process::ExitCode;

use planaria_trace::apps::{profile, AppId};
use planaria_trace::io::{ChunkedTraceReader, ChunkedTraceWriter};
use planaria_trace::stream::AccessStream;
use planaria_trace::{io, Trace};

/// Accesses moved per `next_chunk`/`write_chunk` round.
const COPY_CHUNK: usize = 65_536;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_pack record --app <ABBR> --len <N> --out <FILE> [--seed <S>]\n  \
         trace_pack convert <IN> <OUT>\n  trace_pack info <FILE>\n\n\
         apps: {}",
        AppId::ALL.map(|a| a.abbr()).join(", ")
    );
    ExitCode::from(2)
}

/// Returns `true` if the file starts with the v1 chunk magic.
fn sniff_v1(path: &Path) -> Result<bool, String> {
    let mut file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut magic = [0u8; 8];
    let n = file.read(&mut magic).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(n == 8 && &magic == b"PLNTRACE")
}

/// Drains `stream` into a v1 file at `out`, in constant memory.
fn pack_stream(stream: &mut dyn AccessStream, out: &Path) -> Result<u64, String> {
    let total = stream.total_len().ok_or("cannot pack a stream of unknown length")?;
    let file = File::create(out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let name = stream.name().to_string();
    let mut writer = ChunkedTraceWriter::new(BufWriter::new(file), &name, total)
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    let mut chunk = Vec::new();
    while stream.next_chunk(COPY_CHUNK, &mut chunk) > 0 {
        writer.write_chunk(&chunk).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    if let Some(e) = stream.error() {
        return Err(format!("input stream failed: {e}"));
    }
    writer.finish().map_err(|e| format!("write {}: {e}", out.display()))?;
    Ok(total)
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let mut app = None;
    let mut len = None;
    let mut out = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => {
                let v = it.next().ok_or("--app needs a value")?;
                app = Some(
                    AppId::ALL
                        .into_iter()
                        .find(|x| x.abbr().eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown app {v:?}"))?,
                );
            }
            "--len" => {
                let v = it.next().ok_or("--len needs a value")?;
                len = Some(v.replace('_', "").parse::<usize>().map_err(|e| e.to_string())?);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e: std::num::ParseIntError| e.to_string())?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let app = app.ok_or("--app is required")?;
    let len = len.ok_or("--len is required")?;
    let out = out.ok_or("--out is required")?;
    let mut spec = profile(app).scaled(len);
    if let Some(s) = seed {
        spec.seed = s;
    }
    let total = pack_stream(&mut spec.stream(), Path::new(&out))?;
    println!("wrote {out} — {} ({total} accesses, streamed)", spec.abbr);
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else { return Err("convert needs <IN> <OUT>".into()) };
    let in_path = Path::new(input);
    let out_path = Path::new(output);
    let total = if sniff_v1(in_path)? {
        // v1 → v1: stream-copy, constant memory.
        let file = File::open(in_path).map_err(|e| format!("open {input}: {e}"))?;
        let mut reader = ChunkedTraceReader::new(BufReader::new(file))
            .map_err(|e| format!("parse {input}: {e}"))?;
        pack_stream(&mut reader, out_path)?
    } else {
        // Legacy binary/text → v1: the legacy formats are not chunked, so
        // the input is materialized once.
        let name = in_path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace").to_string();
        let file = File::open(in_path).map_err(|e| format!("open {input}: {e}"))?;
        let reader = BufReader::new(file);
        let trace: Trace = if in_path.extension().is_some_and(|e| e == "bin") {
            io::read_binary(name, reader)
        } else {
            io::read_text(name, reader)
        }
        .map_err(|e| format!("parse {input}: {e}"))?;
        pack_stream(&mut trace.stream(), out_path)?
    };
    println!("converted {input} -> {output} ({total} accesses)");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut reader =
        ChunkedTraceReader::new(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))?;
    // Stream the whole file, aggregating summary stats in constant memory.
    let mut devices: BTreeMap<String, usize> = BTreeMap::new();
    let mut reads = 0u64;
    let mut count = 0u64;
    let mut first_cycle = None;
    let mut last_cycle = 0u64;
    let mut chunk = Vec::new();
    while reader.next_chunk(COPY_CHUNK, &mut chunk) > 0 {
        for a in &chunk {
            *devices.entry(a.device.to_string()).or_default() += 1;
            reads += u64::from(a.kind.is_read());
            first_cycle.get_or_insert(a.cycle.as_u64());
            last_cycle = a.cycle.as_u64();
        }
        count += chunk.len() as u64;
    }
    if let Some(e) = reader.error() {
        return Err(format!("parse {path}: {e}"));
    }
    let duration = last_cycle - first_cycle.unwrap_or(0);
    println!(
        "{}: {count} accesses, {duration} cycles, {:.1}% reads (planaria-trace-v1)",
        reader.name(),
        reads as f64 / count.max(1) as f64 * 100.0
    );
    for (d, n) in devices {
        println!("  {d:<5} {n:>10} ({:.1}%)", n as f64 / count.max(1) as f64 * 100.0);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { return usage() };
    let result = match cmd.as_str() {
        "record" => cmd_record(rest),
        "convert" => cmd_convert(rest),
        "info" => cmd_info(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
