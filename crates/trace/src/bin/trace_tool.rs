//! `trace_tool` — generate, inspect and convert Planaria memory traces.
//!
//! ```text
//! trace_tool generate --app HoK --len 100000 --out hok.bin
//! trace_tool generate --app Fort --len 50000 --out fort.trace --text
//! trace_tool info hok.bin
//! trace_tool convert hok.bin hok.trace
//! ```
//!
//! Formats are selected by extension: `.bin` is the compact binary format,
//! anything else is the human-readable text format.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;

use planaria_trace::apps::{profile, AppId};
use planaria_trace::{io, Trace};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool generate --app <ABBR> --len <N> --out <FILE> [--seed <S>]\n  \
         trace_tool info <FILE>\n  trace_tool convert <IN> <OUT>\n\n\
         apps: {}",
        AppId::ALL.map(|a| a.abbr()).join(", ")
    );
    ExitCode::from(2)
}

fn is_binary(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "bin")
}

fn load(path: &Path) -> Result<Trace, String> {
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace").to_string();
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let result =
        if is_binary(path) { io::read_binary(name, reader) } else { io::read_text(name, reader) };
    result.map_err(|e| format!("parse {}: {e}", path.display()))
}

fn store(trace: &Trace, path: &Path) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let writer = BufWriter::new(file);
    let result = if is_binary(path) {
        io::write_binary(trace, writer)
    } else {
        io::write_text(trace, writer)
    };
    result.map_err(|e| format!("write {}: {e}", path.display()))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut app = None;
    let mut len = None;
    let mut out = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => {
                let v = it.next().ok_or("--app needs a value")?;
                app = Some(
                    AppId::ALL
                        .into_iter()
                        .find(|x| x.abbr().eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown app {v:?}"))?,
                );
            }
            "--len" => {
                let v = it.next().ok_or("--len needs a value")?;
                len = Some(v.replace('_', "").parse::<usize>().map_err(|e| e.to_string())?);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e: std::num::ParseIntError| e.to_string())?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let app = app.ok_or("--app is required")?;
    let len = len.ok_or("--len is required")?;
    let out = out.ok_or("--out is required")?;
    let mut spec = profile(app).scaled(len);
    if let Some(s) = seed {
        spec.seed = s;
    }
    let trace = spec.build();
    store(&trace, Path::new(&out))?;
    println!("wrote {} — {}", out, trace.summary());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a file")?;
    let trace = load(Path::new(path))?;
    println!("{}", trace.summary());
    // Per-device histogram.
    let mut devices: std::collections::BTreeMap<String, usize> = Default::default();
    for a in trace.iter() {
        *devices.entry(a.device.to_string()).or_default() += 1;
    }
    for (d, n) in devices {
        println!("  {d:<5} {n:>10} ({:.1}%)", n as f64 / trace.len().max(1) as f64 * 100.0);
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else { return Err("convert needs <IN> <OUT>".into()) };
    let trace = load(Path::new(input))?;
    store(&trace, Path::new(output))?;
    println!("converted {input} -> {output} ({} accesses)", trace.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { return usage() };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "info" => cmd_info(rest),
        "convert" => cmd_convert(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
