//! Upper-level cache filtering of raw traces.
//!
//! The paper's core premise is that "the high-level caches have already
//! filtered much spatial and temporal locality" by the time traffic reaches
//! the system cache. The bundled workload generators synthesise
//! *post-filter* traffic directly; this module provides the complementary
//! tool for users bringing **raw** (core-side) traces: pass them through a
//! model of each device's private last-level cache and keep only the
//! misses — what the memory bus actually sees.
//!
//! The filter models one private cache per [`DeviceId`] (mobile CPUs'
//! L2s, the GPU's L2, the accelerators' buffers), LRU, write-allocate,
//! tracking tags only.
//!
//! [`DeviceId`]: planaria_common::DeviceId

use std::collections::VecDeque;

use planaria_common::{DeviceId, MemAccess, BLOCK_SIZE};

use crate::Trace;

/// Geometry of one device's private filtering cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilterConfig {
    /// Private-cache capacity per device, in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl FilterConfig {
    /// Table 1's CPU big-core L2: 512 KB, 8-way.
    pub const fn cortex_l2() -> Self {
        Self { size_bytes: 512 << 10, ways: 8 }
    }

    fn sets(&self) -> usize {
        ((self.size_bytes / BLOCK_SIZE) as usize / self.ways).max(1)
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::cortex_l2()
    }
}

/// A tag-only LRU cache used for filtering.
struct TagCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
}

impl TagCache {
    fn new(cfg: FilterConfig) -> Self {
        Self { sets: (0..cfg.sets()).map(|_| VecDeque::new()).collect(), ways: cfg.ways }
    }

    /// Returns `true` on hit; allocates on miss.
    fn access(&mut self, block: u64) -> bool {
        let set = (block % self.sets.len() as u64) as usize;
        if let Some(pos) = self.sets[set].iter().position(|&b| b == block) {
            let b = self.sets[set].remove(pos).expect("position valid");
            self.sets[set].push_front(b);
            true
        } else {
            self.sets[set].push_front(block);
            if self.sets[set].len() > self.ways {
                self.sets[set].pop_back();
            }
            false
        }
    }
}

fn device_slot(device: DeviceId) -> usize {
    match device {
        // Each CPU core has its own cache hierarchy path.
        DeviceId::Cpu(i) => i as usize,
        DeviceId::Gpu => 8,
        DeviceId::Npu => 9,
        DeviceId::Isp => 10,
        DeviceId::Dsp => 11,
    }
}

/// Filters a raw trace through per-device private caches, keeping only the
/// accesses that miss (the memory-bus traffic).
///
/// Arrival times and device/kind fields are preserved for the surviving
/// accesses.
///
/// # Examples
///
/// ```
/// use planaria_common::{Cycle, MemAccess, PhysAddr};
/// use planaria_trace::filter::{filter_trace, FilterConfig};
/// use planaria_trace::Trace;
///
/// // The same block twice: the second access hits the private L2 and
/// // never reaches the memory bus.
/// let raw = Trace::new("raw", vec![
///     MemAccess::read(PhysAddr::new(0x1000), Cycle::new(0)),
///     MemAccess::read(PhysAddr::new(0x1000), Cycle::new(10)),
/// ]);
/// let filtered = filter_trace(&raw, FilterConfig::default());
/// assert_eq!(filtered.len(), 1);
/// ```
pub fn filter_trace(raw: &Trace, cfg: FilterConfig) -> Trace {
    let mut caches: Vec<Option<TagCache>> = (0..12).map(|_| None).collect();
    let mut kept: Vec<MemAccess> = Vec::new();
    for a in raw.iter() {
        let slot = device_slot(a.device);
        let cache = caches[slot].get_or_insert_with(|| TagCache::new(cfg));
        if !cache.access(a.addr.block_number()) {
            kept.push(*a);
        }
    }
    Trace::new(format!("{}|filtered", raw.name()), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{Cycle, DeviceId, PhysAddr};

    fn read(addr: u64, cycle: u64, device: DeviceId) -> MemAccess {
        MemAccess::new(
            PhysAddr::new(addr),
            planaria_common::AccessKind::Read,
            device,
            Cycle::new(cycle),
        )
    }

    #[test]
    fn repeated_blocks_are_filtered() {
        let raw =
            Trace::new("raw", (0..10).map(|i| read(0x1000, i * 10, DeviceId::Cpu(0))).collect());
        let f = filter_trace(&raw, FilterConfig::default());
        assert_eq!(f.len(), 1, "only the compulsory miss survives");
        assert!(f.name().contains("filtered"));
    }

    #[test]
    fn distinct_blocks_pass_through() {
        let raw =
            Trace::new("raw", (0..64u64).map(|i| read(i * 64, i * 10, DeviceId::Cpu(0))).collect());
        let f = filter_trace(&raw, FilterConfig::default());
        assert_eq!(f.len(), 64);
        assert_eq!(f.accesses(), raw.accesses());
    }

    #[test]
    fn devices_filter_independently() {
        // The same block from two devices: both are compulsory misses in
        // their own private caches.
        let raw = Trace::new(
            "raw",
            vec![
                read(0x1000, 0, DeviceId::Cpu(0)),
                read(0x1000, 10, DeviceId::Gpu),
                read(0x1000, 20, DeviceId::Cpu(0)),
                read(0x1000, 30, DeviceId::Gpu),
            ],
        );
        let f = filter_trace(&raw, FilterConfig::default());
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|a| a.device == DeviceId::Cpu(0)));
        assert!(f.iter().any(|a| a.device == DeviceId::Gpu));
    }

    #[test]
    fn capacity_evictions_resurface_traffic() {
        // A cyclic scan over more blocks than a tiny filter holds: every
        // access misses (thrash) and the whole trace passes through.
        let cfg = FilterConfig { size_bytes: 64, ways: 1 }; // 1 block
        let blocks = [0u64, 64, 128, 0, 64, 128];
        let raw = Trace::new(
            "raw",
            blocks
                .iter()
                .enumerate()
                .map(|(i, &b)| read(b, i as u64 * 10, DeviceId::Cpu(0)))
                .collect(),
        );
        let f = filter_trace(&raw, cfg);
        assert_eq!(f.len(), 6, "thrashing filter passes everything");
    }

    #[test]
    fn filtering_preserves_order_and_fields() {
        let raw =
            Trace::new("raw", vec![read(0x0, 5, DeviceId::Cpu(1)), read(0x40, 6, DeviceId::Dsp)]);
        let f = filter_trace(&raw, FilterConfig::default());
        assert_eq!(f.accesses(), raw.accesses());
    }

    #[test]
    fn filtered_traces_kill_temporal_locality() {
        // The premise quantified: the filter output has far lower
        // immediate-reuse than the raw stream.
        let mut raw_accs = Vec::new();
        for round in 0..50u64 {
            for b in 0..32u64 {
                raw_accs.push(read(b * 64, round * 1000 + b * 10, DeviceId::Cpu(0)));
            }
        }
        let raw = Trace::new("raw", raw_accs);
        let f = filter_trace(&raw, FilterConfig::default());
        assert_eq!(f.len(), 32, "all reuse absorbed by the private cache");
    }
}
