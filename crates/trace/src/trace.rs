//! The in-memory trace container and its summary statistics.

use std::fmt;

use planaria_common::{DeviceId, MemAccess, PageNum};
use planaria_hash::FastHashSet;

/// An ordered sequence of demand accesses plus a workload name.
///
/// Accesses are kept sorted by arrival [`planaria_common::Cycle`];
/// [`Trace::new`] sorts its
/// input (stably) to guarantee this invariant.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    name: String,
    accesses: Vec<MemAccess>,
}

impl Trace {
    /// Creates a trace from a name and accesses, sorting them by cycle.
    pub fn new(name: impl Into<String>, mut accesses: Vec<MemAccess>) -> Self {
        accesses.sort_by_key(|a| a.cycle);
        Self { name: name.into(), accesses }
    }

    /// Creates an empty trace.
    pub fn empty(name: impl Into<String>) -> Self {
        Self { name: name.into(), accesses: Vec::new() }
    }

    /// The workload name (for tables/figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accesses in arrival order.
    pub fn accesses(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemAccess> {
        self.accesses.iter()
    }

    /// Total simulated duration (first to last arrival), in cycles.
    pub fn duration(&self) -> u64 {
        match (self.accesses.first(), self.accesses.last()) {
            (Some(first), Some(last)) => last.cycle.since(first.cycle),
            _ => 0,
        }
    }

    /// Number of distinct 4 KB pages touched.
    pub fn unique_pages(&self) -> usize {
        let pages: FastHashSet<PageNum> = self.accesses.iter().map(|a| a.addr.page()).collect();
        pages.len()
    }

    /// Fraction of read accesses (0 when the trace is empty).
    pub fn read_fraction(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let reads = self.accesses.iter().filter(|a| a.kind.is_read()).count();
        reads as f64 / self.accesses.len() as f64
    }

    /// Computes a one-line summary of the trace.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            name: self.name.clone(),
            accesses: self.len(),
            unique_pages: self.unique_pages(),
            duration: self.duration(),
            read_fraction: self.read_fraction(),
        }
    }

    /// Truncates the trace to its first `n` accesses (no-op if shorter).
    pub fn truncate(&mut self, n: usize) {
        self.accesses.truncate(n);
    }

    /// The distinct devices present in the trace, in [`DeviceId::ALL`]
    /// order (the canonical device-index order).
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut seen = [false; DeviceId::COUNT];
        for a in &self.accesses {
            seen[a.device.index()] = true;
        }
        DeviceId::ALL.into_iter().filter(|d| seen[d.index()]).collect()
    }

    /// Splits the trace into per-device request streams.
    ///
    /// Each [`DeviceStream`] holds the *indices* into [`Trace::accesses`]
    /// of that device's accesses, in arrival order — the closed-loop
    /// traffic model replays each stream independently while preserving
    /// the device's original inter-access gaps as think time. Streams are
    /// returned in [`DeviceId::ALL`] order; devices absent from the trace
    /// get no stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PhysAddr};
    /// use planaria_trace::Trace;
    ///
    /// let acc = |addr: u64, dev: DeviceId, cyc: u64| {
    ///     MemAccess::new(PhysAddr::new(addr), AccessKind::Read, dev, Cycle::new(cyc))
    /// };
    /// let t = Trace::new(
    ///     "t",
    ///     vec![
    ///         acc(0x0040, DeviceId::Cpu(0), 10),
    ///         acc(0x1040, DeviceId::Gpu, 20),
    ///         acc(0x0080, DeviceId::Cpu(0), 30),
    ///     ],
    /// );
    /// let streams = t.split_by_device();
    /// assert_eq!(streams.len(), 2);
    /// assert_eq!(streams[0].device, DeviceId::Cpu(0));
    /// assert_eq!(streams[0].indices, vec![0, 2]);
    /// assert_eq!(streams[1].device, DeviceId::Gpu);
    /// assert_eq!(streams[1].indices, vec![1]);
    /// ```
    pub fn split_by_device(&self) -> Vec<DeviceStream> {
        let mut per_dev: [Vec<usize>; DeviceId::COUNT] = Default::default();
        for (i, a) in self.accesses.iter().enumerate() {
            per_dev[a.device.index()].push(i);
        }
        let mut out = Vec::new();
        for (slot, indices) in per_dev.into_iter().enumerate() {
            if !indices.is_empty() {
                out.push(DeviceStream { device: DeviceId::from_index(slot), indices });
            }
        }
        out
    }
}

/// One device's request stream within a [`Trace`]: the indices of its
/// accesses in arrival order (see [`Trace::split_by_device`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStream {
    /// The device that issued these accesses.
    pub device: DeviceId,
    /// Indices into the owning trace's access slice, ascending.
    pub indices: Vec<usize>,
}

impl DeviceStream {
    /// Number of accesses in the stream.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if the stream has no accesses.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemAccess;
    type IntoIter = std::slice::Iter<'a, MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl Extend<MemAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
        self.accesses.sort_by_key(|a| a.cycle);
    }
}

/// Aggregate statistics of a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceSummary {
    /// Workload name.
    pub name: String,
    /// Number of accesses.
    pub accesses: usize,
    /// Number of distinct pages.
    pub unique_pages: usize,
    /// First-to-last arrival span in cycles.
    pub duration: u64,
    /// Fraction of reads.
    pub read_fraction: f64,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses, {} pages, {} cycles, {:.1}% reads",
            self.name,
            self.accesses,
            self.unique_pages,
            self.duration,
            self.read_fraction * 100.0
        )
    }
}

/// Returns the first cycle at which the trace is non-decreasing — used by
/// tests to assert the sortedness invariant.
#[cfg(test)]
pub(crate) fn is_sorted_by_cycle(accesses: &[MemAccess]) -> bool {
    accesses.windows(2).all(|w| w[0].cycle <= w[1].cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{AccessKind, Cycle, DeviceId, PhysAddr};

    fn acc(addr: u64, cycle: u64) -> MemAccess {
        MemAccess::read(PhysAddr::new(addr), Cycle::new(cycle))
    }

    #[test]
    fn new_sorts_by_cycle() {
        let t = Trace::new("t", vec![acc(0x40, 30), acc(0x80, 10), acc(0xc0, 20)]);
        assert!(is_sorted_by_cycle(t.accesses()));
        assert_eq!(t.accesses()[0].cycle.as_u64(), 10);
    }

    #[test]
    fn summary_counts() {
        let mut v = vec![acc(0x0000, 0), acc(0x1000, 5), acc(0x1040, 9)];
        v.push(MemAccess::new(
            PhysAddr::new(0x2000),
            AccessKind::Write,
            DeviceId::Gpu,
            Cycle::new(20),
        ));
        let t = Trace::new("s", v);
        let s = t.summary();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.unique_pages, 3);
        assert_eq!(s.duration, 20);
        assert!((s.read_fraction - 0.75).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::empty("e");
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0);
        assert_eq!(t.unique_pages(), 0);
        assert_eq!(t.read_fraction(), 0.0);
    }

    #[test]
    fn extend_keeps_sorted() {
        let mut t = Trace::new("t", vec![acc(0x40, 100)]);
        t.extend(vec![acc(0x80, 50)]);
        assert!(is_sorted_by_cycle(t.accesses()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn split_by_device_partitions_in_order() {
        let dev_acc = |addr: u64, dev: DeviceId, cyc: u64| {
            MemAccess::new(PhysAddr::new(addr), AccessKind::Read, dev, Cycle::new(cyc))
        };
        let t = Trace::new(
            "t",
            vec![
                dev_acc(0x0040, DeviceId::Gpu, 5),
                dev_acc(0x1040, DeviceId::Cpu(1), 1),
                dev_acc(0x2040, DeviceId::Cpu(1), 9),
                dev_acc(0x3040, DeviceId::Dsp, 3),
            ],
        );
        let streams = t.split_by_device();
        // Streams come back in canonical device order, not arrival order.
        let devs: Vec<DeviceId> = streams.iter().map(|s| s.device).collect();
        assert_eq!(devs, vec![DeviceId::Cpu(1), DeviceId::Gpu, DeviceId::Dsp]);
        assert_eq!(devs, t.devices());
        // Every index is accounted for exactly once and stays ascending.
        let total: usize = streams.iter().map(DeviceStream::len).sum();
        assert_eq!(total, t.len());
        for s in &streams {
            assert!(!s.is_empty());
            assert!(s.indices.windows(2).all(|w| w[0] < w[1]));
            for &i in &s.indices {
                assert_eq!(t.accesses()[i].device, s.device);
            }
        }
    }

    #[test]
    fn truncate_shortens() {
        let mut t = Trace::new("t", vec![acc(0x40, 1), acc(0x80, 2), acc(0xc0, 3)]);
        t.truncate(2);
        assert_eq!(t.len(), 2);
        t.truncate(10);
        assert_eq!(t.len(), 2);
    }
}
