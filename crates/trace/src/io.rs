//! Text and binary trace serialisation.
//!
//! Two interchangeable encodings are provided:
//!
//! * **Text** — one access per line, `R|W <hex addr> <device> <cycle>`,
//!   with `#` comment lines; convenient for inspection and diffing.
//! * **Binary** — fixed 18-byte little-endian records, compact enough for
//!   paper-scale traces (~70 M accesses ≈ 1.2 GB).
//!
//! Both round-trip exactly (tested by unit and property tests).

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PhysAddr};

use crate::Trace;

/// Errors produced while parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed text line (1-based line number and message).
    Line(usize, String),
    /// A truncated or corrupt binary record.
    Binary(String),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace io error: {e}"),
            ParseTraceError::Line(n, msg) => write!(f, "trace line {n}: {msg}"),
            ParseTraceError::Binary(msg) => write!(f, "binary trace: {msg}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

fn device_to_str(d: DeviceId) -> String {
    d.to_string()
}

fn device_from_str(s: &str) -> Option<DeviceId> {
    match s {
        "gpu" => Some(DeviceId::Gpu),
        "npu" => Some(DeviceId::Npu),
        "isp" => Some(DeviceId::Isp),
        "dsp" => Some(DeviceId::Dsp),
        _ => s.strip_prefix("cpu").and_then(|n| n.parse::<u8>().ok()).map(DeviceId::Cpu),
    }
}

/// Writes a trace in the text format.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "# trace: {}", trace.name())?;
    writeln!(w, "# format: kind addr device cycle")?;
    for a in trace.iter() {
        writeln!(w, "{} {:#x} {} {}", a.kind, a.addr, device_to_str(a.device), a.cycle.as_u64())?;
    }
    Ok(())
}

/// Reads a trace from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError::Line`] on malformed lines and
/// [`ParseTraceError::Io`] on IO failures.
pub fn read_text<R: Read>(name: impl Into<String>, r: R) -> Result<Trace, ParseTraceError> {
    let reader = BufReader::new(r);
    let mut accesses = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = match parts.next() {
            Some("R") => AccessKind::Read,
            Some("W") => AccessKind::Write,
            other => {
                return Err(ParseTraceError::Line(
                    lineno,
                    format!("expected R or W, got {other:?}"),
                ))
            }
        };
        let addr = parts
            .next()
            .and_then(|s| s.strip_prefix("0x"))
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(PhysAddr::new)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad address".into()))?;
        let device = parts
            .next()
            .and_then(device_from_str)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad device".into()))?;
        let cycle = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Cycle::new)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad cycle".into()))?;
        if parts.next().is_some() {
            return Err(ParseTraceError::Line(lineno, "trailing fields".into()));
        }
        accesses.push(MemAccess::new(addr, kind, device, cycle));
    }
    Ok(Trace::new(name, accesses))
}

const BIN_MAGIC: &[u8; 4] = b"PLNT";
const BIN_VERSION: u8 = 1;
const RECORD_SIZE: usize = 18;

fn encode_device(d: DeviceId) -> u8 {
    match d {
        DeviceId::Cpu(i) => i, // 0..=7
        DeviceId::Gpu => 8,
        DeviceId::Npu => 9,
        DeviceId::Isp => 10,
        DeviceId::Dsp => 11,
    }
}

fn decode_device(b: u8) -> Option<DeviceId> {
    match b {
        0..=7 => Some(DeviceId::Cpu(b)),
        8 => Some(DeviceId::Gpu),
        9 => Some(DeviceId::Npu),
        10 => Some(DeviceId::Isp),
        11 => Some(DeviceId::Dsp),
        _ => None,
    }
}

/// Writes a trace in the compact binary format.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w.write_all(&[BIN_VERSION])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace.iter() {
        let mut rec = [0u8; RECORD_SIZE];
        rec[..8].copy_from_slice(&a.addr.as_u64().to_le_bytes());
        rec[8..16].copy_from_slice(&a.cycle.as_u64().to_le_bytes());
        rec[16] = if a.kind.is_write() { 1 } else { 0 };
        rec[17] = encode_device(a.device);
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace from the compact binary format.
///
/// # Errors
///
/// Returns [`ParseTraceError::Binary`] on corrupt headers or records and
/// [`ParseTraceError::Io`] on IO failures.
pub fn read_binary<R: Read>(name: impl Into<String>, mut r: R) -> Result<Trace, ParseTraceError> {
    let mut header = [0u8; 13];
    r.read_exact(&mut header)?;
    if &header[..4] != BIN_MAGIC {
        return Err(ParseTraceError::Binary("bad magic".into()));
    }
    if header[4] != BIN_VERSION {
        return Err(ParseTraceError::Binary(format!("unsupported version {}", header[4])));
    }
    let count = u64::from_le_bytes(header[5..13].try_into().expect("sized slice")) as usize;
    let mut accesses = Vec::with_capacity(count);
    let mut rec = [0u8; RECORD_SIZE];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| ParseTraceError::Binary(format!("record {i}: {e}")))?;
        let addr = PhysAddr::new(u64::from_le_bytes(rec[..8].try_into().expect("sized slice")));
        let cycle = Cycle::new(u64::from_le_bytes(rec[8..16].try_into().expect("sized slice")));
        let kind = match rec[16] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => return Err(ParseTraceError::Binary(format!("record {i}: bad kind {k}"))),
        };
        let device = decode_device(rec[17]).ok_or_else(|| {
            ParseTraceError::Binary(format!("record {i}: bad device {}", rec[17]))
        })?;
        accesses.push(MemAccess::new(addr, kind, device, cycle));
    }
    Ok(Trace::new(name, accesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                MemAccess::new(
                    PhysAddr::new(0x1000),
                    AccessKind::Read,
                    DeviceId::Cpu(2),
                    Cycle::new(5),
                ),
                MemAccess::new(
                    PhysAddr::new(0x2040),
                    AccessKind::Write,
                    DeviceId::Gpu,
                    Cycle::new(9),
                ),
                MemAccess::new(
                    PhysAddr::new(0x30c0),
                    AccessKind::Read,
                    DeviceId::Dsp,
                    Cycle::new(14),
                ),
            ],
        )
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).expect("write");
        let back = read_text("sample", buf.as_slice()).expect("read");
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).expect("write");
        let back = read_binary("sample", buf.as_slice()).expect("read");
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# hello\n\nR 0x40 cpu0 1\n";
        let t = read_text("t", src.as_bytes()).expect("read");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("t", "X 0x40 cpu0 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R zz cpu0 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 speaker 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 cpu0 abc\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 cpu0 1 extra\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).expect("write");
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_binary("t", bad.as_slice()).is_err());
        let mut badv = buf.clone();
        badv[4] = 99;
        assert!(read_binary("t", badv.as_slice()).is_err());
        let truncated = &buf[..buf.len() - 1];
        assert!(read_binary("t", truncated).is_err());
    }

    #[test]
    fn error_display_nonempty() {
        let e = ParseTraceError::Line(3, "bad".into());
        assert!(e.to_string().contains("line 3"));
        let e = ParseTraceError::Binary("oops".into());
        assert!(e.to_string().contains("oops"));
    }

    fn arb_access() -> impl Strategy<Value = MemAccess> {
        (0u64..1 << 40, 0u64..1 << 40, any::<bool>(), 0u8..12).prop_map(|(addr, cyc, wr, dev)| {
            MemAccess::new(
                PhysAddr::new(addr),
                if wr { AccessKind::Write } else { AccessKind::Read },
                decode_device(dev).expect("device range"),
                Cycle::new(cyc),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_text_round_trip(accs in proptest::collection::vec(arb_access(), 0..50)) {
            let t = Trace::new("p", accs);
            let mut buf = Vec::new();
            write_text(&t, &mut buf).expect("write");
            let back = read_text("p", buf.as_slice()).expect("read");
            prop_assert_eq!(back.accesses(), t.accesses());
        }

        #[test]
        fn prop_binary_round_trip(accs in proptest::collection::vec(arb_access(), 0..50)) {
            let t = Trace::new("p", accs);
            let mut buf = Vec::new();
            write_binary(&t, &mut buf).expect("write");
            let back = read_binary("p", buf.as_slice()).expect("read");
            prop_assert_eq!(back.accesses(), t.accesses());
        }
    }
}
