//! Text and binary trace serialisation.
//!
//! Three interchangeable encodings are provided:
//!
//! * **Text** — one access per line, `R|W <hex addr> <device> <cycle>`,
//!   with `#` comment lines; convenient for inspection and diffing.
//! * **Legacy binary** — a 13-byte header followed by fixed 18-byte
//!   little-endian records; compact, but must be materialized whole.
//! * **Chunked binary (`planaria-trace-v1`)** — the same 18-byte records
//!   framed into length-prefixed chunks behind a versioned, self-naming
//!   header, so a [`ChunkedTraceReader`] can replay arbitrarily long
//!   traces in constant memory. The byte layout is normatively specified
//!   in `TRACE_FORMAT.md` at the repository root and pinned byte-for-byte
//!   by `tests/streaming.rs`.
//!
//! All formats round-trip exactly (tested by unit and property tests).
//! Every size and count field read from disk is bounds-checked before it
//! is trusted: readers fail with a specific [`ParseTraceError`] variant
//! instead of over-allocating or misparsing on corrupt input.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PhysAddr};

use crate::stream::AccessStream;
use crate::Trace;

/// Errors produced while parsing a trace.
///
/// Variants are specific enough for a caller (or a test) to tell *what*
/// was rejected — a truncated stream reads differently from a corrupt
/// record or an over-large declared count.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed text line (1-based line number and message).
    Line(usize, String),
    /// The input does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not one this reader understands.
    UnsupportedVersion(u32),
    /// The header carries flag bits this reader does not understand.
    UnsupportedFlags(u32),
    /// The input ended in the middle of the named structure.
    Truncated {
        /// What was being read when the input ran out.
        what: &'static str,
    },
    /// A size or count field exceeds its documented bound.
    FieldTooLarge {
        /// The offending field.
        what: &'static str,
        /// The value found in the input.
        value: u64,
        /// The documented maximum.
        max: u64,
    },
    /// A record carries an invalid byte in the named field.
    BadRecord {
        /// Zero-based record index within the trace.
        index: u64,
        /// The offending field (`"kind"` or `"device"`).
        what: &'static str,
        /// The value found in the input.
        value: u8,
    },
    /// A record's cycle is smaller than its predecessor's — the format
    /// requires arrival order, which streamed replay cannot repair by
    /// sorting.
    OutOfOrder {
        /// Zero-based index of the out-of-order record.
        index: u64,
    },
    /// The frames ended but their record counts do not sum to the
    /// header's declared total.
    CountMismatch {
        /// Total accesses declared by the header.
        declared: u64,
        /// Records actually present.
        found: u64,
    },
    /// Bytes follow the terminator frame.
    TrailingData,
    /// The embedded trace name is not valid UTF-8.
    BadName,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace io error: {e}"),
            ParseTraceError::Line(n, msg) => write!(f, "trace line {n}: {msg}"),
            ParseTraceError::BadMagic => write!(f, "binary trace: bad magic"),
            ParseTraceError::UnsupportedVersion(v) => {
                write!(f, "binary trace: unsupported version {v}")
            }
            ParseTraceError::UnsupportedFlags(bits) => {
                write!(f, "binary trace: unsupported flags {bits:#x}")
            }
            ParseTraceError::Truncated { what } => {
                write!(f, "binary trace: truncated while reading {what}")
            }
            ParseTraceError::FieldTooLarge { what, value, max } => {
                write!(f, "binary trace: {what} {value} exceeds maximum {max}")
            }
            ParseTraceError::BadRecord { index, what, value } => {
                write!(f, "binary trace: record {index}: bad {what} {value}")
            }
            ParseTraceError::OutOfOrder { index } => {
                write!(f, "binary trace: record {index} is out of cycle order")
            }
            ParseTraceError::CountMismatch { declared, found } => {
                write!(f, "binary trace: header declared {declared} accesses but found {found}")
            }
            ParseTraceError::TrailingData => {
                write!(f, "binary trace: trailing data after terminator frame")
            }
            ParseTraceError::BadName => write!(f, "binary trace: name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

fn device_to_str(d: DeviceId) -> String {
    d.to_string()
}

fn device_from_str(s: &str) -> Option<DeviceId> {
    match s {
        "gpu" => Some(DeviceId::Gpu),
        "npu" => Some(DeviceId::Npu),
        "isp" => Some(DeviceId::Isp),
        "dsp" => Some(DeviceId::Dsp),
        _ => s.strip_prefix("cpu").and_then(|n| n.parse::<u8>().ok()).map(DeviceId::Cpu),
    }
}

/// Writes a trace in the text format.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "# trace: {}", trace.name())?;
    writeln!(w, "# format: kind addr device cycle")?;
    for a in trace.iter() {
        writeln!(w, "{} {:#x} {} {}", a.kind, a.addr, device_to_str(a.device), a.cycle.as_u64())?;
    }
    Ok(())
}

/// Reads a trace from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError::Line`] on malformed lines and
/// [`ParseTraceError::Io`] on IO failures.
pub fn read_text<R: Read>(name: impl Into<String>, r: R) -> Result<Trace, ParseTraceError> {
    let reader = BufReader::new(r);
    let mut accesses = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = match parts.next() {
            Some("R") => AccessKind::Read,
            Some("W") => AccessKind::Write,
            other => {
                return Err(ParseTraceError::Line(
                    lineno,
                    format!("expected R or W, got {other:?}"),
                ))
            }
        };
        let addr = parts
            .next()
            .and_then(|s| s.strip_prefix("0x"))
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(PhysAddr::new)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad address".into()))?;
        let device = parts
            .next()
            .and_then(device_from_str)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad device".into()))?;
        let cycle = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Cycle::new)
            .ok_or_else(|| ParseTraceError::Line(lineno, "bad cycle".into()))?;
        if parts.next().is_some() {
            return Err(ParseTraceError::Line(lineno, "trailing fields".into()));
        }
        accesses.push(MemAccess::new(addr, kind, device, cycle));
    }
    Ok(Trace::new(name, accesses))
}

const BIN_MAGIC: &[u8; 4] = b"PLNT";
const BIN_VERSION: u8 = 1;
const RECORD_SIZE: usize = 18;

/// Upper bound on records per chunk frame in `planaria-trace-v1`
/// (normative; see `TRACE_FORMAT.md` §frames). Also used as the
/// pre-allocation clamp when materializing: a corrupt or hostile count
/// field can never make a reader reserve more than
/// `MAX_CHUNK_RECORDS × 24` bytes up front.
pub const MAX_CHUNK_RECORDS: u32 = 1 << 20;

/// Upper bound on the embedded name length in `planaria-trace-v1`
/// (normative; see `TRACE_FORMAT.md` §header).
pub const MAX_NAME_LEN: u16 = 4096;

/// Magic bytes opening a `planaria-trace-v1` file.
const CHUNK_MAGIC: &[u8; 8] = b"PLNTRACE";

/// Version written and accepted by this reader/writer pair.
const CHUNK_VERSION: u32 = 1;

/// [`MAX_CHUNK_RECORDS`] as an in-memory count (checked, never cast).
fn max_chunk_records() -> usize {
    usize::try_from(MAX_CHUNK_RECORDS).expect("u32 chunk bound fits usize")
}

/// Clamps an untrusted declared total to at most one chunk frame's worth
/// of up-front allocation.
fn clamped_capacity(total: u64) -> usize {
    usize::try_from(total.min(u64::from(MAX_CHUNK_RECORDS))).expect("clamped to u32 bound")
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF to
/// [`ParseTraceError::Truncated`] for the named structure.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), ParseTraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ParseTraceError::Truncated { what }
        } else {
            ParseTraceError::Io(e)
        }
    })
}

/// Decodes one 18-byte record; `index` is used for error reporting only.
fn decode_record(rec: &[u8; RECORD_SIZE], index: u64) -> Result<MemAccess, ParseTraceError> {
    let addr = PhysAddr::new(u64::from_le_bytes(rec[..8].try_into().expect("sized slice")));
    let cycle = Cycle::new(u64::from_le_bytes(rec[8..16].try_into().expect("sized slice")));
    let kind = match rec[16] {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        value => return Err(ParseTraceError::BadRecord { index, what: "kind", value }),
    };
    let device = decode_device(rec[17]).ok_or(ParseTraceError::BadRecord {
        index,
        what: "device",
        value: rec[17],
    })?;
    Ok(MemAccess::new(addr, kind, device, cycle))
}

/// Encodes one access as an 18-byte record.
fn encode_record(a: &MemAccess) -> [u8; RECORD_SIZE] {
    let mut rec = [0u8; RECORD_SIZE];
    rec[..8].copy_from_slice(&a.addr.as_u64().to_le_bytes());
    rec[8..16].copy_from_slice(&a.cycle.as_u64().to_le_bytes());
    rec[16] = if a.kind.is_write() { 1 } else { 0 };
    rec[17] = encode_device(a.device);
    rec
}

fn encode_device(d: DeviceId) -> u8 {
    match d {
        DeviceId::Cpu(i) => i, // 0..=7
        DeviceId::Gpu => 8,
        DeviceId::Npu => 9,
        DeviceId::Isp => 10,
        DeviceId::Dsp => 11,
    }
}

fn decode_device(b: u8) -> Option<DeviceId> {
    match b {
        0..=7 => Some(DeviceId::Cpu(b)),
        8 => Some(DeviceId::Gpu),
        9 => Some(DeviceId::Npu),
        10 => Some(DeviceId::Isp),
        11 => Some(DeviceId::Dsp),
        _ => None,
    }
}

/// Writes a trace in the compact binary format.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w.write_all(&[BIN_VERSION])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace.iter() {
        w.write_all(&encode_record(a))?;
    }
    Ok(())
}

/// Reads a trace from the compact binary format.
///
/// The header's count field is *not* trusted for allocation: capacity is
/// reserved incrementally (clamped to [`MAX_CHUNK_RECORDS`]), so a corrupt
/// count produces a [`ParseTraceError::Truncated`] error rather than an
/// attempt to allocate the declared size.
///
/// # Errors
///
/// Returns the specific [`ParseTraceError`] variant describing the first
/// corruption found, or [`ParseTraceError::Io`] on IO failures.
pub fn read_binary<R: Read>(name: impl Into<String>, mut r: R) -> Result<Trace, ParseTraceError> {
    let mut header = [0u8; 13];
    read_exact_or(&mut r, &mut header, "header")?;
    if &header[..4] != BIN_MAGIC {
        return Err(ParseTraceError::BadMagic);
    }
    if header[4] != BIN_VERSION {
        return Err(ParseTraceError::UnsupportedVersion(u32::from(header[4])));
    }
    let count = u64::from_le_bytes(header[5..13].try_into().expect("sized slice"));
    let mut accesses = Vec::with_capacity(clamped_capacity(count));
    let mut rec = [0u8; RECORD_SIZE];
    for i in 0..count {
        read_exact_or(&mut r, &mut rec, "record")?;
        accesses.push(decode_record(&rec, i)?);
    }
    Ok(Trace::new(name, accesses))
}

/// Incremental writer for the chunked `planaria-trace-v1` format.
///
/// The writer takes the total access count up front (the header is the
/// first thing on the wire) and enforces it: over- or under-feeding is an
/// error at [`ChunkedTraceWriter::write_chunk`] / `finish` time, so a
/// packed file's header can always be trusted by readers that honour the
/// bounds rules. Chunks passed in may be any size; they are re-framed to
/// at most [`MAX_CHUNK_RECORDS`] records per frame.
///
/// See `TRACE_FORMAT.md` for the byte layout.
pub struct ChunkedTraceWriter<W: Write> {
    w: W,
    declared: u64,
    written: u64,
    buf: Vec<u8>,
}

impl<W: Write> ChunkedTraceWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] from the underlying writer, or one of kind
    /// [`io::ErrorKind::InvalidInput`] if `name` exceeds
    /// [`MAX_NAME_LEN`] bytes.
    pub fn new(mut w: W, name: &str, total_accesses: u64) -> io::Result<Self> {
        if name.len() > usize::from(MAX_NAME_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace name is {} bytes (max {MAX_NAME_LEN})", name.len()),
            ));
        }
        w.write_all(CHUNK_MAGIC)?;
        w.write_all(&CHUNK_VERSION.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?; // flags
        w.write_all(&total_accesses.to_le_bytes())?;
        let name_len = u16::try_from(name.len()).expect("checked against MAX_NAME_LEN");
        w.write_all(&name_len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        Ok(Self { w, declared: total_accesses, written: 0, buf: Vec::new() })
    }

    /// Appends `accesses` to the trace, framing as needed.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] from the underlying writer, or one of kind
    /// [`io::ErrorKind::InvalidInput`] if this write would exceed the
    /// declared total.
    pub fn write_chunk(&mut self, accesses: &[MemAccess]) -> io::Result<()> {
        if self.written + accesses.len() as u64 > self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "write_chunk past declared total: {} + {} > {}",
                    self.written,
                    accesses.len(),
                    self.declared
                ),
            ));
        }
        for frame in accesses.chunks(max_chunk_records()) {
            let frame_len = u32::try_from(frame.len()).expect("frame chunked to MAX_CHUNK_RECORDS");
            self.w.write_all(&frame_len.to_le_bytes())?;
            self.buf.clear();
            self.buf.reserve(frame.len() * RECORD_SIZE);
            for a in frame {
                self.buf.extend_from_slice(&encode_record(a));
            }
            self.w.write_all(&self.buf)?;
        }
        self.written += accesses.len() as u64;
        Ok(())
    }

    /// Writes the terminator frame, flushes, and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] from the underlying writer, or one of kind
    /// [`io::ErrorKind::InvalidInput`] if fewer accesses were written than
    /// the header declared.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("finish after {} of {} declared accesses", self.written, self.declared),
            ));
        }
        self.w.write_all(&0u32.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Writes a whole in-memory trace in the chunked `planaria-trace-v1`
/// format (convenience over [`ChunkedTraceWriter`]).
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn write_chunked<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut cw = ChunkedTraceWriter::new(w, trace.name(), trace.len() as u64)?;
    cw.write_chunk(trace.accesses())?;
    cw.finish()?;
    Ok(())
}

/// Streaming reader for the chunked `planaria-trace-v1` format.
///
/// Parses and validates the header eagerly in [`ChunkedTraceReader::new`],
/// then yields records through the [`AccessStream`] interface in constant
/// memory. Every length field is bounds-checked before use, record order
/// is verified to be cycle-sorted, and the frame counts must reconcile
/// with the header's declared total — a file that fails any of these
/// checks latches the specific [`ParseTraceError`] (see
/// [`AccessStream::error`]) and ends the stream.
///
/// # Examples
///
/// ```
/// use planaria_trace::apps::{profile, AppId};
/// use planaria_trace::io::{write_chunked, ChunkedTraceReader};
/// use planaria_trace::stream::AccessStream;
///
/// let trace = profile(AppId::HoK).scaled(1_000).build();
/// let mut packed = Vec::new();
/// write_chunked(&trace, &mut packed).unwrap();
///
/// let mut reader = ChunkedTraceReader::new(packed.as_slice()).unwrap();
/// assert_eq!(reader.name(), "HoK");
/// assert_eq!(reader.total_len(), Some(1_000));
/// let mut chunk = Vec::new();
/// let mut replayed = Vec::new();
/// while reader.next_chunk(256, &mut chunk) > 0 {
///     replayed.extend_from_slice(&chunk);
/// }
/// assert!(reader.error().is_none());
/// assert_eq!(replayed, trace.accesses());
/// ```
pub struct ChunkedTraceReader<R: Read> {
    r: R,
    name: String,
    total: u64,
    /// Records delivered so far (equals records read — delivery is
    /// immediate).
    seen: u64,
    /// Records remaining in the currently open frame.
    frame_left: u32,
    /// Cycle of the last delivered record, for order validation.
    last_cycle: Cycle,
    done: bool,
    error: Option<ParseTraceError>,
    buf: Vec<u8>,
}

impl<R: Read> ChunkedTraceReader<R> {
    /// Parses and validates the header.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError::BadMagic`] /
    /// [`ParseTraceError::UnsupportedVersion`] /
    /// [`ParseTraceError::UnsupportedFlags`] on a foreign or newer file,
    /// [`ParseTraceError::FieldTooLarge`] or [`ParseTraceError::BadName`]
    /// on a corrupt name field, and [`ParseTraceError::Truncated`] /
    /// [`ParseTraceError::Io`] on short or failing reads.
    pub fn new(mut r: R) -> Result<Self, ParseTraceError> {
        let mut fixed = [0u8; 26];
        read_exact_or(&mut r, &mut fixed, "header")?;
        if &fixed[..8] != CHUNK_MAGIC {
            return Err(ParseTraceError::BadMagic);
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().expect("sized slice"));
        if version != CHUNK_VERSION {
            return Err(ParseTraceError::UnsupportedVersion(version));
        }
        let flags = u32::from_le_bytes(fixed[12..16].try_into().expect("sized slice"));
        if flags != 0 {
            return Err(ParseTraceError::UnsupportedFlags(flags));
        }
        let total = u64::from_le_bytes(fixed[16..24].try_into().expect("sized slice"));
        let name_len = u16::from_le_bytes(fixed[24..26].try_into().expect("sized slice"));
        if name_len > MAX_NAME_LEN {
            return Err(ParseTraceError::FieldTooLarge {
                what: "name length",
                value: name_len as u64,
                max: MAX_NAME_LEN as u64,
            });
        }
        let mut name_bytes = vec![0u8; usize::from(name_len)];
        read_exact_or(&mut r, &mut name_bytes, "name")?;
        let name = String::from_utf8(name_bytes).map_err(|_| ParseTraceError::BadName)?;
        Ok(Self {
            r,
            name,
            total,
            seen: 0,
            frame_left: 0,
            last_cycle: Cycle::ZERO,
            done: false,
            error: None,
            buf: Vec::new(),
        })
    }

    /// Latches `err`, permanently ending the stream.
    fn fail(&mut self, err: ParseTraceError) {
        self.error = Some(err);
        self.done = true;
    }

    /// Opens the next frame. Returns `false` when the stream ends (clean
    /// terminator or latched error).
    fn open_frame(&mut self) -> bool {
        let mut len_buf = [0u8; 4];
        if let Err(e) = read_exact_or(&mut self.r, &mut len_buf, "frame header") {
            self.fail(e);
            return false;
        }
        let count = u32::from_le_bytes(len_buf);
        if count == 0 {
            // Terminator: totals must reconcile and the input must end.
            self.done = true;
            if self.seen != self.total {
                self.fail(ParseTraceError::CountMismatch {
                    declared: self.total,
                    found: self.seen,
                });
            } else if self.r.read(&mut len_buf[..1]).is_ok_and(|n| n > 0) {
                self.fail(ParseTraceError::TrailingData);
            }
            return false;
        }
        if count > MAX_CHUNK_RECORDS {
            self.fail(ParseTraceError::FieldTooLarge {
                what: "frame record count",
                value: count as u64,
                max: MAX_CHUNK_RECORDS as u64,
            });
            return false;
        }
        if self.seen + count as u64 > self.total {
            self.fail(ParseTraceError::CountMismatch {
                declared: self.total,
                found: self.seen + count as u64,
            });
            return false;
        }
        self.frame_left = count;
        true
    }
}

impl<R: Read> AccessStream for ChunkedTraceReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn total_len(&self) -> Option<u64> {
        Some(self.total)
    }

    fn next_chunk(&mut self, max: usize, out: &mut Vec<MemAccess>) -> usize {
        out.clear();
        while out.len() < max && !self.done {
            if self.frame_left == 0 && !self.open_frame() {
                break;
            }
            let frame_left = usize::try_from(self.frame_left).expect("u32 count fits usize");
            let n = (max - out.len()).min(frame_left);
            self.buf.resize(n * RECORD_SIZE, 0);
            if let Err(e) = read_exact_or(&mut self.r, &mut self.buf, "record") {
                self.fail(e);
                break;
            }
            for (i, raw) in self.buf.chunks_exact(RECORD_SIZE).enumerate() {
                let rec: &[u8; RECORD_SIZE] = raw.try_into().expect("sized chunk");
                match decode_record(rec, self.seen + i as u64) {
                    Ok(access) => {
                        if access.cycle < self.last_cycle {
                            self.fail(ParseTraceError::OutOfOrder { index: self.seen + i as u64 });
                            break;
                        }
                        self.last_cycle = access.cycle;
                        out.push(access);
                    }
                    Err(e) => {
                        self.fail(e);
                        break;
                    }
                }
            }
            if self.done {
                break;
            }
            self.seen += n as u64;
            self.frame_left -= u32::try_from(n).expect("n clamped to frame_left");
        }
        out.len()
    }

    fn error(&self) -> Option<&ParseTraceError> {
        self.error.as_ref()
    }
}

/// Materializes a chunked `planaria-trace-v1` file into a [`Trace`].
///
/// The trace name comes from the file header (the format is
/// self-describing). Pre-allocation is clamped to [`MAX_CHUNK_RECORDS`]
/// records regardless of the declared total.
///
/// # Errors
///
/// Returns the specific [`ParseTraceError`] variant describing the first
/// corruption found, or [`ParseTraceError::Io`] on IO failures.
pub fn read_chunked<R: Read>(r: R) -> Result<Trace, ParseTraceError> {
    let mut reader = ChunkedTraceReader::new(r)?;
    let total = reader.total_len().unwrap_or(0);
    let mut accesses = Vec::with_capacity(clamped_capacity(total));
    let mut chunk = Vec::new();
    while reader.next_chunk(max_chunk_records(), &mut chunk) > 0 {
        accesses.extend_from_slice(&chunk);
    }
    if let Some(e) = reader.error.take() {
        return Err(e);
    }
    Ok(Trace::new(reader.name, accesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                MemAccess::new(
                    PhysAddr::new(0x1000),
                    AccessKind::Read,
                    DeviceId::Cpu(2),
                    Cycle::new(5),
                ),
                MemAccess::new(
                    PhysAddr::new(0x2040),
                    AccessKind::Write,
                    DeviceId::Gpu,
                    Cycle::new(9),
                ),
                MemAccess::new(
                    PhysAddr::new(0x30c0),
                    AccessKind::Read,
                    DeviceId::Dsp,
                    Cycle::new(14),
                ),
            ],
        )
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).expect("write");
        let back = read_text("sample", buf.as_slice()).expect("read");
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).expect("write");
        let back = read_binary("sample", buf.as_slice()).expect("read");
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# hello\n\nR 0x40 cpu0 1\n";
        let t = read_text("t", src.as_bytes()).expect("read");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("t", "X 0x40 cpu0 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R zz cpu0 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 speaker 1\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 cpu0 abc\n".as_bytes()).is_err());
        assert!(read_text("t", "R 0x40 cpu0 1 extra\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).expect("write");
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary("t", bad.as_slice()), Err(ParseTraceError::BadMagic)));
        let mut badv = buf.clone();
        badv[4] = 99;
        assert!(matches!(
            read_binary("t", badv.as_slice()),
            Err(ParseTraceError::UnsupportedVersion(99))
        ));
        let truncated = &buf[..buf.len() - 1];
        assert!(matches!(
            read_binary("t", truncated),
            Err(ParseTraceError::Truncated { what: "record" })
        ));
    }

    #[test]
    fn binary_bounds_checks_untrusted_count() {
        // A header declaring u64::MAX records must fail with a truncation
        // error once the records run out — and must NOT try to reserve
        // u64::MAX capacity first (this test would abort the process if it
        // did).
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).expect("write");
        buf[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_binary("t", buf.as_slice()),
            Err(ParseTraceError::Truncated { what: "record" })
        ));
    }

    #[test]
    fn binary_rejects_bad_kind_and_device() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).expect("write");
        let mut bad_kind = buf.clone();
        bad_kind[13 + 16] = 7; // first record's kind byte
        assert!(matches!(
            read_binary("t", bad_kind.as_slice()),
            Err(ParseTraceError::BadRecord { index: 0, what: "kind", value: 7 })
        ));
        let mut bad_dev = buf.clone();
        bad_dev[13 + RECORD_SIZE + 17] = 200; // second record's device byte
        assert!(matches!(
            read_binary("t", bad_dev.as_slice()),
            Err(ParseTraceError::BadRecord { index: 1, what: "device", value: 200 })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ParseTraceError::Line(3, "bad".into());
        assert!(e.to_string().contains("line 3"));
        let e = ParseTraceError::Truncated { what: "record" };
        assert!(e.to_string().contains("record"));
        let e = ParseTraceError::CountMismatch { declared: 5, found: 3 };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }

    #[test]
    fn chunked_round_trip_via_writer_and_reader() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_chunked(&t, &mut buf).expect("write");
        let back = read_chunked(buf.as_slice()).expect("read");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn chunked_writer_reframes_across_write_calls() {
        let t = sample_trace();
        let mut buf = Vec::new();
        let mut w = ChunkedTraceWriter::new(&mut buf, t.name(), t.len() as u64).expect("header");
        for a in t.iter() {
            w.write_chunk(std::slice::from_ref(a)).expect("chunk");
        }
        w.finish().expect("finish");
        let back = read_chunked(buf.as_slice()).expect("read");
        assert_eq!(back.accesses(), t.accesses());
    }

    #[test]
    fn chunked_writer_enforces_declared_total() {
        let t = sample_trace();
        let mut w = ChunkedTraceWriter::new(Vec::new(), "t", 2).expect("header");
        assert!(w.write_chunk(t.accesses()).is_err(), "overfeed must fail");
        let mut w = ChunkedTraceWriter::new(Vec::new(), "t", 5).expect("header");
        w.write_chunk(t.accesses()).expect("chunk");
        assert!(w.finish().is_err(), "underfeed must fail at finish");
    }

    /// A well-formed single-frame packed copy of [`sample_trace`].
    fn packed_sample() -> Vec<u8> {
        let mut buf = Vec::new();
        write_chunked(&sample_trace(), &mut buf).expect("write");
        buf
    }

    #[test]
    fn chunked_rejects_corrupt_headers() {
        let buf = packed_sample();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(ChunkedTraceReader::new(bad.as_slice()), Err(ParseTraceError::BadMagic)));
        let mut badv = buf.clone();
        badv[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            ChunkedTraceReader::new(badv.as_slice()),
            Err(ParseTraceError::UnsupportedVersion(9))
        ));
        let mut badf = buf.clone();
        badf[12..16].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            ChunkedTraceReader::new(badf.as_slice()),
            Err(ParseTraceError::UnsupportedFlags(2))
        ));
        let mut badn = buf.clone();
        badn[24..26].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            ChunkedTraceReader::new(badn.as_slice()),
            Err(ParseTraceError::FieldTooLarge { what: "name length", .. })
        ));
        assert!(matches!(
            ChunkedTraceReader::new(&buf[..10]),
            Err(ParseTraceError::Truncated { what: "header" })
        ));
    }

    #[test]
    fn chunked_rejects_truncation_and_frame_corruption() {
        let buf = packed_sample();
        // Truncated mid-record.
        assert!(matches!(
            read_chunked(&buf[..buf.len() - 6]),
            Err(ParseTraceError::Truncated { .. })
        ));
        // Missing terminator frame.
        assert!(matches!(
            read_chunked(&buf[..buf.len() - 4]),
            Err(ParseTraceError::Truncated { what: "frame header" })
        ));
        // Oversized frame count (header is 26 + "sample".len() = 32 bytes).
        let frame_at = 26 + "sample".len();
        let mut huge = buf.clone();
        huge[frame_at..frame_at + 4].copy_from_slice(&(MAX_CHUNK_RECORDS + 1).to_le_bytes());
        assert!(matches!(
            read_chunked(huge.as_slice()),
            Err(ParseTraceError::FieldTooLarge { what: "frame record count", .. })
        ));
        // Frame total exceeding the declared header total.
        let mut over = buf.clone();
        over[frame_at..frame_at + 4].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(
            read_chunked(over.as_slice()),
            Err(ParseTraceError::CountMismatch { declared: 3, found: 4 })
        ));
        // Frames reconciling short of the declared total.
        let mut short = buf.clone();
        short[16..24].copy_from_slice(&9u64.to_le_bytes());
        assert!(matches!(
            read_chunked(short.as_slice()),
            Err(ParseTraceError::CountMismatch { declared: 9, found: 3 })
        ));
        // Trailing bytes after the terminator.
        let mut trailing = buf.clone();
        trailing.push(0xAB);
        assert!(matches!(read_chunked(trailing.as_slice()), Err(ParseTraceError::TrailingData)));
        // Out-of-order records (swap the first record's cycle up).
        let mut unsorted = buf.clone();
        let rec0 = frame_at + 4;
        unsorted[rec0 + 8..rec0 + 16].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            read_chunked(unsorted.as_slice()),
            Err(ParseTraceError::OutOfOrder { index: 1 })
        ));
    }

    #[test]
    fn chunked_reader_latches_error_through_stream_interface() {
        let mut buf = packed_sample();
        let n = buf.len();
        buf.truncate(n - 6);
        let mut reader = ChunkedTraceReader::new(buf.as_slice()).expect("header ok");
        let mut chunk = Vec::new();
        while reader.next_chunk(2, &mut chunk) > 0 {}
        assert!(
            matches!(reader.error(), Some(ParseTraceError::Truncated { .. })),
            "truncation must latch: {:?}",
            reader.error()
        );
        // Exhaustion is permanent after a latched error.
        assert_eq!(reader.next_chunk(2, &mut chunk), 0);
    }

    fn arb_access() -> impl Strategy<Value = MemAccess> {
        (0u64..1 << 40, 0u64..1 << 40, any::<bool>(), 0u8..12).prop_map(|(addr, cyc, wr, dev)| {
            MemAccess::new(
                PhysAddr::new(addr),
                if wr { AccessKind::Write } else { AccessKind::Read },
                decode_device(dev).expect("device range"),
                Cycle::new(cyc),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_text_round_trip(accs in proptest::collection::vec(arb_access(), 0..50)) {
            let t = Trace::new("p", accs);
            let mut buf = Vec::new();
            write_text(&t, &mut buf).expect("write");
            let back = read_text("p", buf.as_slice()).expect("read");
            prop_assert_eq!(back.accesses(), t.accesses());
        }

        #[test]
        fn prop_binary_round_trip(accs in proptest::collection::vec(arb_access(), 0..50)) {
            let t = Trace::new("p", accs);
            let mut buf = Vec::new();
            write_binary(&t, &mut buf).expect("write");
            let back = read_binary("p", buf.as_slice()).expect("read");
            prop_assert_eq!(back.accesses(), t.accesses());
        }

        #[test]
        fn prop_chunked_round_trip(accs in proptest::collection::vec(arb_access(), 0..50)) {
            let t = Trace::new("p", accs);
            let mut buf = Vec::new();
            write_chunked(&t, &mut buf).expect("write");
            let back = read_chunked(buf.as_slice()).expect("read");
            prop_assert_eq!(back.name(), t.name());
            prop_assert_eq!(back.accesses(), t.accesses());
        }
    }
}
