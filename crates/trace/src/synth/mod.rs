//! Synthetic workload synthesis.
//!
//! A [`WorkloadSpec`] describes a workload as a weighted mixture of traffic
//! *components*, each modelling one traffic class the paper's system cache
//! observes:
//!
//! * [`FootprintSpec`] — revisited pages with stable footprint snapshots
//!   (Observation 1; the regularity SLP exploits).
//! * [`NeighborSpec`] — clusters of address-adjacent pages with similar
//!   footprints, touched (mostly) once (Observation 2; what TLP exploits).
//! * [`StreamSpec`] — sequential block streaming (GPU framebuffer/texture
//!   scans; what next-line/BOP-style prefetchers exploit).
//! * [`StrideSpec`] — constant-stride runs (DMA engines; BOP's home turf).
//! * [`RandomSpec`] — irregular pointer-chase-like traffic that no
//!   memory-side prefetcher can predict (it punishes aggressive ones).
//!
//! All generation is deterministic for a given spec (seeded `StdRng`s), so
//! every figure in the repository regenerates bit-identically.

mod footprint;
mod neighbor;
mod simple;

pub use footprint::FootprintSpec;
pub use neighbor::NeighborSpec;
pub use simple::{RandomSpec, StreamSpec, StrideSpec};

use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PageNum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Trace;

/// Pages reserved per component region so components never alias.
const REGION_PAGES: u64 = 1 << 24;

/// One traffic class with its parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentSpec {
    /// Stable revisited intra-page footprints (SLP-friendly).
    Footprint(FootprintSpec),
    /// Clusters of similar neighbouring pages (TLP-friendly).
    Neighbor(NeighborSpec),
    /// Sequential streaming.
    Stream(StreamSpec),
    /// Constant-stride runs.
    Stride(StrideSpec),
    /// Irregular traffic.
    Random(RandomSpec),
}

impl ComponentSpec {
    fn generate(&self, seed: u64, count: usize, region_base: PageNum, out: &mut Vec<MemAccess>) {
        match self {
            ComponentSpec::Footprint(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Neighbor(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Stream(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Stride(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Random(s) => s.generate(seed, count, region_base, out),
        }
    }
}

/// A component together with its share of the workload's accesses.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedComponent {
    /// Relative weight (normalised over the spec's components).
    pub weight: f64,
    /// The traffic class.
    pub spec: ComponentSpec,
}

/// A deterministic description of a synthetic workload.
///
/// # Examples
///
/// ```
/// use planaria_trace::{ComponentSpec, WeightedComponent, WorkloadSpec};
/// use planaria_trace::synth::FootprintSpec;
///
/// let spec = WorkloadSpec::new("demo", "demo", 42, 5_000)
///     .with(1.0, ComponentSpec::Footprint(FootprintSpec::default()));
/// let trace = spec.build();
/// assert_eq!(trace.len(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadSpec {
    /// Full workload name (e.g. "Honor of Kings").
    pub name: String,
    /// Short label used in figures (e.g. "HoK").
    pub abbr: String,
    /// Master seed; all component RNGs derive from it.
    pub seed: u64,
    /// Number of accesses to synthesise.
    pub length: usize,
    /// The weighted traffic mix.
    pub components: Vec<WeightedComponent>,
}

impl WorkloadSpec {
    /// Creates an empty spec; add components with [`WorkloadSpec::with`].
    pub fn new(name: impl Into<String>, abbr: impl Into<String>, seed: u64, length: usize) -> Self {
        Self { name: name.into(), abbr: abbr.into(), seed, length, components: Vec::new() }
    }

    /// Adds a weighted component (builder style).
    #[must_use]
    pub fn with(mut self, weight: f64, spec: ComponentSpec) -> Self {
        assert!(weight > 0.0, "component weight must be positive");
        self.components.push(WeightedComponent { weight, spec });
        self
    }

    /// Returns a copy with a different target length.
    #[must_use]
    pub fn scaled(mut self, length: usize) -> Self {
        self.length = length;
        self
    }

    /// Renders the spec into a trace.
    ///
    /// Each component generates its share of accesses in a private address
    /// region on its own timeline; the mixer then merges all events in
    /// arrival order and truncates to the requested length.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no components.
    pub fn build(&self) -> Trace {
        assert!(!self.components.is_empty(), "workload spec has no components");
        let total_weight: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut events = Vec::with_capacity(self.length + self.length / 8);
        for (i, wc) in self.components.iter().enumerate() {
            // Overshoot each component slightly so truncation to `length`
            // after merging never under-fills the trace.
            let share = (wc.weight / total_weight * self.length as f64).ceil() as usize + 16;
            let seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            let region_base = PageNum::new((i as u64 + 1) * REGION_PAGES);
            wc.spec.generate(seed, share, region_base, &mut events);
        }
        events.sort_by_key(|a| a.cycle);
        events.truncate(self.length);
        Trace::new(self.abbr.clone(), events)
    }
}

/// Shared per-access envelope: device, read ratio and timing gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Envelope {
    /// Issuing device recorded in the trace.
    pub device: DeviceId,
    /// Probability that an access is a read.
    pub read_ratio: f64,
}

impl Default for Envelope {
    fn default() -> Self {
        Self { device: DeviceId::Cpu(0), read_ratio: 0.8 }
    }
}

impl Envelope {
    pub(crate) fn kind(&self, rng: &mut StdRng) -> AccessKind {
        if rng.gen_bool(self.read_ratio.clamp(0.0, 1.0)) {
            AccessKind::Read
        } else {
            AccessKind::Write
        }
    }
}

/// Samples a gap uniformly in `[mean/2, 3*mean/2]`, at least 1 cycle.
pub(crate) fn sample_gap(rng: &mut StdRng, mean: u64) -> u64 {
    let mean = mean.max(1);
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    rng.gen_range(lo..=hi.max(lo))
}

pub(crate) fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Emits one access and advances the component clock.
pub(crate) fn emit(
    out: &mut Vec<MemAccess>,
    rng: &mut StdRng,
    env: &Envelope,
    addr: planaria_common::PhysAddr,
    clock: &mut Cycle,
    mean_gap: u64,
) {
    out.push(MemAccess::new(addr, env.kind(rng), env.device, *clock));
    *clock += sample_gap(rng, mean_gap);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new("test", "t", 7, 2_000)
            .with(2.0, ComponentSpec::Footprint(FootprintSpec::default()))
            .with(1.0, ComponentSpec::Stream(StreamSpec::default()))
            .with(0.5, ComponentSpec::Random(RandomSpec::default()))
    }

    #[test]
    fn build_produces_exact_length() {
        let t = small_spec().build();
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_spec().build();
        let b = small_spec().build();
        assert_eq!(a.accesses(), b.accesses());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_spec().build();
        let mut spec = small_spec();
        spec.seed = 8;
        let b = spec.build();
        assert_ne!(a.accesses(), b.accesses());
    }

    #[test]
    fn components_use_disjoint_regions() {
        let t = small_spec().build();
        // Every page must fall in exactly one component region.
        for a in t.iter() {
            let region = a.addr.page().as_u64() / REGION_PAGES;
            assert!((1..=3).contains(&region), "page in unexpected region {region}");
        }
    }

    #[test]
    fn accesses_sorted_by_cycle() {
        let t = small_spec().build();
        assert!(t.accesses().windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    #[should_panic(expected = "no components")]
    fn build_rejects_empty_spec() {
        let _ = WorkloadSpec::new("x", "x", 1, 10).build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn with_rejects_zero_weight() {
        let _ = WorkloadSpec::new("x", "x", 1, 10)
            .with(0.0, ComponentSpec::Random(RandomSpec::default()));
    }

    #[test]
    fn sample_gap_within_bounds() {
        let mut rng = rng_for(1, 2);
        for mean in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                let g = sample_gap(&mut rng, mean);
                assert!(g >= 1 && g <= mean + mean / 2 + 1, "gap {g} for mean {mean}");
            }
        }
    }
}
