//! Synthetic workload synthesis.
//!
//! A [`WorkloadSpec`] describes a workload as a weighted mixture of traffic
//! *components*, each modelling one traffic class the paper's system cache
//! observes:
//!
//! * [`FootprintSpec`] — revisited pages with stable footprint snapshots
//!   (Observation 1; the regularity SLP exploits).
//! * [`NeighborSpec`] — clusters of address-adjacent pages with similar
//!   footprints, touched (mostly) once (Observation 2; what TLP exploits).
//! * [`StreamSpec`] — sequential block streaming (GPU framebuffer/texture
//!   scans; what next-line/BOP-style prefetchers exploit).
//! * [`StrideSpec`] — constant-stride runs (DMA engines; BOP's home turf).
//! * [`RandomSpec`] — irregular pointer-chase-like traffic that no
//!   memory-side prefetcher can predict (it punishes aggressive ones).
//!
//! All generation is deterministic for a given spec (seeded `StdRng`s), so
//! every figure in the repository regenerates bit-identically.

mod footprint;
mod neighbor;
mod simple;

pub use footprint::FootprintSpec;
pub use neighbor::NeighborSpec;
pub use simple::{RandomSpec, StreamSpec, StrideSpec};

use planaria_common::{AccessKind, Cycle, DeviceId, MemAccess, PageNum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Trace;

/// Pages reserved per component region so components never alias.
const REGION_PAGES: u64 = 1 << 24;

/// One traffic class with its parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentSpec {
    /// Stable revisited intra-page footprints (SLP-friendly).
    Footprint(FootprintSpec),
    /// Clusters of similar neighbouring pages (TLP-friendly).
    Neighbor(NeighborSpec),
    /// Sequential streaming.
    Stream(StreamSpec),
    /// Constant-stride runs.
    Stride(StrideSpec),
    /// Irregular traffic.
    Random(RandomSpec),
}

impl ComponentSpec {
    fn generate(&self, seed: u64, count: usize, region_base: PageNum, out: &mut Vec<MemAccess>) {
        match self {
            ComponentSpec::Footprint(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Neighbor(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Stream(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Stride(s) => s.generate(seed, count, region_base, out),
            ComponentSpec::Random(s) => s.generate(seed, count, region_base, out),
        }
    }

    /// Returns a resumable generator for this component's access sequence.
    ///
    /// The generator emits exactly the sequence `generate` would produce,
    /// one access per call, which is what lets the streaming layer render
    /// a workload chunk-at-a-time without any change in output.
    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> ComponentGen {
        match self {
            ComponentSpec::Footprint(s) => ComponentGen::Footprint(s.generator(seed, region_base)),
            ComponentSpec::Neighbor(s) => ComponentGen::Neighbor(s.generator(seed, region_base)),
            ComponentSpec::Stream(s) => ComponentGen::Stream(s.generator(seed, region_base)),
            ComponentSpec::Stride(s) => ComponentGen::Stride(s.generator(seed, region_base)),
            ComponentSpec::Random(s) => ComponentGen::Random(s.generator(seed, region_base)),
        }
    }
}

/// A resumable per-component access generator (see [`ComponentSpec::generator`]).
///
/// Every variant owns its RNG and timeline state, so a prefix of calls to
/// [`ComponentGen::next_access`] is bit-identical to the same prefix of a
/// bulk `generate` — the property the streaming determinism tests pin.
pub(crate) enum ComponentGen {
    /// Footprint-snapshot traffic.
    Footprint(footprint::FootprintGen),
    /// Neighbouring-cluster traffic.
    Neighbor(neighbor::NeighborGen),
    /// Sequential streaming traffic.
    Stream(simple::StreamGen),
    /// Constant-stride traffic.
    Stride(simple::StrideGen),
    /// Irregular traffic.
    Random(simple::RandomGen),
}

impl ComponentGen {
    /// Emits the next access of the component's infinite sequence.
    pub(crate) fn next_access(&mut self) -> MemAccess {
        match self {
            ComponentGen::Footprint(g) => g.next_access(),
            ComponentGen::Neighbor(g) => g.next_access(),
            ComponentGen::Stream(g) => g.next_access(),
            ComponentGen::Stride(g) => g.next_access(),
            ComponentGen::Random(g) => g.next_access(),
        }
    }
}

/// A component together with its share of the workload's accesses.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedComponent {
    /// Relative weight (normalised over the spec's components).
    pub weight: f64,
    /// The traffic class.
    pub spec: ComponentSpec,
}

/// A deterministic description of a synthetic workload.
///
/// # Examples
///
/// ```
/// use planaria_trace::{ComponentSpec, WeightedComponent, WorkloadSpec};
/// use planaria_trace::synth::FootprintSpec;
///
/// let spec = WorkloadSpec::new("demo", "demo", 42, 5_000)
///     .with(1.0, ComponentSpec::Footprint(FootprintSpec::default()));
/// let trace = spec.build();
/// assert_eq!(trace.len(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadSpec {
    /// Full workload name (e.g. "Honor of Kings").
    pub name: String,
    /// Short label used in figures (e.g. "HoK").
    pub abbr: String,
    /// Master seed; all component RNGs derive from it.
    pub seed: u64,
    /// Number of accesses to synthesise.
    pub length: usize,
    /// The weighted traffic mix.
    pub components: Vec<WeightedComponent>,
}

impl WorkloadSpec {
    /// Creates an empty spec; add components with [`WorkloadSpec::with`].
    pub fn new(name: impl Into<String>, abbr: impl Into<String>, seed: u64, length: usize) -> Self {
        Self { name: name.into(), abbr: abbr.into(), seed, length, components: Vec::new() }
    }

    /// Adds a weighted component (builder style).
    #[must_use]
    pub fn with(mut self, weight: f64, spec: ComponentSpec) -> Self {
        assert!(weight > 0.0, "component weight must be positive");
        self.components.push(WeightedComponent { weight, spec });
        self
    }

    /// Returns a copy with a different target length.
    #[must_use]
    pub fn scaled(mut self, length: usize) -> Self {
        self.length = length;
        self
    }

    /// Renders the spec into a trace.
    ///
    /// Each component generates its share of accesses in a private address
    /// region on its own timeline; the mixer then merges all events in
    /// arrival order and truncates to the requested length.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no components.
    pub fn build(&self) -> Trace {
        let mut events = Vec::with_capacity(self.length + self.length / 8);
        for plan in self.plans() {
            plan.spec.generate(plan.seed, plan.share, plan.region_base, &mut events);
        }
        events.sort_by_key(|a| a.cycle);
        events.truncate(self.length);
        Trace::new(self.abbr.clone(), events)
    }

    /// Returns a pull-based stream rendering the same accesses as
    /// [`WorkloadSpec::build`], chunk-at-a-time, in O(components) memory.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_trace::stream::AccessStream;
    /// use planaria_trace::{ComponentSpec, WorkloadSpec};
    /// use planaria_trace::synth::StreamSpec;
    ///
    /// let spec = WorkloadSpec::new("demo", "demo", 42, 1_000)
    ///     .with(1.0, ComponentSpec::Stream(StreamSpec::default()));
    /// let mut stream = spec.stream();
    /// let mut chunk = Vec::new();
    /// let n = stream.next_chunk(256, &mut chunk);
    /// assert_eq!(n, 256);
    /// assert_eq!(chunk, spec.build().accesses()[..256]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the spec has no components.
    pub fn stream(&self) -> crate::stream::WorkloadStream {
        crate::stream::WorkloadStream::new(self)
    }

    /// Per-component generation plan shared by [`WorkloadSpec::build`] and
    /// [`WorkloadSpec::stream`]: the share overshoot, derived seed and
    /// private address region of each component. Keeping this in one place
    /// is what guarantees the two render paths agree bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no components.
    pub(crate) fn plans(&self) -> Vec<ComponentPlan<'_>> {
        assert!(!self.components.is_empty(), "workload spec has no components");
        let total_weight: f64 = self.components.iter().map(|c| c.weight).sum();
        self.components
            .iter()
            .enumerate()
            .map(|(i, wc)| ComponentPlan {
                spec: &wc.spec,
                // Overshoot each component slightly so truncation to
                // `length` after merging never under-fills the trace.
                share: (wc.weight / total_weight * self.length as f64).ceil() as usize + 16,
                seed: self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64),
                region_base: PageNum::new((i as u64 + 1) * REGION_PAGES),
            })
            .collect()
    }
}

/// One component's slice of a [`WorkloadSpec`] render (see `plans`).
pub(crate) struct ComponentPlan<'a> {
    /// The component to render.
    pub(crate) spec: &'a ComponentSpec,
    /// Number of accesses the component contributes before the merge.
    pub(crate) share: usize,
    /// Derived RNG seed.
    pub(crate) seed: u64,
    /// Base page of the component's private address region.
    pub(crate) region_base: PageNum,
}

/// Shared per-access envelope: device, read ratio and timing gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Envelope {
    /// Issuing device recorded in the trace.
    pub device: DeviceId,
    /// Probability that an access is a read.
    pub read_ratio: f64,
}

impl Default for Envelope {
    fn default() -> Self {
        Self { device: DeviceId::Cpu(0), read_ratio: 0.8 }
    }
}

impl Envelope {
    pub(crate) fn kind(&self, rng: &mut StdRng) -> AccessKind {
        if rng.gen_bool(self.read_ratio.clamp(0.0, 1.0)) {
            AccessKind::Read
        } else {
            AccessKind::Write
        }
    }
}

/// Samples a gap uniformly in `[mean/2, 3*mean/2]`, at least 1 cycle.
pub(crate) fn sample_gap(rng: &mut StdRng, mean: u64) -> u64 {
    let mean = mean.max(1);
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    rng.gen_range(lo..=hi.max(lo))
}

pub(crate) fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Builds one access at the current clock and advances the component clock.
pub(crate) fn emit_one(
    rng: &mut StdRng,
    env: &Envelope,
    addr: planaria_common::PhysAddr,
    clock: &mut Cycle,
    mean_gap: u64,
) -> MemAccess {
    let access = MemAccess::new(addr, env.kind(rng), env.device, *clock);
    *clock += sample_gap(rng, mean_gap);
    access
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new("test", "t", 7, 2_000)
            .with(2.0, ComponentSpec::Footprint(FootprintSpec::default()))
            .with(1.0, ComponentSpec::Stream(StreamSpec::default()))
            .with(0.5, ComponentSpec::Random(RandomSpec::default()))
    }

    #[test]
    fn build_produces_exact_length() {
        let t = small_spec().build();
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_spec().build();
        let b = small_spec().build();
        assert_eq!(a.accesses(), b.accesses());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_spec().build();
        let mut spec = small_spec();
        spec.seed = 8;
        let b = spec.build();
        assert_ne!(a.accesses(), b.accesses());
    }

    #[test]
    fn components_use_disjoint_regions() {
        let t = small_spec().build();
        // Every page must fall in exactly one component region.
        for a in t.iter() {
            let region = a.addr.page().as_u64() / REGION_PAGES;
            assert!((1..=3).contains(&region), "page in unexpected region {region}");
        }
    }

    #[test]
    fn accesses_sorted_by_cycle() {
        let t = small_spec().build();
        assert!(t.accesses().windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    #[should_panic(expected = "no components")]
    fn build_rejects_empty_spec() {
        let _ = WorkloadSpec::new("x", "x", 1, 10).build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn with_rejects_zero_weight() {
        let _ = WorkloadSpec::new("x", "x", 1, 10)
            .with(0.0, ComponentSpec::Random(RandomSpec::default()));
    }

    #[test]
    fn sample_gap_within_bounds() {
        let mut rng = rng_for(1, 2);
        for mean in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                let g = sample_gap(&mut rng, mean);
                assert!(g >= 1 && g <= mean + mean / 2 + 1, "gap {g} for mean {mean}");
            }
        }
    }
}
