//! The neighbouring-page traffic component (Observation 2).
//!
//! Models the paper's Figure 5/6 behaviour: *clusters* of contiguous pages
//! share a common footprint pattern with small per-page noise. Pages within
//! a cluster are touched in address order and (by default) only once, so a
//! history-based intra-page prefetcher (SLP) never accumulates metadata for
//! them — but by the time page *i+1* is touched, page *i* already sits in
//! TLP's Recent Page Table with a near-identical bitmap, so TLP can transfer
//! the pattern across the page boundary after the first few confirming
//! blocks.

use planaria_common::{Bitmap64, BlockIndex, Cycle, MemAccess, PageNum, PhysAddr, BLOCKS_PER_PAGE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use super::{emit_one, rng_for, sample_gap, Envelope};

/// Parameters of the neighbouring-cluster component.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NeighborSpec {
    /// Contiguous pages per cluster.
    pub cluster_span: usize,
    /// Page-number gap between consecutive clusters.
    pub cluster_gap: u64,
    /// Blocks in the shared cluster pattern (out of 64).
    pub footprint_blocks: usize,
    /// Per-page deviation from the cluster pattern, in swapped blocks.
    /// The paper's learnability threshold is a bitmap difference of ≤ 4
    /// bits, i.e. `noise_bits ≤ 2` keeps neighbours learnable.
    pub noise_bits: usize,
    /// Visits per page (1 = one-shot pages, the pure TLP case).
    pub revisits: usize,
    /// Maximum page spacing within a cluster: each cluster draws a spacing
    /// uniformly from `1..=page_spacing_max`, so learnable pairs occur at a
    /// range of page distances (the paper's Figure 5 shows the learnable
    /// fraction growing from distance 4 to 64 — neighbours are not all
    /// adjacent).
    pub page_spacing_max: u64,
    /// Mean cycles between blocks within one visit.
    pub intra_gap: u64,
    /// Mean cycles between page visits.
    pub inter_gap: u64,
    /// Device / read-ratio envelope.
    pub envelope: Envelope,
}

impl Default for NeighborSpec {
    /// Clusters of 16 one-shot pages whose bitmaps differ by ≤ 2 blocks —
    /// learnable neighbours under the paper's 4-bit threshold.
    fn default() -> Self {
        Self {
            cluster_span: 16,
            cluster_gap: 48,
            footprint_blocks: 16,
            noise_bits: 1,
            revisits: 1,
            page_spacing_max: 1,
            intra_gap: 120,
            inter_gap: 800,
            envelope: Envelope::default(),
        }
    }
}

impl NeighborSpec {
    pub(crate) fn generate(
        &self,
        seed: u64,
        count: usize,
        region_base: PageNum,
        out: &mut Vec<MemAccess>,
    ) {
        let mut gen = self.generator(seed, region_base);
        out.reserve(count);
        for _ in 0..count {
            out.push(gen.next_access());
        }
    }

    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> NeighborGen {
        assert!(self.cluster_span > 0, "cluster_span must be positive");
        assert!(
            self.footprint_blocks > 0 && self.footprint_blocks <= BLOCKS_PER_PAGE,
            "footprint_blocks out of range"
        );
        assert!(self.revisits > 0, "revisits must be positive");
        assert!(self.page_spacing_max > 0, "page_spacing_max must be positive");
        NeighborGen {
            spec: *self,
            rng: rng_for(seed, 0xBEEF),
            region_base,
            stride: self.cluster_span as u64 * self.page_spacing_max + self.cluster_gap,
            cluster_idx: 0,
            base_page: 0,
            spacing: 1,
            patterns: Vec::new(),
            visit_order: Vec::new(),
            // Zero rounds left and an exhausted (empty) visit order force a
            // fresh cluster on the first call.
            rounds_left: 0,
            next_vi: 0,
            page: PageNum::new(0),
            blocks: Vec::new(),
            block_pos: 0,
            clock: Cycle::ZERO,
            started: false,
        }
    }
}

/// Resumable [`NeighborSpec`] generator.
///
/// Cluster setup (spacing, base pattern, per-page noisy patterns) and the
/// per-round visit shuffle are drawn lazily, exactly when the bulk
/// `generate` loop would draw them, so any prefix of emitted accesses is
/// bit-identical to the materialized sequence.
pub(crate) struct NeighborGen {
    spec: NeighborSpec,
    rng: StdRng,
    region_base: PageNum,
    stride: u64,
    cluster_idx: u64,
    base_page: u64,
    spacing: u64,
    patterns: Vec<Bitmap64>,
    /// Visit order within the current cluster; reset to identity per
    /// cluster and shuffled in place each round (cumulative within the
    /// cluster), matching the bulk loop.
    visit_order: Vec<usize>,
    rounds_left: usize,
    next_vi: usize,
    page: PageNum,
    blocks: Vec<usize>,
    block_pos: usize,
    clock: Cycle,
    started: bool,
}

impl NeighborGen {
    pub(crate) fn next_access(&mut self) -> MemAccess {
        if self.block_pos == self.blocks.len() {
            // Between visits: close out the previous one, then advance to
            // the next page — starting a new round or cluster as needed.
            if self.started {
                self.clock += sample_gap(&mut self.rng, self.spec.inter_gap);
            }
            if self.next_vi == self.visit_order.len() {
                if self.rounds_left == 0 {
                    // Fresh cluster of similar pages, spaced `spacing` apart.
                    self.base_page = self.region_base.as_u64() + self.cluster_idx * self.stride;
                    self.spacing = self.rng.gen_range(1..=self.spec.page_spacing_max);
                    self.cluster_idx += 1;
                    let base_pattern = random_footprint(&mut self.rng, self.spec.footprint_blocks);
                    // Per-page bitmaps: base pattern, up to `noise_bits` swaps.
                    self.patterns.clear();
                    self.patterns.extend(
                        (0..self.spec.cluster_span)
                            .map(|_| noisy(&mut self.rng, base_pattern, self.spec.noise_bits)),
                    );
                    self.visit_order.clear();
                    self.visit_order.extend(0..self.spec.cluster_span);
                    self.rounds_left = self.spec.revisits;
                }
                // Pages of a cluster are visited in *random* order: the RPT
                // still holds previously-visited neighbours (TLP's donor),
                // but there is no fixed cross-page stride for an offset
                // prefetcher to lock onto — matching the paper's premise
                // that neighbour similarity is a bitmap property, not an
                // address-sequence property.
                self.visit_order.shuffle(&mut self.rng);
                self.next_vi = 0;
                self.rounds_left -= 1;
            }
            let pi = self.visit_order[self.next_vi];
            self.next_vi += 1;
            self.page = PageNum::new(self.base_page + pi as u64 * self.spacing);
            self.blocks.clear();
            self.blocks.extend(self.patterns[pi].iter_set());
            self.blocks.shuffle(&mut self.rng);
            self.block_pos = 0;
            self.started = true;
        }
        let b = self.blocks[self.block_pos];
        self.block_pos += 1;
        let addr = PhysAddr::from_parts(self.page, BlockIndex::new(b));
        emit_one(&mut self.rng, &self.spec.envelope, addr, &mut self.clock, self.spec.intra_gap)
    }
}

fn random_footprint(rng: &mut rand::rngs::StdRng, blocks: usize) -> Bitmap64 {
    let mut idx: Vec<usize> = (0..BLOCKS_PER_PAGE).collect();
    idx.shuffle(rng);
    idx.into_iter().take(blocks).collect()
}

/// Returns `pattern` with up to `bits` blocks swapped for fresh ones.
fn noisy(rng: &mut rand::rngs::StdRng, pattern: Bitmap64, bits: usize) -> Bitmap64 {
    let mut fp = pattern;
    for _ in 0..bits {
        let set: Vec<usize> = fp.iter_set().collect();
        let unset: Vec<usize> = (0..BLOCKS_PER_PAGE).filter(|&i| !fp.get(i)).collect();
        if set.is_empty() || unset.is_empty() {
            break;
        }
        let drop = set[rng.gen_range(0..set.len())];
        let add = unset[rng.gen_range(0..unset.len())];
        fp.clear(drop);
        fp.set(add);
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn gen(spec: &NeighborSpec, count: usize) -> Vec<MemAccess> {
        let mut out = Vec::new();
        spec.generate(5, count, PageNum::new(2 << 24), &mut out);
        out
    }

    #[test]
    fn generates_requested_count() {
        assert_eq!(gen(&NeighborSpec::default(), 700).len(), 700);
    }

    #[test]
    fn one_shot_pages_are_not_revisited_after_completion() {
        let spec = NeighborSpec { revisits: 1, ..NeighborSpec::default() };
        let out = gen(&spec, 2000);
        // Once a page's last access has happened, it never reappears:
        // page visit ranges must not interleave with later visits of the
        // same page (they are one-shot bursts).
        let mut last_seen: BTreeMap<u64, usize> = BTreeMap::new();
        let mut first_seen: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, a) in out.iter().enumerate() {
            let p = a.addr.page().as_u64();
            first_seen.entry(p).or_insert(i);
            last_seen.insert(p, i);
        }
        for (p, &first) in &first_seen {
            let last = last_seen[p];
            // A one-shot visit of ≤16 blocks must span ≤16 trace slots.
            assert!(last - first < 16, "page {p} revisited: span {}", last - first);
        }
    }

    #[test]
    fn neighbouring_pages_have_similar_bitmaps() {
        let spec = NeighborSpec { noise_bits: 1, ..NeighborSpec::default() };
        let out = gen(&spec, 16 * 16); // one full cluster
        let mut bitmaps: BTreeMap<u64, Bitmap64> = BTreeMap::new();
        for a in &out {
            bitmaps
                .entry(a.addr.page().as_u64())
                .or_insert(Bitmap64::EMPTY)
                .set(a.addr.block_index().as_usize());
        }
        let pages: Vec<u64> = bitmaps.keys().copied().collect();
        let mut checked = 0;
        for w in pages.windows(2) {
            if w[1] == w[0] + 1 {
                let d = bitmaps[&w[0]].hamming_distance(bitmaps[&w[1]]);
                // One swap each from the base pattern => at most 4 differing bits.
                assert!(d <= 4, "adjacent pages differ by {d} bits");
                checked += 1;
            }
        }
        assert!(checked >= 4, "too few adjacent pairs to check ({checked})");
    }

    #[test]
    fn clusters_are_separated_in_address_space() {
        let spec = NeighborSpec { cluster_span: 4, cluster_gap: 100, ..NeighborSpec::default() };
        let out = gen(&spec, 800);
        let pages: std::collections::BTreeSet<u64> =
            out.iter().map(|a| a.addr.page().as_u64()).collect();
        let base = 2u64 << 24;
        for p in pages {
            let off = (p - base) % 104;
            assert!(off < 4, "page offset {off} outside cluster span");
        }
    }

    #[test]
    fn noisy_preserves_size() {
        let mut rng = rng_for(3, 4);
        let base = random_footprint(&mut rng, 16);
        let n = noisy(&mut rng, base, 2);
        assert_eq!(n.count(), 16);
        assert!(base.hamming_distance(n) <= 4);
    }

    #[test]
    #[should_panic(expected = "revisits")]
    fn rejects_zero_revisits() {
        let spec = NeighborSpec { revisits: 0, ..NeighborSpec::default() };
        let _ = gen(&spec, 10);
    }
}
