//! Streaming, strided and irregular traffic components.
//!
//! These model the background traffic classes that a memory-side system
//! cache observes from the GPU, DMA engines and pointer-heavy CPU code.
//! They are what the delta-based baselines (BOP, SPP, next-line) are built
//! for — and what irregular traffic punishes them with.

use planaria_common::{
    Cycle, MemAccess, PageNum, PhysAddr, BLOCKS_PER_PAGE, BLOCK_SIZE, PAGE_SIZE,
};
use rand::rngs::StdRng;
use rand::Rng;

use super::{emit_one, rng_for, sample_gap, Envelope};

/// Sequential block streaming (e.g. GPU framebuffer scans).
///
/// Emits runs of consecutive blocks, then jumps to a fresh area. BOP learns
/// offset +1 and next-line prefetchers shine here.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamSpec {
    /// Blocks per sequential run.
    pub run_blocks: usize,
    /// Mean cycles between consecutive blocks.
    pub gap: u64,
    /// Mean cycles between runs.
    pub run_gap: u64,
    /// Device / read-ratio envelope.
    pub envelope: Envelope,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            run_blocks: 256,
            gap: 40,
            run_gap: 400,
            envelope: Envelope { device: planaria_common::DeviceId::Gpu, read_ratio: 0.7 },
        }
    }
}

impl StreamSpec {
    pub(crate) fn generate(
        &self,
        seed: u64,
        count: usize,
        region_base: PageNum,
        out: &mut Vec<MemAccess>,
    ) {
        let mut gen = self.generator(seed, region_base);
        out.reserve(count);
        for _ in 0..count {
            out.push(gen.next_access());
        }
    }

    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> StreamGen {
        assert!(self.run_blocks > 0, "run_blocks must be positive");
        StreamGen {
            spec: *self,
            rng: rng_for(seed, 0x57EA),
            clock: Cycle::ZERO,
            run_idx: 0,
            block: 0,
            // Runs are spread across the region; each run gets its own page span.
            pages_per_run: (self.run_blocks as u64 / BLOCKS_PER_PAGE as u64) + 2,
            region_base,
        }
    }
}

/// Resumable [`StreamSpec`] generator.
pub(crate) struct StreamGen {
    spec: StreamSpec,
    rng: StdRng,
    clock: Cycle,
    run_idx: u64,
    block: usize,
    pages_per_run: u64,
    region_base: PageNum,
}

impl StreamGen {
    pub(crate) fn next_access(&mut self) -> MemAccess {
        let start =
            self.region_base.as_u64() * PAGE_SIZE + self.run_idx * self.pages_per_run * PAGE_SIZE;
        let addr = PhysAddr::new(start + self.block as u64 * BLOCK_SIZE);
        let access =
            emit_one(&mut self.rng, &self.spec.envelope, addr, &mut self.clock, self.spec.gap);
        self.block += 1;
        if self.block == self.spec.run_blocks {
            self.block = 0;
            self.run_idx += 1;
            self.clock += sample_gap(&mut self.rng, self.spec.run_gap);
        }
        access
    }
}

/// Constant-stride runs (e.g. DMA or matrix-walk traffic).
///
/// BOP's offset learning locks onto `stride_blocks`; next-line prefetchers
/// mostly miss when the stride exceeds one block.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrideSpec {
    /// Stride between accesses, in 64 B blocks.
    pub stride_blocks: usize,
    /// Accesses per run.
    pub run_len: usize,
    /// Mean cycles between accesses.
    pub gap: u64,
    /// Mean cycles between runs.
    pub run_gap: u64,
    /// Device / read-ratio envelope.
    pub envelope: Envelope,
}

impl Default for StrideSpec {
    fn default() -> Self {
        Self {
            stride_blocks: 4,
            run_len: 128,
            gap: 60,
            run_gap: 500,
            envelope: Envelope { device: planaria_common::DeviceId::Dsp, read_ratio: 0.85 },
        }
    }
}

impl StrideSpec {
    pub(crate) fn generate(
        &self,
        seed: u64,
        count: usize,
        region_base: PageNum,
        out: &mut Vec<MemAccess>,
    ) {
        let mut gen = self.generator(seed, region_base);
        out.reserve(count);
        for _ in 0..count {
            out.push(gen.next_access());
        }
    }

    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> StrideGen {
        assert!(self.stride_blocks > 0, "stride_blocks must be positive");
        assert!(self.run_len > 0, "run_len must be positive");
        let span_bytes = (self.stride_blocks * self.run_len) as u64 * BLOCK_SIZE;
        StrideGen {
            spec: *self,
            rng: rng_for(seed, 0x57D1),
            clock: Cycle::ZERO,
            run_idx: 0,
            pos: 0,
            pages_per_run: span_bytes / PAGE_SIZE + 2,
            region_base,
        }
    }
}

/// Resumable [`StrideSpec`] generator.
pub(crate) struct StrideGen {
    spec: StrideSpec,
    rng: StdRng,
    clock: Cycle,
    run_idx: u64,
    pos: usize,
    pages_per_run: u64,
    region_base: PageNum,
}

impl StrideGen {
    pub(crate) fn next_access(&mut self) -> MemAccess {
        let start =
            self.region_base.as_u64() * PAGE_SIZE + self.run_idx * self.pages_per_run * PAGE_SIZE;
        let addr = PhysAddr::new(start + (self.pos * self.spec.stride_blocks) as u64 * BLOCK_SIZE);
        let access =
            emit_one(&mut self.rng, &self.spec.envelope, addr, &mut self.clock, self.spec.gap);
        self.pos += 1;
        if self.pos == self.spec.run_len {
            self.pos = 0;
            self.run_idx += 1;
            self.clock += sample_gap(&mut self.rng, self.spec.run_gap);
        }
        access
    }
}

/// Irregular traffic: uniform random blocks over a large page pool.
///
/// No memory-side prefetcher can predict it; aggressive prefetchers that
/// fire anyway pay for it in traffic and pollution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomSpec {
    /// Pool size in pages.
    pub pages: usize,
    /// Mean cycles between accesses.
    pub gap: u64,
    /// Page-number spacing between pool pages (1 = contiguous). Irregular
    /// heaps are allocator-scattered; spacing the pool keeps sparse random
    /// bitmaps from forming accidental "learnable neighbour" pairs.
    pub page_spread: u64,
    /// Device / read-ratio envelope.
    pub envelope: Envelope,
}

impl Default for RandomSpec {
    fn default() -> Self {
        Self {
            pages: 1 << 16,
            gap: 200,
            page_spread: 1,
            envelope: Envelope { device: planaria_common::DeviceId::Cpu(1), read_ratio: 0.75 },
        }
    }
}

impl RandomSpec {
    pub(crate) fn generate(
        &self,
        seed: u64,
        count: usize,
        region_base: PageNum,
        out: &mut Vec<MemAccess>,
    ) {
        let mut gen = self.generator(seed, region_base);
        out.reserve(count);
        for _ in 0..count {
            out.push(gen.next_access());
        }
    }

    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> RandomGen {
        assert!(self.pages > 0, "pool must be non-empty");
        assert!(self.page_spread > 0, "page_spread must be positive");
        RandomGen { spec: *self, rng: rng_for(seed, 0x4A4D), clock: Cycle::ZERO, region_base }
    }
}

/// Resumable [`RandomSpec`] generator.
pub(crate) struct RandomGen {
    spec: RandomSpec,
    rng: StdRng,
    clock: Cycle,
    region_base: PageNum,
}

impl RandomGen {
    pub(crate) fn next_access(&mut self) -> MemAccess {
        let page = self.region_base.as_u64()
            + self.rng.gen_range(0..self.spec.pages as u64) * self.spec.page_spread;
        let block = self.rng.gen_range(0..BLOCKS_PER_PAGE as u64);
        let addr = PhysAddr::new(page * PAGE_SIZE + block * BLOCK_SIZE);
        emit_one(&mut self.rng, &self.spec.envelope, addr, &mut self.clock, self.spec.gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_sequential_within_runs() {
        let spec = StreamSpec { run_blocks: 64, ..StreamSpec::default() };
        let mut out = Vec::new();
        spec.generate(1, 64, PageNum::new(1 << 24), &mut out);
        assert_eq!(out.len(), 64);
        for w in out.windows(2) {
            assert_eq!(w[1].addr.as_u64() - w[0].addr.as_u64(), BLOCK_SIZE);
        }
    }

    #[test]
    fn stream_runs_do_not_overlap() {
        let spec = StreamSpec { run_blocks: 10, ..StreamSpec::default() };
        let mut out = Vec::new();
        spec.generate(1, 50, PageNum::new(1 << 24), &mut out);
        let unique: std::collections::HashSet<u64> = out.iter().map(|a| a.addr.as_u64()).collect();
        assert_eq!(unique.len(), 50, "runs reused addresses");
    }

    #[test]
    fn stride_spacing_matches() {
        let spec = StrideSpec { stride_blocks: 4, run_len: 32, ..StrideSpec::default() };
        let mut out = Vec::new();
        spec.generate(1, 32, PageNum::new(1 << 24), &mut out);
        for w in out.windows(2) {
            assert_eq!(w[1].addr.as_u64() - w[0].addr.as_u64(), 4 * BLOCK_SIZE);
        }
    }

    #[test]
    fn random_stays_in_pool() {
        let spec = RandomSpec { pages: 16, ..RandomSpec::default() };
        let mut out = Vec::new();
        spec.generate(1, 500, PageNum::new(1 << 24), &mut out);
        for a in &out {
            let p = a.addr.page().as_u64();
            assert!((1 << 24..(1 << 24) + 16).contains(&p));
        }
    }

    #[test]
    fn random_is_block_aligned() {
        let spec = RandomSpec::default();
        let mut out = Vec::new();
        spec.generate(1, 100, PageNum::new(1 << 24), &mut out);
        for a in &out {
            assert_eq!(a.addr.as_u64() % BLOCK_SIZE, 0);
        }
    }

    #[test]
    fn all_components_monotonic_in_time() {
        let mut out = Vec::new();
        StreamSpec::default().generate(1, 200, PageNum::new(1 << 24), &mut out);
        StrideSpec::default().generate(1, 200, PageNum::new(2 << 24), &mut out);
        // (separate timelines; check each half individually)
        assert!(out[..200].windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(out[200..].windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stride_rejects_zero() {
        let spec = StrideSpec { stride_blocks: 0, ..StrideSpec::default() };
        let mut out = Vec::new();
        spec.generate(1, 10, PageNum::new(1 << 24), &mut out);
    }
}
