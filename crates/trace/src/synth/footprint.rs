//! The footprint-snapshot traffic component (Observation 1).
//!
//! Models the paper's Figure 2 behaviour: a pool of pages, each with a
//! stable *footprint snapshot* (a fixed set of blocks). Pages are revisited
//! in rounds (long reuse distance); within a visit the snapshot's blocks
//! arrive in a **shuffled, non-deterministic order** over a brief interval,
//! which is exactly what defeats delta-sequence prefetchers while leaving
//! the bitmap pattern fully predictable for SLP.
//!
//! Snapshot *stability* is parameterised: with probability
//! [`FootprintSpec::mutation_prob`] a revisit first swaps
//! [`FootprintSpec::mutation_bits`] blocks of the snapshot for fresh ones.
//! The expected window-overlap rate measured by the Figure 4 methodology is
//! therefore roughly `1 − mutation_prob × mutation_bits / footprint_blocks`,
//! which is how the per-app overlap levels of Figure 4 are dialled in.

use planaria_common::{Bitmap64, BlockIndex, Cycle, MemAccess, PageNum, PhysAddr, BLOCKS_PER_PAGE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use super::{emit_one, rng_for, sample_gap, Envelope};

/// Parameters of the footprint component.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FootprintSpec {
    /// Number of pages in the revisited pool.
    pub pages: usize,
    /// Blocks per snapshot (out of 64).
    pub footprint_blocks: usize,
    /// Probability that a revisit mutates the snapshot first.
    pub mutation_prob: f64,
    /// Blocks swapped per mutation.
    pub mutation_bits: usize,
    /// Mean cycles between blocks within one visit.
    pub intra_gap: u64,
    /// Mean cycles between consecutive page visits.
    pub inter_gap: u64,
    /// Page-number spacing between pool pages (1 = contiguous).
    ///
    /// Physical pages of a mobile app's hot working set are scattered by
    /// the allocator; spacing the pool out removes the artificial
    /// cross-page adjacency that a contiguous pool would hand to offset
    /// prefetchers.
    pub page_spread: u64,
    /// Device / read-ratio envelope.
    pub envelope: Envelope,
}

impl Default for FootprintSpec {
    /// A medium-size pool whose snapshots overlap ≈94% between visits —
    /// in the middle of the paper's Figure 4 range.
    fn default() -> Self {
        Self {
            pages: 2048,
            footprint_blocks: 16,
            mutation_prob: 0.5,
            mutation_bits: 2,
            intra_gap: 60,
            inter_gap: 600,
            page_spread: 1,
            envelope: Envelope::default(),
        }
    }
}

impl FootprintSpec {
    /// Expected Figure-4-style overlap rate implied by the parameters.
    pub fn expected_overlap(&self) -> f64 {
        1.0 - self.mutation_prob * self.mutation_bits as f64 / self.footprint_blocks as f64
    }

    pub(crate) fn generate(
        &self,
        seed: u64,
        count: usize,
        region_base: PageNum,
        out: &mut Vec<MemAccess>,
    ) {
        let mut gen = self.generator(seed, region_base);
        out.reserve(count);
        for _ in 0..count {
            out.push(gen.next_access());
        }
    }

    pub(crate) fn generator(&self, seed: u64, region_base: PageNum) -> FootprintGen {
        assert!(self.pages > 0, "footprint pool must be non-empty");
        assert!(
            self.footprint_blocks > 0 && self.footprint_blocks <= BLOCKS_PER_PAGE,
            "footprint_blocks out of range"
        );
        assert!(self.page_spread > 0, "page_spread must be positive");
        let mut rng = rng_for(seed, 0x0F00);
        // Per-page stable snapshots.
        let snapshots: Vec<Bitmap64> =
            (0..self.pages).map(|_| random_footprint(&mut rng, self.footprint_blocks)).collect();
        let order: Vec<usize> = (0..self.pages).collect();
        FootprintGen {
            spec: *self,
            rng,
            region_base,
            snapshots,
            // `next_pi == order.len()` forces the round-start shuffle on
            // the first call, matching the bulk loop's draw order.
            next_pi: order.len(),
            order,
            page: PageNum::new(0),
            blocks: Vec::new(),
            block_pos: 0,
            clock: Cycle::ZERO,
            started: false,
        }
    }
}

/// Resumable [`FootprintSpec`] generator.
///
/// Visit boundaries are prepared lazily: the inter-visit gap, the per-round
/// pool shuffle and the snapshot mutation are all drawn exactly when the
/// bulk `generate` loop would draw them, so any prefix of emitted accesses
/// is bit-identical to the materialized sequence.
pub(crate) struct FootprintGen {
    spec: FootprintSpec,
    rng: StdRng,
    region_base: PageNum,
    snapshots: Vec<Bitmap64>,
    /// Visit order of the current round; shuffled in place each round, so
    /// its state is cumulative across rounds.
    order: Vec<usize>,
    next_pi: usize,
    page: PageNum,
    blocks: Vec<usize>,
    block_pos: usize,
    clock: Cycle,
    started: bool,
}

impl FootprintGen {
    pub(crate) fn next_access(&mut self) -> MemAccess {
        if self.block_pos == self.blocks.len() {
            // Between visits: close out the previous one, then prepare the
            // next page's shuffled block burst.
            if self.started {
                self.clock += sample_gap(&mut self.rng, self.spec.inter_gap);
            }
            if self.next_pi == self.order.len() {
                // A round visits every page once, in fresh random order:
                // the reuse distance of a snapshot is the whole pool.
                self.order.shuffle(&mut self.rng);
                self.next_pi = 0;
            }
            let pi = self.order[self.next_pi];
            self.next_pi += 1;
            // Occasional drift keeps the snapshot's overlap below 100%.
            if self.rng.gen_bool(self.spec.mutation_prob.clamp(0.0, 1.0)) {
                mutate_footprint(&mut self.rng, &mut self.snapshots[pi], self.spec.mutation_bits);
            }
            self.page = PageNum::new(self.region_base.as_u64() + pi as u64 * self.spec.page_spread);
            self.blocks.clear();
            self.blocks.extend(self.snapshots[pi].iter_set());
            self.blocks.shuffle(&mut self.rng); // non-deterministic intra-visit order
            self.block_pos = 0;
            self.started = true;
        }
        let b = self.blocks[self.block_pos];
        self.block_pos += 1;
        let addr = PhysAddr::from_parts(self.page, BlockIndex::new(b));
        emit_one(&mut self.rng, &self.spec.envelope, addr, &mut self.clock, self.spec.intra_gap)
    }
}

/// Draws `blocks` distinct block indices as a bitmap.
fn random_footprint(rng: &mut rand::rngs::StdRng, blocks: usize) -> Bitmap64 {
    let mut idx: Vec<usize> = (0..BLOCKS_PER_PAGE).collect();
    idx.shuffle(rng);
    idx.into_iter().take(blocks).collect()
}

/// Swaps up to `bits` set blocks for unset ones, preserving footprint size.
fn mutate_footprint(rng: &mut rand::rngs::StdRng, fp: &mut Bitmap64, bits: usize) {
    for _ in 0..bits {
        let set: Vec<usize> = fp.iter_set().collect();
        if set.is_empty() || set.len() == BLOCKS_PER_PAGE {
            return;
        }
        let unset: Vec<usize> = (0..BLOCKS_PER_PAGE).filter(|&i| !fp.get(i)).collect();
        let drop = set[rng.gen_range(0..set.len())];
        let add = unset[rng.gen_range(0..unset.len())];
        fp.clear(drop);
        fp.set(add);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn gen(spec: &FootprintSpec, count: usize) -> Vec<MemAccess> {
        let mut out = Vec::new();
        spec.generate(99, count, PageNum::new(1 << 24), &mut out);
        out
    }

    #[test]
    fn generates_requested_count() {
        let out = gen(&FootprintSpec::default(), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn addresses_stay_in_region_and_pool() {
        let spec = FootprintSpec { pages: 8, ..FootprintSpec::default() };
        let out = gen(&spec, 500);
        for a in &out {
            let p = a.addr.page().as_u64();
            assert!((1 << 24..(1 << 24) + 8).contains(&p), "page {p} outside pool");
        }
    }

    #[test]
    fn snapshot_is_stable_without_mutation() {
        let spec = FootprintSpec {
            pages: 4,
            mutation_prob: 0.0,
            footprint_blocks: 8,
            ..FootprintSpec::default()
        };
        let out = gen(&spec, 4 * 8 * 5); // five full rounds
                                         // Each page's set of blocks must be identical across visits.
        let mut per_page: HashMap<u64, Bitmap64> = HashMap::new();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for a in &out {
            let p = a.addr.page().as_u64();
            per_page.entry(p).or_insert(Bitmap64::EMPTY).set(a.addr.block_index().as_usize());
            *counts.entry(p).or_default() += 1;
        }
        for (p, bm) in per_page {
            // With zero mutation, total distinct blocks == footprint size.
            assert_eq!(bm.count(), 8, "page {p} drifted");
            assert!(counts[&p] >= 8, "page {p} was not revisited");
        }
    }

    #[test]
    fn mutation_changes_snapshot_but_keeps_size() {
        let mut rng = rng_for(1, 2);
        let mut fp = random_footprint(&mut rng, 16);
        let before = fp;
        mutate_footprint(&mut rng, &mut fp, 2);
        assert_eq!(fp.count(), 16);
        assert!(before.hamming_distance(fp) > 0);
        assert!(before.hamming_distance(fp) <= 4); // 2 swaps => at most 4 bits
    }

    #[test]
    fn expected_overlap_formula() {
        let spec = FootprintSpec {
            footprint_blocks: 16,
            mutation_prob: 0.5,
            mutation_bits: 2,
            ..FootprintSpec::default()
        };
        assert!((spec.expected_overlap() - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn cycles_are_monotonic() {
        let out = gen(&FootprintSpec::default(), 300);
        assert!(out.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_pool() {
        let spec = FootprintSpec { pages: 0, ..FootprintSpec::default() };
        let _ = gen(&spec, 10);
    }
}
