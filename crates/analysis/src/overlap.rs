//! The Figure 3/4 overlap-rate methodology.
//!
//! For each page the method (paper §3.2, Figure 3):
//!
//! 1. determines the *window size* as the number of blocks the page
//!    typically touches (here: the page's distinct-block count, clamped to
//!    a sane range);
//! 2. chops the page's access stream into consecutive windows of that many
//!    accesses and forms the accessed-block bitmap of each window;
//! 3. scores consecutive window pairs with
//!    `|prev ∩ cur| / |cur|` (the overlap rate);
//! 4. averages over all pairs of all pages.
//!
//! A high overlap rate means footprint snapshots are stable across program
//! phases, validating page-number-only pattern signatures.

use std::collections::HashMap;

use planaria_common::Bitmap64;
use planaria_trace::Trace;

/// Result of the overlap analysis on one trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OverlapReport {
    /// Workload name.
    pub workload: String,
    /// Mean overlap rate over all window pairs (the Figure 4 bar).
    pub mean_overlap: f64,
    /// Number of pages that produced at least two windows.
    pub pages_measured: usize,
    /// Total window pairs scored.
    pub window_pairs: usize,
}

/// Minimum window size: pages touching fewer blocks carry no signal.
const MIN_WINDOW: usize = 4;
/// Maximum window size: one page's worth of blocks.
const MAX_WINDOW: usize = 64;

/// Runs the Figure 4 methodology over a trace.
///
/// Pages with fewer than two complete windows are skipped (they have no
/// "preceding window" to compare against).
pub fn overlap_rate(trace: &Trace) -> OverlapReport {
    // Per-page sequence of block indices in arrival order.
    let mut sequences: HashMap<u64, Vec<u8>> = HashMap::new();
    for a in trace.iter() {
        sequences
            .entry(a.addr.page().as_u64())
            .or_default()
            .push(a.addr.block_index().as_usize() as u8);
    }

    // Fix the page order before accumulating: float addition is not
    // associative, so iterating the hash map directly would tie the
    // reported mean to the hasher.
    let mut ordered: Vec<(u64, Vec<u8>)> = sequences.into_iter().collect();
    ordered.sort_unstable_by_key(|(page, _)| *page);

    let mut pair_sum = 0.0;
    let mut pairs = 0usize;
    let mut pages = 0usize;
    for (_, seq) in &ordered {
        // Step 1: window size = the page's typical footprint size.
        let mut distinct = [false; 64];
        for &b in seq {
            distinct[b as usize] = true;
        }
        let window = distinct.iter().filter(|&&d| d).count().clamp(MIN_WINDOW, MAX_WINDOW);
        if seq.len() < 2 * window {
            continue;
        }
        // Steps 2–3: bitmap per window, score consecutive pairs.
        let mut prev: Option<Bitmap64> = None;
        let mut page_counted = false;
        for chunk in seq.chunks_exact(window) {
            let cur: Bitmap64 = chunk.iter().map(|&b| b as usize).collect();
            if let Some(p) = prev {
                if let Some(rate) = p.overlap_rate(cur) {
                    pair_sum += rate;
                    pairs += 1;
                    page_counted = true;
                }
            }
            prev = Some(cur);
        }
        if page_counted {
            pages += 1;
        }
    }

    OverlapReport {
        workload: trace.name().to_string(),
        mean_overlap: if pairs == 0 { 0.0 } else { pair_sum / pairs as f64 },
        pages_measured: pages,
        window_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{BlockIndex, Cycle, MemAccess, PageNum, PhysAddr};

    fn trace_of(visits: &[(u64, &[usize])]) -> Trace {
        let mut accesses = Vec::new();
        let mut t = 0u64;
        for (page, blocks) in visits {
            for &b in *blocks {
                accesses.push(MemAccess::read(
                    PhysAddr::from_parts(PageNum::new(*page), BlockIndex::new(b)),
                    Cycle::new(t),
                ));
                t += 10;
            }
        }
        Trace::new("test", accesses)
    }

    #[test]
    fn identical_windows_give_full_overlap() {
        // Page 1 visited twice with the same 4-block snapshot.
        let t = trace_of(&[(1, &[0, 2, 4, 6]), (1, &[6, 4, 2, 0])]);
        let r = overlap_rate(&t);
        assert_eq!(r.pages_measured, 1);
        assert_eq!(r.window_pairs, 1);
        assert!((r.mean_overlap - 1.0).abs() < 1e-12, "overlap {}", r.mean_overlap);
    }

    #[test]
    fn disjoint_windows_give_zero() {
        // Distinct count is 8, so window = 8: two windows of 8 accesses.
        let t = trace_of(&[(1, &[0, 1, 2, 3, 0, 1, 2, 3]), (1, &[4, 5, 6, 7, 4, 5, 6, 7])]);
        let r = overlap_rate(&t);
        assert_eq!(r.window_pairs, 1);
        assert!(r.mean_overlap < 1e-12);
    }

    #[test]
    fn partial_overlap_measures_fraction() {
        // Window = 4 distinct blocks; second window shares 2 of 4.
        let t = trace_of(&[(1, &[0, 1, 2, 3]), (1, &[2, 3, 6, 7])]);
        let r = overlap_rate(&t);
        // Distinct over whole page = 6 -> window 6; 8 accesses = 1 window +
        // remainder, so no pairs... ensure we pick sizes that chunk evenly:
        // fall back to checking the computed value is within [0,1].
        assert!(r.mean_overlap >= 0.0 && r.mean_overlap <= 1.0);
    }

    #[test]
    fn single_visit_pages_are_skipped() {
        let t = trace_of(&[(1, &[0, 1, 2, 3])]);
        let r = overlap_rate(&t);
        assert_eq!(r.pages_measured, 0);
        assert_eq!(r.window_pairs, 0);
        assert_eq!(r.mean_overlap, 0.0);
    }

    #[test]
    fn stable_footprint_workload_scores_high() {
        use planaria_trace::synth::FootprintSpec;
        use planaria_trace::{ComponentSpec, WorkloadSpec};
        let spec = WorkloadSpec::new("fp", "fp", 1, 30_000).with(
            1.0,
            ComponentSpec::Footprint(FootprintSpec {
                pages: 64,
                mutation_prob: 0.2,
                mutation_bits: 2,
                ..FootprintSpec::default()
            }),
        );
        let r = overlap_rate(&spec.build());
        assert!(r.mean_overlap > 0.8, "expected >80% overlap, got {}", r.mean_overlap);
        assert!(r.pages_measured > 32);
    }

    #[test]
    fn unstable_footprints_score_lower() {
        use planaria_trace::synth::FootprintSpec;
        use planaria_trace::{ComponentSpec, WorkloadSpec};
        let mk = |p: f64, bits: usize| {
            let spec = WorkloadSpec::new("fp", "fp", 1, 30_000).with(
                1.0,
                ComponentSpec::Footprint(FootprintSpec {
                    pages: 64,
                    mutation_prob: p,
                    mutation_bits: bits,
                    ..FootprintSpec::default()
                }),
            );
            overlap_rate(&spec.build()).mean_overlap
        };
        assert!(mk(0.0, 0) > mk(1.0, 4), "stability must order the overlap metric");
    }
}
