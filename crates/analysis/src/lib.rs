//! Trace-characterisation analyses from the paper's motivation sections.
//!
//! Two quantitative experiments justify Planaria's design; both operate on
//! raw traces (no simulator in the loop):
//!
//! * [`overlap`] — the Figure 3/4 methodology: per-page time windows of
//!   accessed blocks, overlap rate between consecutive windows. The paper
//!   measures >80% average overlap on every app, which is what licenses
//!   using the page number alone (no PC) as the snapshot signature.
//! * [`neighbors`] — the Figure 5 experiment: the fraction of pages that
//!   have a *learnable neighbour* (page-number distance within a threshold
//!   and footprint-bitmap difference of at most 4 bits). The paper reports
//!   ≈27% at distance 4 rising to ≈39% at distance 64, which is what
//!   licenses TLP's cross-page pattern transfer.
//! * [`reuse`] — block reuse-distance histograms quantifying Observation
//!   1's "long reuse distance / limited temporal locality" claim (and why
//!   neither replacement tweaks nor modest capacity growth rescue the SC).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod neighbors;
pub mod overlap;
pub mod reuse;

pub use neighbors::{learnable_fraction, NeighborReport};
pub use overlap::{overlap_rate, OverlapReport};
pub use reuse::{reuse_histogram, ReuseReport};
