//! Block reuse-distance analysis.
//!
//! Observation 1's temporal half: "the reuse distance of the snapshots is
//! usually long, indicating a limited temporal locality". This module
//! measures it directly: for every demand access, the number of accesses
//! since the same block was last touched, bucketed in powers of two.
//!
//! The histogram explains two of the paper's motivation claims at once:
//! blocks whose reuse distance exceeds the cache's block capacity
//! (4 MB / 64 B = 65 536) cannot hit under LRU no matter the replacement
//! tweak, and growing the cache only helps the (thin) band of distances
//! between the old and new capacity.

use std::collections::HashMap;

use planaria_trace::Trace;

/// Number of power-of-two buckets (distances up to 2^31 and beyond).
pub const BUCKETS: usize = 32;

/// Result of the reuse-distance analysis on one trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReuseReport {
    /// Workload name.
    pub workload: String,
    /// `buckets[i]` counts reuses with distance in `[2^i, 2^(i+1))`.
    pub buckets: [u64; BUCKETS],
    /// First-ever touches (no reuse distance).
    pub cold: u64,
    /// Total accesses analysed.
    pub accesses: u64,
}

impl ReuseReport {
    /// Total reuses (accesses that touched a previously seen block).
    pub fn reuses(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Median reuse distance (lower bound of the median's bucket), or
    /// `None` when nothing was reused.
    pub fn median_distance(&self) -> Option<u64> {
        let total = self.reuses();
        if total == 0 {
            return None;
        }
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen * 2 >= total {
                return Some(1u64 << i);
            }
        }
        None
    }

    /// Fraction of reuses whose distance is at least `min_distance` —
    /// e.g. `min_distance = cache blocks` bounds the LRU-hopeless share.
    pub fn fraction_at_least(&self, min_distance: u64) -> f64 {
        let total = self.reuses();
        if total == 0 {
            return 0.0;
        }
        let cut = (min_distance.max(1)).ilog2() as usize;
        let far: u64 = self.buckets[cut.min(BUCKETS - 1)..].iter().sum();
        far as f64 / total as f64
    }
}

/// Computes the access-count reuse-distance histogram of a trace.
///
/// Distance is measured in intervening accesses (an upper bound on stack
/// distance, cheap enough for paper-scale traces).
pub fn reuse_histogram(trace: &Trace) -> ReuseReport {
    let mut last_touch: HashMap<u64, u64> = HashMap::new();
    let mut buckets = [0u64; BUCKETS];
    let mut cold = 0u64;
    for (i, a) in trace.iter().enumerate() {
        let block = a.addr.block_number();
        match last_touch.insert(block, i as u64) {
            Some(prev) => {
                let dist = (i as u64 - prev).max(1);
                let bucket = (dist.ilog2() as usize).min(BUCKETS - 1);
                buckets[bucket] += 1;
            }
            None => cold += 1,
        }
    }
    ReuseReport { workload: trace.name().to_string(), buckets, cold, accesses: trace.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{Cycle, MemAccess, PhysAddr, BLOCK_SIZE};
    use planaria_trace::Trace;

    fn trace_of(blocks: &[u64]) -> Trace {
        let accesses = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| MemAccess::read(PhysAddr::new(b * BLOCK_SIZE), Cycle::new(i as u64)))
            .collect();
        Trace::new("t", accesses)
    }

    #[test]
    fn counts_cold_and_reuse() {
        // Block 1 reused at distance 2, block 2 at distance 2.
        let r = reuse_histogram(&trace_of(&[1, 2, 1, 2]));
        assert_eq!(r.cold, 2);
        assert_eq!(r.reuses(), 2);
        assert_eq!(r.buckets[1], 2, "distance 2 lands in bucket [2,4)");
    }

    #[test]
    fn immediate_reuse_is_distance_one() {
        let r = reuse_histogram(&trace_of(&[5, 5, 5]));
        assert_eq!(r.cold, 1);
        assert_eq!(r.buckets[0], 2);
        assert_eq!(r.median_distance(), Some(1));
    }

    #[test]
    fn long_distances_bucket_high() {
        let mut blocks: Vec<u64> = (0..1000).collect();
        blocks.push(0); // reuse of block 0 at distance 1000
        let r = reuse_histogram(&trace_of(&blocks));
        assert_eq!(r.reuses(), 1);
        assert_eq!(r.buckets[9], 1, "distance 1000 in [512,1024)");
        assert!((r.fraction_at_least(512) - 1.0).abs() < 1e-12);
        assert_eq!(r.fraction_at_least(2048), 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let r = reuse_histogram(&Trace::empty("e"));
        assert_eq!(r.cold, 0);
        assert_eq!(r.reuses(), 0);
        assert_eq!(r.median_distance(), None);
        assert_eq!(r.fraction_at_least(64), 0.0);
    }

    #[test]
    fn footprint_workloads_have_long_reuse() {
        use planaria_trace::synth::FootprintSpec;
        use planaria_trace::{ComponentSpec, WorkloadSpec};
        let spec = WorkloadSpec::new("fp", "fp", 5, 60_000).with(
            1.0,
            ComponentSpec::Footprint(FootprintSpec { pages: 1024, ..FootprintSpec::default() }),
        );
        let r = reuse_histogram(&spec.build());
        // Pool of 1024 pages x 16 blocks: revisits come roughly a full
        // round (~16 K accesses) later.
        let median = r.median_distance().expect("revisits exist");
        assert!(median >= 4096, "median reuse distance {median} suspiciously short");
    }
}
