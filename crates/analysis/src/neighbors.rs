//! The Figure 5 learnable-neighbour experiment.
//!
//! A page is a *learnable neighbour* when some other page sits within a
//! page-number distance threshold **and** the two pages' footprint bitmaps
//! differ by at most [`BITMAP_DIFF_THRESHOLD`] bits. The fraction of such
//! pages bounds TLP's opportunity: those are exactly the pages that could
//! skip their own warm-up by borrowing a neighbour's pattern.

use std::collections::HashMap;

use planaria_common::Bitmap64;
use planaria_trace::Trace;

/// Maximum bitmap Hamming distance for two pages to "look alike" (paper: 4).
pub const BITMAP_DIFF_THRESHOLD: usize = 4;

/// Result of the neighbour analysis at one distance threshold.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NeighborReport {
    /// Workload name.
    pub workload: String,
    /// Page-number distance threshold used.
    pub distance_threshold: u64,
    /// Fraction of pages with at least one learnable neighbour.
    pub learnable_fraction: f64,
    /// Total distinct pages in the trace.
    pub total_pages: usize,
    /// Pages with a learnable neighbour.
    pub learnable_pages: usize,
}

/// Runs the Figure 5 experiment at `distance_threshold`.
///
/// Footprint bitmaps are accumulated over the whole trace (as in the
/// paper's bitmap-per-page representation); the scan over neighbour
/// candidates is windowed over the sorted page list, so the whole analysis
/// is `O(pages × candidates-within-threshold)`.
pub fn learnable_fraction(trace: &Trace, distance_threshold: u64) -> NeighborReport {
    let mut bitmaps: HashMap<u64, Bitmap64> = HashMap::new();
    for a in trace.iter() {
        bitmaps
            .entry(a.addr.page().as_u64())
            .or_insert(Bitmap64::EMPTY)
            .set(a.addr.block_index().as_usize());
    }
    let mut pages: Vec<(u64, Bitmap64)> = bitmaps.into_iter().collect();
    pages.sort_by_key(|(p, _)| *p);

    let mut learnable = 0usize;
    for (i, &(p, bm)) in pages.iter().enumerate() {
        // Scan forward while within the distance threshold; matches are
        // symmetric, so count both endpoints the first time we see a pair.
        let mut is_learnable = false;
        // Backward window.
        for j in (0..i).rev() {
            let (q, qbm) = pages[j];
            if p - q > distance_threshold {
                break;
            }
            if bm.hamming_distance(qbm) <= BITMAP_DIFF_THRESHOLD {
                is_learnable = true;
                break;
            }
        }
        if !is_learnable {
            for &(q, qbm) in pages.iter().skip(i + 1) {
                if q - p > distance_threshold {
                    break;
                }
                if bm.hamming_distance(qbm) <= BITMAP_DIFF_THRESHOLD {
                    is_learnable = true;
                    break;
                }
            }
        }
        if is_learnable {
            learnable += 1;
        }
    }

    NeighborReport {
        workload: trace.name().to_string(),
        distance_threshold,
        learnable_fraction: if pages.is_empty() {
            0.0
        } else {
            learnable as f64 / pages.len() as f64
        },
        total_pages: pages.len(),
        learnable_pages: learnable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{BlockIndex, Cycle, MemAccess, PageNum, PhysAddr};

    fn trace_of(pages: &[(u64, &[usize])]) -> Trace {
        let mut accesses = Vec::new();
        let mut t = 0u64;
        for (page, blocks) in pages {
            for &b in *blocks {
                accesses.push(MemAccess::read(
                    PhysAddr::from_parts(PageNum::new(*page), BlockIndex::new(b)),
                    Cycle::new(t),
                ));
                t += 10;
            }
        }
        Trace::new("test", accesses)
    }

    #[test]
    fn identical_adjacent_pages_are_learnable() {
        let t = trace_of(&[(10, &[0, 2, 4]), (11, &[0, 2, 4])]);
        let r = learnable_fraction(&t, 4);
        assert_eq!(r.total_pages, 2);
        assert_eq!(r.learnable_pages, 2);
        assert!((r.learnable_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_threshold_gates_matches() {
        let t = trace_of(&[(10, &[0, 2, 4]), (80, &[0, 2, 4])]);
        assert_eq!(learnable_fraction(&t, 4).learnable_pages, 0);
        assert_eq!(learnable_fraction(&t, 70).learnable_pages, 2);
    }

    #[test]
    fn distance_is_inclusive() {
        let t = trace_of(&[(10, &[0, 2, 4]), (14, &[0, 2, 4])]);
        assert_eq!(learnable_fraction(&t, 4).learnable_pages, 2);
        assert_eq!(learnable_fraction(&t, 3).learnable_pages, 0);
    }

    #[test]
    fn bitmap_difference_gates_matches() {
        // Bitmaps differ by 6 bits: {0,2,4} vs {1,3,5}.
        let t = trace_of(&[(10, &[0, 2, 4]), (11, &[1, 3, 5])]);
        assert_eq!(learnable_fraction(&t, 4).learnable_pages, 0);
        // Differ by exactly 4 bits: {0,2,4} vs {0,2,6,8} -> distance 3? No:
        // {0,2,4} ^ {0,2,6} = {4,6} = 2 bits -> learnable.
        let t = trace_of(&[(10, &[0, 2, 4]), (11, &[0, 2, 6])]);
        assert_eq!(learnable_fraction(&t, 4).learnable_pages, 2);
    }

    #[test]
    fn fraction_grows_with_distance() {
        use planaria_trace::apps::{profile, AppId};
        let trace = profile(AppId::HoK).scaled(40_000).build();
        let near = learnable_fraction(&trace, 4).learnable_fraction;
        let far = learnable_fraction(&trace, 64).learnable_fraction;
        assert!(far >= near, "far {far} must not be below near {near}");
        assert!(far > 0.0, "HoK has neighbour clusters");
    }

    #[test]
    fn empty_trace_is_safe() {
        let r = learnable_fraction(&Trace::empty("e"), 64);
        assert_eq!(r.total_pages, 0);
        assert_eq!(r.learnable_fraction, 0.0);
    }
}
