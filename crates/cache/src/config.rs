//! Cache geometry configuration.

use core::fmt;

use planaria_common::BLOCK_SIZE;

use crate::ReplacementKind;

/// Geometry and policy of a set-associative cache.
///
/// # Examples
///
/// ```
/// use planaria_cache::CacheConfig;
///
/// let sc = CacheConfig::system_cache();
/// assert_eq!(sc.size_bytes, 4 << 20);
/// assert_eq!(sc.ways, 16);
/// assert_eq!(sc.sets(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// The paper's Table 1 system cache: 4 MB, 16-way, 64 B blocks, LRU.
    pub fn system_cache() -> Self {
        Self { size_bytes: 4 << 20, ways: 16, replacement: ReplacementKind::Lru }
    }

    /// A configuration with a different capacity (cache-size ablation).
    #[must_use]
    pub fn with_size(mut self, size_bytes: u64) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// A configuration with a different replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; call [`CacheConfig::validate`]
    /// first for a `Result`.
    pub fn sets(&self) -> usize {
        self.validate().expect("invalid cache config");
        (self.size_bytes / BLOCK_SIZE) as usize / self.ways
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Checks that the geometry is consistent (non-zero, power-of-two sets).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 {
            return Err(ConfigError("ways must be non-zero".into()));
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(BLOCK_SIZE) {
            return Err(ConfigError("size must be a non-zero multiple of the block size".into()));
        }
        let blocks = self.size_bytes / BLOCK_SIZE;
        if !blocks.is_multiple_of(self.ways as u64) {
            return Err(ConfigError("size/blocks must divide evenly into ways".into()));
        }
        let sets = blocks / self.ways as u64;
        if !sets.is_power_of_two() {
            return Err(ConfigError(format!("set count {sets} is not a power of two")));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::system_cache()
    }
}

/// Error returned for inconsistent cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_cache_geometry() {
        let c = CacheConfig::system_cache();
        assert_eq!(c.sets(), 4096);
        assert_eq!(c.lines(), 65536);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_size_scales_sets() {
        let c = CacheConfig::system_cache().with_size(8 << 20);
        assert_eq!(c.sets(), 8192);
        let c = CacheConfig::system_cache().with_size(1 << 20);
        assert_eq!(c.sets(), 1024);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = CacheConfig::system_cache();
        c.ways = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::system_cache();
        c.size_bytes = 100; // not a block multiple
        assert!(c.validate().is_err());
        let mut c = CacheConfig::system_cache();
        c.size_bytes = 3 << 20; // 3 MB -> non-power-of-two sets
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_display() {
        let mut c = CacheConfig::system_cache();
        c.ways = 0;
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("ways"));
    }
}
