//! The set-associative cache model.

use planaria_common::{AccessKind, DeviceId, PhysAddr, PrefetchOrigin};

use crate::replacement::{
    duel_role, DuelRole, ReplTable, BRRIP_LONG_PERIOD, PSEL_MAX, PSEL_MID, SRRIP_INSERT_RRPV,
    SRRIP_MAX_RRPV,
};
use crate::stats::DeviceCacheStats;
use crate::{CacheConfig, CacheStats, ReplacementKind};

/// Tag stored for a line that holds nothing. Real tags are
/// `block_number >> set_shift` with `block_number = addr / 64`, so they can
/// never reach `u64::MAX` — which lets the hit scan test residency with a
/// single tag compare instead of also loading a valid flag.
const TAG_INVALID: u64 = u64::MAX;

/// Per-line metadata byte: the block was written since it was filled.
const META_DIRTY: u8 = 1 << 0;
/// Per-line metadata byte: filled by a prefetch and not yet demanded.
const META_PREFETCHED: u8 = 1 << 1;
/// Per-line metadata byte: which prefetcher filled the line, kept for
/// Figure 9 attribution even after a demand touch (bits 2-3: 0 = demand
/// fill, otherwise `PrefetchOrigin` discriminant + 1).
const META_ORIGIN_SHIFT: u8 = 2;
/// Per-line metadata byte: the [`DeviceId::index`] of the device whose
/// request filled the line (bits 4-7; 12 devices fit the nibble). Lets an
/// eviction attribute pollution to the device that triggered the fill.
const META_DEVICE_SHIFT: u8 = 4;

fn encode_device(device: DeviceId) -> u8 {
    (device.index() as u8) << META_DEVICE_SHIFT
}

fn decode_device(meta: u8) -> DeviceId {
    DeviceId::from_index(((meta >> META_DEVICE_SHIFT) & 0x0F).min(11) as usize)
}

fn encode_origin(origin: Option<PrefetchOrigin>) -> u8 {
    let o = match origin {
        None => 0u8,
        Some(PrefetchOrigin::Slp) => 1,
        Some(PrefetchOrigin::Tlp) => 2,
        Some(PrefetchOrigin::Baseline) => 3,
    };
    o << META_ORIGIN_SHIFT
}

fn decode_origin(meta: u8) -> Option<PrefetchOrigin> {
    match (meta >> META_ORIGIN_SHIFT) & 0b11 {
        1 => Some(PrefetchOrigin::Slp),
        2 => Some(PrefetchOrigin::Tlp),
        3 => Some(PrefetchOrigin::Baseline),
        _ => None,
    }
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was present.
    Hit {
        /// `Some(origin)` when this is the first demand touch of a line a
        /// prefetcher brought in — i.e. the prefetch was *useful*.
        first_use_of_prefetch: Option<PrefetchOrigin>,
    },
    /// The block was absent; the caller must fetch and [`SetAssocCache::fill`].
    Miss,
}

impl AccessResult {
    /// Returns `true` on a hit.
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit { .. })
    }
}

/// A line pushed out by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Block-aligned address of the victim.
    pub addr: PhysAddr,
    /// Whether a writeback to DRAM is required.
    pub dirty: bool,
    /// Whether the victim was an unused prefetch (pollution).
    pub was_unused_prefetch: bool,
    /// Which prefetcher filled the victim, if it entered the cache as a
    /// prefetch — kept so pollution is attributable per sub-prefetcher.
    /// `Some` even after a demand touch cleared `was_unused_prefetch`.
    pub origin: Option<PrefetchOrigin>,
    /// The device whose request filled the victim line (the trigger device
    /// for prefetch fills) — lets pollution be attributed per device.
    pub device: DeviceId,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// The cache does not fetch on miss by itself: `access` reports the miss and
/// the caller (the memory-system simulator) performs the DRAM access and
/// calls [`SetAssocCache::fill`] — mirroring how the SC and the memory
/// controller are separate agents in the real system.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Low-bit mask selecting the set from a block number (sets are a
    /// validated power of two, so indexing never divides).
    set_mask: u64,
    /// Shift extracting the tag from a block number.
    set_shift: u32,
    /// Per-line tags, `ways` per set, [`TAG_INVALID`] when empty — the
    /// only array the residency scan touches (a 16-way set spans two host
    /// cache lines instead of the four a tag+flags struct layout costs).
    tags: Vec<u64>,
    /// Per-line packed flags + origin (see the `META_*` constants),
    /// touched only on the hit/fill way.
    meta: Vec<u8>,
    repl: ReplTable,
    stats: CacheStats,
    /// Per-device twin of `stats` (see [`DeviceCacheStats::conserves`]).
    device_stats: [DeviceCacheStats; DeviceId::COUNT],
    tick: u64,
    rng: u64,
    /// DRRIP set-dueling policy selector (10-bit saturating counter).
    psel: u16,
    /// Fill counter driving BRRIP's bimodal insertion.
    fills: u64,
}

impl SetAssocCache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            set_mask: sets as u64 - 1,
            set_shift: sets.trailing_zeros(),
            tags: vec![TAG_INVALID; sets * config.ways],
            meta: vec![0; sets * config.ways],
            repl: ReplTable::new(config.replacement, sets, config.ways),
            stats: CacheStats::default(),
            device_stats: [DeviceCacheStats::default(); DeviceId::COUNT],
            tick: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            psel: PSEL_MID,
            fills: 0,
        }
    }

    /// BRRIP's bimodal insertion value: "distant" except once per period.
    fn brrip_rrpv(&mut self) -> u8 {
        self.fills += 1;
        if self.fills.is_multiple_of(BRRIP_LONG_PERIOD) {
            SRRIP_INSERT_RRPV
        } else {
            SRRIP_MAX_RRPV
        }
    }

    /// RRIP insertion value for a fill into `set` under the active policy.
    fn insert_rrpv(&mut self, set: usize) -> u8 {
        match self.config.replacement {
            ReplacementKind::Brrip => self.brrip_rrpv(),
            ReplacementKind::Drrip => match duel_role(set) {
                DuelRole::SrripLeader => SRRIP_INSERT_RRPV,
                DuelRole::BrripLeader => self.brrip_rrpv(),
                DuelRole::Follower => {
                    if self.psel >= PSEL_MID {
                        self.brrip_rrpv()
                    } else {
                        SRRIP_INSERT_RRPV
                    }
                }
            },
            _ => SRRIP_INSERT_RRPV,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accumulated per-device statistics, indexed by [`DeviceId::index`].
    ///
    /// Summing any column over all rows reproduces the matching aggregate
    /// counter in [`SetAssocCache::stats`] exactly
    /// ([`DeviceCacheStats::conserves`]).
    pub fn device_stats(&self) -> &[DeviceCacheStats; DeviceId::COUNT] {
        debug_assert!(DeviceCacheStats::conserves(&self.device_stats, &self.stats));
        &self.device_stats
    }

    /// Resets statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.device_stats = [DeviceCacheStats::default(); DeviceId::COUNT];
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let block = addr.block_number();
        ((block & self.set_mask) as usize, block >> self.set_shift)
    }

    /// Looks up a block without updating replacement state or statistics.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&tag)
    }

    /// Performs a demand access (updates replacement state and stats),
    /// attributing it to the default device ([`DeviceId::Cpu`]`(0)`).
    ///
    /// On a miss the caller is responsible for fetching the block and
    /// calling [`SetAssocCache::fill`] once the data arrives.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> AccessResult {
        self.access_by(addr, kind, DeviceId::default())
    }

    /// Performs a demand access attributed to `device`: identical to
    /// [`SetAssocCache::access`] except the per-device statistics row for
    /// `device` is updated alongside the aggregate counters.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_cache::{CacheConfig, SetAssocCache};
    /// use planaria_common::{AccessKind, DeviceId, PhysAddr};
    ///
    /// let mut sc = SetAssocCache::new(CacheConfig::system_cache());
    /// let addr = PhysAddr::new(0x4000);
    /// sc.access_by(addr, AccessKind::Read, DeviceId::Npu); // cold miss
    /// sc.fill(addr, None);
    /// sc.access_by(addr, AccessKind::Read, DeviceId::Npu); // hit
    /// let npu = &sc.device_stats()[DeviceId::Npu.index()];
    /// assert_eq!((npu.demand_hits, npu.demand_misses), (1, 1));
    /// ```
    pub fn access_by(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        device: DeviceId,
    ) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let base = set * self.config.ways;
        let hit_way = self.tags[base..base + self.config.ways].iter().position(|&t| t == tag);
        match hit_way {
            Some(way) => {
                let m = &mut self.meta[base + way];
                let first_use = if *m & META_PREFETCHED != 0 {
                    *m &= !META_PREFETCHED;
                    decode_origin(*m)
                } else {
                    None
                };
                if kind.is_write() {
                    *m |= META_DIRTY;
                }
                self.repl.on_hit(base, way, tick);
                self.stats.demand_hits += 1;
                self.device_stats[device.index()].demand_hits += 1;
                if first_use.is_some() {
                    self.stats.record_useful(first_use);
                    self.device_stats[device.index()].record_useful(first_use);
                }
                AccessResult::Hit { first_use_of_prefetch: first_use }
            }
            None => {
                self.stats.demand_misses += 1;
                self.device_stats[device.index()].demand_misses += 1;
                // DRRIP set dueling: a miss in a leader set is a vote
                // against that leader's policy.
                if self.config.replacement == ReplacementKind::Drrip {
                    match duel_role(set) {
                        DuelRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                        DuelRole::BrripLeader => self.psel = self.psel.saturating_sub(1),
                        DuelRole::Follower => {}
                    }
                }
                AccessResult::Miss
            }
        }
    }

    /// Fills a block, evicting a victim if the set is full, attributing the
    /// fill to the default device ([`DeviceId::Cpu`]`(0)`).
    ///
    /// `prefetched` is `Some(origin)` for prefetch fills and `None` for
    /// demand fills. Filling a block that is already present is a no-op
    /// (returns `None`) — this happens when a demand fill races an earlier
    /// prefetch fill of the same block.
    pub fn fill(
        &mut self,
        addr: PhysAddr,
        prefetched: Option<PrefetchOrigin>,
    ) -> Option<EvictedLine> {
        self.fill_by(addr, prefetched, DeviceId::default())
    }

    /// Like [`SetAssocCache::fill`], but records `device` (the requester
    /// for demand fills, the trigger device for prefetch fills) in the
    /// line's metadata so a later eviction can attribute the victim.
    pub fn fill_by(
        &mut self,
        addr: PhysAddr,
        prefetched: Option<PrefetchOrigin>,
        device: DeviceId,
    ) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let ways = self.config.ways;
        let base = set * ways;
        // One pass answers both questions the fill needs: duplicate
        // residency (no-op) and the first empty way.
        let mut invalid_way = None;
        for (w, &t0) in self.tags[base..base + ways].iter().enumerate() {
            if t0 == tag {
                return None;
            }
            if invalid_way.is_none() && t0 == TAG_INVALID {
                invalid_way = Some(w);
            }
        }
        if prefetched.is_some() {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
        }
        let way = match invalid_way {
            Some(w) => w,
            None => self.repl.victim(base, ways, &mut self.rng),
        };
        let insert_rrpv = self.insert_rrpv(set);
        let victim_tag = self.tags[base + way];
        let evicted = if victim_tag != TAG_INVALID {
            let vm = self.meta[base + way];
            self.stats.evictions += 1;
            if vm & META_DIRTY != 0 {
                self.stats.writebacks += 1;
            }
            if vm & META_PREFETCHED != 0 {
                self.stats.polluting_prefetches += 1;
            }
            let victim_block = (victim_tag << self.set_shift) | set as u64;
            Some(EvictedLine {
                addr: PhysAddr::new(victim_block * planaria_common::BLOCK_SIZE),
                dirty: vm & META_DIRTY != 0,
                was_unused_prefetch: vm & META_PREFETCHED != 0,
                origin: decode_origin(vm),
                device: decode_device(vm),
            })
        } else {
            None
        };
        self.tags[base + way] = tag;
        self.meta[base + way] = encode_device(device)
            | encode_origin(prefetched)
            | if prefetched.is_some() { META_PREFETCHED } else { 0 };
        self.repl.on_fill(base, way, tick, insert_rrpv);
        evicted
    }

    /// Marks a resident block dirty without touching statistics or
    /// replacement state — used when a demand *write* miss completes its
    /// fill (write-allocate: the fill lands, then the write dirties it).
    /// Returns `false` if the block is not resident.
    pub fn mark_dirty(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.config.ways;
        match self.tags[base..base + self.config.ways].iter().position(|&t| t == tag) {
            Some(way) => {
                self.meta[base + way] |= META_DIRTY;
                true
            }
            None => false,
        }
    }

    /// Number of currently valid lines (used by tests and invariants).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplacementKind;
    use planaria_common::BLOCK_SIZE;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            replacement: ReplacementKind::Lru,
        })
    }

    fn addr_for(set: u64, tag: u64, sets: u64) -> PhysAddr {
        PhysAddr::new((tag * sets + set) * BLOCK_SIZE)
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        let a = PhysAddr::new(0x1000);
        assert_eq!(c.access(a, AccessKind::Read), AccessResult::Miss);
        assert!(c.fill(a, None).is_none());
        assert!(c.access(a, AccessKind::Read).is_hit());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let (a, b, d) = (addr_for(0, 1, 4), addr_for(0, 2, 4), addr_for(0, 3, 4));
        c.fill(a, None);
        c.fill(b, None);
        // Touch `a` so `b` is LRU.
        assert!(c.access(a, AccessKind::Read).is_hit());
        let evicted = c.fill(d, None).expect("eviction");
        assert_eq!(evicted.addr, b.block_base());
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        let (a, b, d) = (addr_for(1, 1, 4), addr_for(1, 2, 4), addr_for(1, 3, 4));
        c.fill(a, None);
        assert!(c.access(a, AccessKind::Write).is_hit());
        c.fill(b, None);
        c.access(b, AccessKind::Read);
        let evicted = c.fill(d, None).expect("eviction");
        assert!(evicted.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn useful_prefetch_detected_once() {
        let mut c = tiny();
        let a = PhysAddr::new(0x2000);
        c.fill(a, Some(PrefetchOrigin::Slp));
        match c.access(a, AccessKind::Read) {
            AccessResult::Hit { first_use_of_prefetch } => {
                assert_eq!(first_use_of_prefetch, Some(PrefetchOrigin::Slp));
            }
            _ => panic!("expected hit"),
        }
        // Second touch is an ordinary hit.
        match c.access(a, AccessKind::Read) {
            AccessResult::Hit { first_use_of_prefetch } => {
                assert_eq!(first_use_of_prefetch, None);
            }
            _ => panic!("expected hit"),
        }
        assert_eq!(c.stats().useful_prefetches, 1);
        assert_eq!(c.stats().useful_slp, 1);
    }

    #[test]
    fn unused_prefetch_eviction_counts_pollution() {
        let mut c = tiny();
        let (a, b, d) = (addr_for(2, 1, 4), addr_for(2, 2, 4), addr_for(2, 3, 4));
        c.fill(a, Some(PrefetchOrigin::Tlp));
        c.fill(b, None);
        c.access(b, AccessKind::Read); // make b MRU; a is LRU
        let evicted = c.fill(d, None).expect("eviction");
        assert!(evicted.was_unused_prefetch);
        assert_eq!(c.stats().polluting_prefetches, 1);
    }

    #[test]
    fn duplicate_fill_is_noop() {
        let mut c = tiny();
        let a = PhysAddr::new(0x3000);
        c.fill(a, None);
        assert!(c.fill(a, Some(PrefetchOrigin::Slp)).is_none());
        assert_eq!(c.valid_lines(), 1);
        // A duplicate fill occupies no line and is not counted as a fill.
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn valid_lines_never_exceed_capacity() {
        let mut c = tiny();
        for i in 0..100 {
            c.fill(PhysAddr::new(i * BLOCK_SIZE), None);
            assert!(c.valid_lines() <= 8);
        }
        assert_eq!(c.valid_lines(), 8);
    }

    #[test]
    fn sub_block_addresses_map_to_same_line() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0x1000), None);
        assert!(c.access(PhysAddr::new(0x1004), AccessKind::Read).is_hit());
        assert!(c.contains(PhysAddr::new(0x103F)));
    }

    #[test]
    fn brrip_resists_cyclic_thrash_better_than_lru() {
        // A cyclic scan over ways+1 distinct blocks per set gives LRU zero
        // hits (classic thrash); BRRIP's distant insertion retains part of
        // the working set.
        let run = |repl| {
            let mut c =
                SetAssocCache::new(CacheConfig { size_bytes: 512, ways: 2, replacement: repl });
            let blocks = [0u64, 4, 8]; // 3 blocks, all in set 0, 2 ways
            let mut hits = 0;
            for round in 0..200 {
                for &b in &blocks {
                    let a = PhysAddr::new(b * BLOCK_SIZE);
                    if c.access(a, AccessKind::Read).is_hit() {
                        if round > 1 {
                            hits += 1;
                        }
                    } else {
                        c.fill(a, None);
                    }
                }
            }
            hits
        };
        let lru = run(ReplacementKind::Lru);
        let brrip = run(ReplacementKind::Brrip);
        assert_eq!(lru, 0, "LRU must thrash on a cyclic over-capacity scan");
        assert!(brrip > 100, "BRRIP must retain part of the set: {brrip} hits");
    }

    #[test]
    fn drrip_learns_to_follow_the_better_leader() {
        // Thrash every set: the BRRIP leaders miss less, PSEL swings toward
        // BRRIP, and follower sets start retaining lines.
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 64 * 64 * 2 * 2, // 128 sets x 2 ways
            ways: 2,
            replacement: ReplacementKind::Drrip,
        });
        let sets = c.config().sets();
        assert!(sets >= 128, "need both leader kinds present");
        let mut last_round_hits = 0u64;
        for round in 0..60 {
            let mut hits = 0;
            for set in 0..sets as u64 {
                for k in 0..3u64 {
                    // 3 blocks per 2-way set: cyclic thrash.
                    let a = PhysAddr::new((k * sets as u64 + set) * BLOCK_SIZE);
                    if c.access(a, AccessKind::Read).is_hit() {
                        hits += 1;
                    } else {
                        c.fill(a, None);
                    }
                }
            }
            if round >= 55 {
                last_round_hits += hits;
            }
        }
        // LRU/SRRIP would converge to ~zero hits; a working DRRIP retains a
        // meaningful fraction once PSEL swings to BRRIP.
        assert!(
            last_round_hits > 100,
            "DRRIP failed to adapt: {last_round_hits} hits in final rounds"
        );
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut c = tiny();
        c.access(PhysAddr::new(0x40), AccessKind::Read);
        c.reset_stats();
        assert_eq!(*c.stats(), CacheStats::default());
        assert_eq!(c.device_stats(), &[crate::DeviceCacheStats::default(); DeviceId::COUNT]);
    }

    #[test]
    fn per_device_rows_conserve_aggregate() {
        let mut c = tiny();
        let devices = [DeviceId::Cpu(0), DeviceId::Cpu(3), DeviceId::Gpu, DeviceId::Dsp];
        for (i, &d) in devices.iter().enumerate() {
            let a = PhysAddr::new(i as u64 * BLOCK_SIZE);
            assert!(!c.access_by(a, AccessKind::Read, d).is_hit());
            c.fill_by(a, Some(PrefetchOrigin::Slp), d);
            assert!(c.access_by(a, AccessKind::Read, d).is_hit(), "useful prefetch");
        }
        // Device-less access lands on the default row; conservation holds.
        c.access(PhysAddr::new(0x40_000), AccessKind::Read);
        let rows = c.device_stats();
        assert!(crate::DeviceCacheStats::conserves(rows, c.stats()));
        assert_eq!(rows[DeviceId::Gpu.index()].demand_hits, 1);
        assert_eq!(rows[DeviceId::Gpu.index()].useful_slp, 1);
        assert_eq!(rows[DeviceId::Cpu(0).index()].demand_misses, 2);
    }

    #[test]
    fn eviction_reports_filling_device() {
        let mut c = tiny();
        let (a, b, d) = (addr_for(3, 1, 4), addr_for(3, 2, 4), addr_for(3, 3, 4));
        c.fill_by(a, Some(PrefetchOrigin::Tlp), DeviceId::Npu);
        c.fill_by(b, None, DeviceId::Cpu(5));
        c.access(b, AccessKind::Read); // b MRU, a LRU
        let evicted = c.fill(d, None).expect("eviction");
        assert_eq!(evicted.device, DeviceId::Npu, "victim keeps its filler's device");
        assert!(evicted.was_unused_prefetch);
    }
}
