//! Per-set replacement policies.
//!
//! The paper notes that "neither state-of-the-art cache replacement policies
//! nor increasing cache size significantly improve SC performance"; the
//! replacement ablation reproduces that claim, so a representative palette
//! of policies is provided behind one enum — including the RRIP family
//! (SRRIP, BRRIP and set-dueling DRRIP) that was the state of the art for
//! thrash- and scan-resistant last-level caches.

use core::fmt;

/// Selects the replacement policy of a [`crate::SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReplacementKind {
    /// Least-recently-used (the baseline system's policy).
    #[default]
    Lru,
    /// First-in-first-out.
    Fifo,
    /// 2-bit static re-reference interval prediction (SRRIP).
    Srrip,
    /// Bimodal RRIP: distant insertion with occasional long insertion —
    /// thrash-resistant.
    Brrip,
    /// Dynamic RRIP: set-dueling between SRRIP and BRRIP leaders with a
    /// PSEL counter steering the follower sets.
    Drrip,
    /// Deterministic pseudo-random (xorshift64), seeded per cache.
    Random,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::Srrip => "SRRIP",
            ReplacementKind::Brrip => "BRRIP",
            ReplacementKind::Drrip => "DRRIP",
            ReplacementKind::Random => "Random",
        })
    }
}

impl ReplacementKind {
    /// All provided policies, for ablation sweeps.
    pub const ALL: [ReplacementKind; 6] = [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Srrip,
        ReplacementKind::Brrip,
        ReplacementKind::Drrip,
        ReplacementKind::Random,
    ];

    /// Whether the policy uses RRPV state (the RRIP family).
    pub(crate) fn is_rrip(self) -> bool {
        matches!(self, ReplacementKind::Srrip | ReplacementKind::Brrip | ReplacementKind::Drrip)
    }
}

/// SRRIP re-reference prediction value on insertion ("long" interval).
pub(crate) const SRRIP_INSERT_RRPV: u8 = 2;
/// Maximum RRPV for a 2-bit counter ("distant" interval).
pub(crate) const SRRIP_MAX_RRPV: u8 = 3;
/// BRRIP inserts "long" once out of this many fills, "distant" otherwise.
pub(crate) const BRRIP_LONG_PERIOD: u64 = 32;

/// DRRIP set-dueling constellation: which policy a set's misses vote for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DuelRole {
    /// A dedicated SRRIP leader set.
    SrripLeader,
    /// A dedicated BRRIP leader set.
    BrripLeader,
    /// A follower set steered by the PSEL counter.
    Follower,
}

/// Maps a set index to its dueling role (one leader of each kind per 64
/// sets, offset so the leaders interleave).
pub(crate) fn duel_role(set: usize) -> DuelRole {
    match set % 64 {
        0 => DuelRole::SrripLeader,
        33 => DuelRole::BrripLeader,
        _ => DuelRole::Follower,
    }
}

/// 10-bit PSEL midpoint: PSEL at or above this picks BRRIP in followers.
pub(crate) const PSEL_MID: u16 = 512;
/// PSEL saturation bound.
pub(crate) const PSEL_MAX: u16 = 1023;

/// Replacement state for the whole cache, flattened struct-of-arrays
/// style: one contiguous stamp (or RRPV) array indexed by
/// `set * ways + way`, instead of one boxed `Vec` per set. The per-set
/// enum-of-`Vec` layout cost a pointer chase plus a scattered heap line on
/// every replacement-state touch — on the simulator's hot path that was a
/// measurable share of each access.
#[derive(Debug, Clone)]
pub(crate) enum ReplTable {
    /// Per-way stamps: last touch for LRU (`update_on_hit`), insertion
    /// order for FIFO.
    Stamps {
        /// LRU refreshes the stamp on hits; FIFO does not.
        update_on_hit: bool,
        /// `sets * ways` stamps.
        stamps: Vec<u64>,
    },
    /// Per-way 2-bit RRPVs (shared by the whole RRIP family).
    Rrip(Vec<u8>),
    /// No per-way state; victims come from the shared RNG.
    Random,
}

impl ReplTable {
    pub(crate) fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => {
                ReplTable::Stamps { update_on_hit: true, stamps: vec![0; sets * ways] }
            }
            ReplacementKind::Fifo => {
                ReplTable::Stamps { update_on_hit: false, stamps: vec![0; sets * ways] }
            }
            k if k.is_rrip() => ReplTable::Rrip(vec![SRRIP_MAX_RRPV; sets * ways]),
            _ => ReplTable::Random,
        }
    }

    /// Records a hit on `way` of the set starting at line index `base`.
    pub(crate) fn on_hit(&mut self, base: usize, way: usize, tick: u64) {
        match self {
            ReplTable::Stamps { update_on_hit: true, stamps } => stamps[base + way] = tick,
            ReplTable::Stamps { .. } => {}
            ReplTable::Rrip(rrpv) => rrpv[base + way] = 0,
            ReplTable::Random => {}
        }
    }

    /// Records a fill into `way` of the set at `base`; `insert_rrpv` is
    /// the RRIP insertion value chosen by the cache (ignored elsewhere).
    pub(crate) fn on_fill(&mut self, base: usize, way: usize, tick: u64, insert_rrpv: u8) {
        match self {
            ReplTable::Stamps { stamps, .. } => stamps[base + way] = tick,
            ReplTable::Rrip(rrpv) => rrpv[base + way] = insert_rrpv,
            ReplTable::Random => {}
        }
    }

    /// Chooses a victim among the `ways` lines of the set at `base` (the
    /// cache prefers invalid ways before consulting the policy). `rng` is
    /// the cache-level xorshift state used by the random policy.
    pub(crate) fn victim(&mut self, base: usize, ways: usize, rng: &mut u64) -> usize {
        match self {
            ReplTable::Stamps { stamps, .. } => stamps[base..base + ways]
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(w, _)| w)
                .expect("non-empty set"),
            ReplTable::Rrip(rrpv) => {
                let set = &mut rrpv[base..base + ways];
                loop {
                    if let Some(w) = set.iter().position(|&r| r >= SRRIP_MAX_RRPV) {
                        break w;
                    }
                    for r in set.iter_mut() {
                        *r += 1;
                    }
                }
            }
            ReplTable::Random => {
                // xorshift64: deterministic, cheap, uniform enough.
                let mut x = *rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng = x;
                (x % ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = ReplTable::new(ReplacementKind::Lru, 1, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            s.on_fill(0, w, t, SRRIP_INSERT_RRPV);
        }
        s.on_hit(0, 0, 5); // way 0 becomes most recent; way 1 is oldest
        let mut rng = 1;
        assert_eq!(s.victim(0, 4, &mut rng), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = ReplTable::new(ReplacementKind::Fifo, 1, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            s.on_fill(0, w, t, SRRIP_INSERT_RRPV);
        }
        s.on_hit(0, 0, 100); // FIFO does not promote on hit
        let mut rng = 1;
        assert_eq!(s.victim(0, 4, &mut rng), 0);
    }

    #[test]
    fn srrip_promotes_on_hit_and_ages() {
        let mut s = ReplTable::new(ReplacementKind::Srrip, 1, 2);
        s.on_fill(0, 0, 0, SRRIP_INSERT_RRPV);
        s.on_fill(0, 1, 0, SRRIP_INSERT_RRPV);
        s.on_hit(0, 0, 0); // rrpv 0
        let mut rng = 1;
        // Way 1 has higher RRPV after ageing, so it is the victim.
        assert_eq!(s.victim(0, 2, &mut rng), 1);
    }

    #[test]
    fn distant_insertion_is_evicted_before_long() {
        let mut s = ReplTable::new(ReplacementKind::Brrip, 1, 2);
        s.on_fill(0, 0, 0, SRRIP_INSERT_RRPV); // "long" (rrpv 2)
        s.on_fill(0, 1, 0, SRRIP_MAX_RRPV); // "distant" (rrpv 3)
        let mut rng = 1;
        assert_eq!(s.victim(0, 2, &mut rng), 1, "distant line goes first");
    }

    #[test]
    fn second_set_state_is_independent() {
        // Two sets sharing one flattened table: victims must not leak
        // across the set boundary.
        let mut s = ReplTable::new(ReplacementKind::Lru, 2, 2);
        s.on_fill(0, 0, 10, SRRIP_INSERT_RRPV);
        s.on_fill(0, 1, 20, SRRIP_INSERT_RRPV);
        s.on_fill(2, 0, 5, SRRIP_INSERT_RRPV);
        s.on_fill(2, 1, 30, SRRIP_INSERT_RRPV);
        let mut rng = 1;
        assert_eq!(s.victim(0, 2, &mut rng), 0, "set 0 oldest is way 0");
        assert_eq!(s.victim(2, 2, &mut rng), 0, "set 1 oldest is its own way 0");
    }

    #[test]
    fn duel_roles_partition_sets() {
        assert_eq!(duel_role(0), DuelRole::SrripLeader);
        assert_eq!(duel_role(33), DuelRole::BrripLeader);
        assert_eq!(duel_role(1), DuelRole::Follower);
        assert_eq!(duel_role(64), DuelRole::SrripLeader);
        assert_eq!(duel_role(97), DuelRole::BrripLeader);
        // Followers dominate.
        let followers = (0..4096).filter(|&s| duel_role(s) == DuelRole::Follower).count();
        assert_eq!(followers, 4096 - 2 * 64);
    }

    #[test]
    fn random_is_deterministic_for_seed() {
        let mut s = ReplTable::new(ReplacementKind::Random, 1, 8);
        let mut rng_a = 42u64;
        let mut rng_b = 42u64;
        let a: Vec<usize> = (0..16).map(|_| s.victim(0, 8, &mut rng_a)).collect();
        let b: Vec<usize> = (0..16).map(|_| s.victim(0, 8, &mut rng_b)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| w < 8));
    }

    #[test]
    fn display_and_all() {
        assert_eq!(ReplacementKind::ALL.len(), 6);
        for k in ReplacementKind::ALL {
            assert!(!k.to_string().is_empty());
        }
        assert!(ReplacementKind::Drrip.is_rrip());
        assert!(!ReplacementKind::Lru.is_rrip());
    }
}
