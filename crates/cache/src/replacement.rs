//! Per-set replacement policies.
//!
//! The paper notes that "neither state-of-the-art cache replacement policies
//! nor increasing cache size significantly improve SC performance"; the
//! replacement ablation reproduces that claim, so a representative palette
//! of policies is provided behind one enum — including the RRIP family
//! (SRRIP, BRRIP and set-dueling DRRIP) that was the state of the art for
//! thrash- and scan-resistant last-level caches.

use core::fmt;

/// Selects the replacement policy of a [`crate::SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReplacementKind {
    /// Least-recently-used (the baseline system's policy).
    #[default]
    Lru,
    /// First-in-first-out.
    Fifo,
    /// 2-bit static re-reference interval prediction (SRRIP).
    Srrip,
    /// Bimodal RRIP: distant insertion with occasional long insertion —
    /// thrash-resistant.
    Brrip,
    /// Dynamic RRIP: set-dueling between SRRIP and BRRIP leaders with a
    /// PSEL counter steering the follower sets.
    Drrip,
    /// Deterministic pseudo-random (xorshift64), seeded per cache.
    Random,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::Srrip => "SRRIP",
            ReplacementKind::Brrip => "BRRIP",
            ReplacementKind::Drrip => "DRRIP",
            ReplacementKind::Random => "Random",
        })
    }
}

impl ReplacementKind {
    /// All provided policies, for ablation sweeps.
    pub const ALL: [ReplacementKind; 6] = [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Srrip,
        ReplacementKind::Brrip,
        ReplacementKind::Drrip,
        ReplacementKind::Random,
    ];

    /// Whether the policy uses RRPV state (the RRIP family).
    pub(crate) fn is_rrip(self) -> bool {
        matches!(self, ReplacementKind::Srrip | ReplacementKind::Brrip | ReplacementKind::Drrip)
    }
}

/// SRRIP re-reference prediction value on insertion ("long" interval).
pub(crate) const SRRIP_INSERT_RRPV: u8 = 2;
/// Maximum RRPV for a 2-bit counter ("distant" interval).
pub(crate) const SRRIP_MAX_RRPV: u8 = 3;
/// BRRIP inserts "long" once out of this many fills, "distant" otherwise.
pub(crate) const BRRIP_LONG_PERIOD: u64 = 32;

/// DRRIP set-dueling constellation: which policy a set's misses vote for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DuelRole {
    /// A dedicated SRRIP leader set.
    SrripLeader,
    /// A dedicated BRRIP leader set.
    BrripLeader,
    /// A follower set steered by the PSEL counter.
    Follower,
}

/// Maps a set index to its dueling role (one leader of each kind per 64
/// sets, offset so the leaders interleave).
pub(crate) fn duel_role(set: usize) -> DuelRole {
    match set % 64 {
        0 => DuelRole::SrripLeader,
        33 => DuelRole::BrripLeader,
        _ => DuelRole::Follower,
    }
}

/// 10-bit PSEL midpoint: PSEL at or above this picks BRRIP in followers.
pub(crate) const PSEL_MID: u16 = 512;
/// PSEL saturation bound.
pub(crate) const PSEL_MAX: u16 = 1023;

/// Per-set replacement state.
#[derive(Debug, Clone)]
pub(crate) enum SetState {
    /// Per-way last-touch timestamps.
    Lru(Vec<u64>),
    /// Per-way insertion order stamps.
    Fifo(Vec<u64>),
    /// Per-way 2-bit RRPVs (shared by the whole RRIP family).
    Rrip(Vec<u8>),
    /// No per-way state; victims come from the shared RNG.
    Random,
}

impl SetState {
    pub(crate) fn new(kind: ReplacementKind, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => SetState::Lru(vec![0; ways]),
            ReplacementKind::Fifo => SetState::Fifo(vec![0; ways]),
            k if k.is_rrip() => SetState::Rrip(vec![SRRIP_MAX_RRPV; ways]),
            _ => SetState::Random,
        }
    }

    /// Records a hit on `way` at logical time `tick`.
    pub(crate) fn on_hit(&mut self, way: usize, tick: u64) {
        match self {
            SetState::Lru(ts) => ts[way] = tick,
            SetState::Fifo(_) => {}
            SetState::Rrip(rrpv) => rrpv[way] = 0,
            SetState::Random => {}
        }
    }

    /// Records a fill into `way` at logical time `tick`; `insert_rrpv` is
    /// the RRIP insertion value chosen by the cache (ignored elsewhere).
    pub(crate) fn on_fill(&mut self, way: usize, tick: u64, insert_rrpv: u8) {
        match self {
            SetState::Lru(ts) => ts[way] = tick,
            SetState::Fifo(ts) => ts[way] = tick,
            SetState::Rrip(rrpv) => rrpv[way] = insert_rrpv,
            SetState::Random => {}
        }
    }

    /// Chooses a victim among valid ways (the cache prefers invalid ways
    /// before consulting the policy). `rng` is the cache-level xorshift
    /// state used by the random policy.
    pub(crate) fn victim(&mut self, ways: usize, rng: &mut u64) -> usize {
        match self {
            SetState::Lru(ts) | SetState::Fifo(ts) => ts
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(w, _)| w)
                .expect("non-empty set"),
            SetState::Rrip(rrpv) => loop {
                if let Some(w) = rrpv.iter().position(|&r| r >= SRRIP_MAX_RRPV) {
                    break w;
                }
                for r in rrpv.iter_mut() {
                    *r += 1;
                }
            },
            SetState::Random => {
                // xorshift64: deterministic, cheap, uniform enough.
                let mut x = *rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng = x;
                (x % ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(ReplacementKind::Lru, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            s.on_fill(w, t, SRRIP_INSERT_RRPV);
        }
        s.on_hit(0, 5); // way 0 becomes most recent; way 1 is oldest
        let mut rng = 1;
        assert_eq!(s.victim(4, &mut rng), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = SetState::new(ReplacementKind::Fifo, 4);
        for (w, t) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            s.on_fill(w, t, SRRIP_INSERT_RRPV);
        }
        s.on_hit(0, 100); // FIFO does not promote on hit
        let mut rng = 1;
        assert_eq!(s.victim(4, &mut rng), 0);
    }

    #[test]
    fn srrip_promotes_on_hit_and_ages() {
        let mut s = SetState::new(ReplacementKind::Srrip, 2);
        s.on_fill(0, 0, SRRIP_INSERT_RRPV);
        s.on_fill(1, 0, SRRIP_INSERT_RRPV);
        s.on_hit(0, 0); // rrpv 0
        let mut rng = 1;
        // Way 1 has higher RRPV after ageing, so it is the victim.
        assert_eq!(s.victim(2, &mut rng), 1);
    }

    #[test]
    fn distant_insertion_is_evicted_before_long() {
        let mut s = SetState::new(ReplacementKind::Brrip, 2);
        s.on_fill(0, 0, SRRIP_INSERT_RRPV); // "long" (rrpv 2)
        s.on_fill(1, 0, SRRIP_MAX_RRPV); // "distant" (rrpv 3)
        let mut rng = 1;
        assert_eq!(s.victim(2, &mut rng), 1, "distant line goes first");
    }

    #[test]
    fn duel_roles_partition_sets() {
        assert_eq!(duel_role(0), DuelRole::SrripLeader);
        assert_eq!(duel_role(33), DuelRole::BrripLeader);
        assert_eq!(duel_role(1), DuelRole::Follower);
        assert_eq!(duel_role(64), DuelRole::SrripLeader);
        assert_eq!(duel_role(97), DuelRole::BrripLeader);
        // Followers dominate.
        let followers = (0..4096).filter(|&s| duel_role(s) == DuelRole::Follower).count();
        assert_eq!(followers, 4096 - 2 * 64);
    }

    #[test]
    fn random_is_deterministic_for_seed() {
        let mut s = SetState::new(ReplacementKind::Random, 8);
        let mut rng_a = 42u64;
        let mut rng_b = 42u64;
        let a: Vec<usize> = (0..16).map(|_| s.victim(8, &mut rng_a)).collect();
        let b: Vec<usize> = (0..16).map(|_| s.victim(8, &mut rng_b)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| w < 8));
    }

    #[test]
    fn display_and_all() {
        assert_eq!(ReplacementKind::ALL.len(), 6);
        for k in ReplacementKind::ALL {
            assert!(!k.to_string().is_empty());
        }
        assert!(ReplacementKind::Drrip.is_rrip());
        assert!(!ReplacementKind::Lru.is_rrip());
    }
}
