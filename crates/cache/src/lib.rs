//! Set-associative system-cache (SC) simulator.
//!
//! The system cache is the memory-side, lowest-level cache of the paper's
//! mobile SoC: 4 MB, 16-way, 64 B blocks (Table 1), shared by every agent.
//! This crate models it with the bookkeeping a prefetching study needs:
//!
//! * every line carries a *prefetched* bit and the originating
//!   sub-prefetcher, so useful-prefetch, pollution and Figure 9 breakdown
//!   statistics fall out of the cache itself;
//! * pluggable replacement policies ([`ReplacementKind`]): LRU, FIFO,
//!   2-bit SRRIP and deterministic pseudo-random — used by the paper's
//!   "better replacement doesn't fix the SC" ablation;
//! * an [`MshrFile`] for outstanding misses (late-prefetch detection and
//!   duplicate-miss merging);
//! * a bounded, deduplicating [`PrefetchQueue`].
//!
//! # Examples
//!
//! ```
//! use planaria_cache::{CacheConfig, SetAssocCache};
//! use planaria_common::{AccessKind, PhysAddr};
//!
//! let mut sc = SetAssocCache::new(CacheConfig::system_cache());
//! let addr = PhysAddr::new(0x4000);
//! assert!(!sc.access(addr, AccessKind::Read).is_hit()); // cold miss
//! sc.fill(addr, None);
//! assert!(sc.access(addr, AccessKind::Read).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod mshr;
mod queue;
mod replacement;
mod stats;

pub use cache::{AccessResult, EvictedLine, SetAssocCache};
pub use config::{CacheConfig, ConfigError};
pub use mshr::{MshrFile, MshrStatus};
pub use queue::PrefetchQueue;
pub use replacement::ReplacementKind;
pub use stats::{CacheStats, DeviceCacheStats};
