//! Cache statistics, including prefetch usefulness bookkeeping.

use core::fmt;

use planaria_common::{DeviceId, PrefetchOrigin};

/// Counters maintained by [`crate::SetAssocCache`].
///
/// Prefetch metrics follow the standard definitions:
///
/// * **useful** — first demand hit on a line filled by a prefetch;
/// * **pollution** — a prefetched line evicted without ever serving a
///   demand hit;
/// * **accuracy** = useful / prefetch fills;
/// * **coverage** = useful / (useful + demand misses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Lines filled by demand misses.
    pub demand_fills: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// First demand hits on prefetched lines.
    pub useful_prefetches: u64,
    /// First demand hits on lines prefetched by SLP.
    pub useful_slp: u64,
    /// First demand hits on lines prefetched by TLP.
    pub useful_tlp: u64,
    /// Prefetched lines evicted before any demand use.
    pub polluting_prefetches: u64,
    /// Dirty lines evicted (writeback traffic).
    pub writebacks: u64,
    /// Evictions of any kind.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand accesses observed.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Demand hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits as f64 / total as f64
        }
    }

    /// Prefetch accuracy in `[0, 1]` (0 when nothing was prefetched).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / self.prefetch_fills as f64
        }
    }

    /// Prefetch coverage in `[0, 1]`: fraction of would-be misses that a
    /// prefetch converted into hits.
    pub fn prefetch_coverage(&self) -> f64 {
        let denom = self.useful_prefetches + self.demand_misses;
        if denom == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / denom as f64
        }
    }

    pub(crate) fn record_useful(&mut self, origin: Option<PrefetchOrigin>) {
        self.useful_prefetches += 1;
        match origin {
            Some(PrefetchOrigin::Slp) => self.useful_slp += 1,
            Some(PrefetchOrigin::Tlp) => self.useful_tlp += 1,
            _ => {}
        }
    }
}

/// Per-device demand and usefulness counters, one row per [`DeviceId`].
///
/// Maintained by [`crate::SetAssocCache::access_by`] alongside the
/// aggregate [`CacheStats`]; each counter here is bumped if and only if
/// its aggregate twin is, so summing any column over all devices
/// reproduces the aggregate exactly (asserted by
/// [`DeviceCacheStats::conserves`] and the `tests/closed_loop.rs`
/// conservation tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceCacheStats {
    /// Demand accesses from this device that hit.
    pub demand_hits: u64,
    /// Demand accesses from this device that missed.
    pub demand_misses: u64,
    /// First demand touches of prefetched lines, credited to the touching
    /// device (it is the one whose miss the prefetch hid).
    pub useful_prefetches: u64,
    /// Useful prefetches from SLP-filled lines (Figure 9 split).
    pub useful_slp: u64,
    /// Useful prefetches from TLP-filled lines (Figure 9 split).
    pub useful_tlp: u64,
}

impl DeviceCacheStats {
    /// Demand accesses from this device.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Checks that summing per-device rows reproduces the aggregate for
    /// every shared counter — the conservation invariant per-device
    /// attribution must never break.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_cache::{CacheConfig, SetAssocCache};
    /// use planaria_common::{AccessKind, DeviceId, PhysAddr};
    ///
    /// let mut c = SetAssocCache::new(CacheConfig::system_cache());
    /// c.access_by(PhysAddr::new(0x40), AccessKind::Read, DeviceId::Gpu);
    /// c.access_by(PhysAddr::new(0x80), AccessKind::Read, DeviceId::Cpu(2));
    /// assert!(planaria_cache::DeviceCacheStats::conserves(
    ///     c.device_stats(),
    ///     c.stats(),
    /// ));
    /// ```
    pub fn conserves(rows: &[DeviceCacheStats; DeviceId::COUNT], total: &CacheStats) -> bool {
        let sum = |f: fn(&DeviceCacheStats) -> u64| rows.iter().map(f).sum::<u64>();
        sum(|r| r.demand_hits) == total.demand_hits
            && sum(|r| r.demand_misses) == total.demand_misses
            && sum(|r| r.useful_prefetches) == total.useful_prefetches
            && sum(|r| r.useful_slp) == total.useful_slp
            && sum(|r| r.useful_tlp) == total.useful_tlp
    }

    pub(crate) fn record_useful(&mut self, origin: Option<PrefetchOrigin>) {
        self.useful_prefetches += 1;
        match origin {
            Some(PrefetchOrigin::Slp) => self.useful_slp += 1,
            Some(PrefetchOrigin::Tlp) => self.useful_tlp += 1,
            _ => {}
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} misses {} (hit rate {:.2}%), pf fills {} useful {} polluting {} \
             (accuracy {:.2}%, coverage {:.2}%), writebacks {}",
            self.demand_hits,
            self.demand_misses,
            self.hit_rate() * 100.0,
            self.prefetch_fills,
            self.useful_prefetches,
            self.polluting_prefetches,
            self.prefetch_accuracy() * 100.0,
            self.prefetch_coverage() * 100.0,
            self.writebacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
        assert_eq!(s.prefetch_coverage(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            demand_hits: 75,
            demand_misses: 25,
            prefetch_fills: 50,
            useful_prefetches: 40,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.prefetch_accuracy() - 0.8).abs() < 1e-12);
        assert!((s.prefetch_coverage() - 40.0 / 65.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn record_useful_attributes_origin() {
        let mut s = CacheStats::default();
        s.record_useful(Some(PrefetchOrigin::Slp));
        s.record_useful(Some(PrefetchOrigin::Tlp));
        s.record_useful(Some(PrefetchOrigin::Baseline));
        s.record_useful(None);
        assert_eq!(s.useful_prefetches, 4);
        assert_eq!(s.useful_slp, 1);
        assert_eq!(s.useful_tlp, 1);
    }
}
