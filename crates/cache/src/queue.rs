//! The bounded prefetch queue.
//!
//! Generated prefetch requests are staged here before the memory controller
//! accepts them (Figure 1's "prefetch queue"). The queue deduplicates
//! against its own contents and drops on overflow — both effects matter for
//! the power experiment: a prefetcher that floods the queue wastes energy.

use std::collections::VecDeque;

use planaria_common::PrefetchRequest;
use planaria_hash::{set_with_capacity, FastHashSet};

/// A bounded FIFO of pending prefetch requests with block-level dedup.
#[derive(Debug, Clone)]
pub struct PrefetchQueue {
    queue: VecDeque<PrefetchRequest>,
    pending_blocks: FastHashSet<u64>,
    capacity: usize,
    /// Requests dropped because the queue was full.
    pub dropped_full: u64,
    /// Requests dropped as duplicates of queued blocks.
    pub dropped_duplicate: u64,
    /// Requests accepted.
    pub enqueued: u64,
}

impl PrefetchQueue {
    /// Creates a queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue capacity must be positive");
        Self {
            queue: VecDeque::with_capacity(capacity),
            pending_blocks: set_with_capacity(capacity),
            capacity,
            dropped_full: 0,
            dropped_duplicate: 0,
            enqueued: 0,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Attempts to enqueue; returns `true` if the request was accepted.
    pub fn push(&mut self, req: PrefetchRequest) -> bool {
        let block = req.addr.block_number();
        if self.pending_blocks.contains(&block) {
            self.dropped_duplicate += 1;
            return false;
        }
        if self.queue.len() >= self.capacity {
            self.dropped_full += 1;
            return false;
        }
        self.pending_blocks.insert(block);
        self.queue.push_back(req);
        self.enqueued += 1;
        true
    }

    /// Dequeues the oldest request.
    pub fn pop(&mut self) -> Option<PrefetchRequest> {
        let req = self.queue.pop_front()?;
        self.pending_blocks.remove(&req.addr.block_number());
        Some(req)
    }

    /// Re-stages a request at the *front* of the queue (head-of-line
    /// position), subject to the same dedup and capacity rules as
    /// [`PrefetchQueue::push`]. Used when a popped request cannot issue
    /// yet (its DRAM channel is full) and must keep its place.
    ///
    /// Unlike `push`, an accepted re-stage does not count into `enqueued`:
    /// the request was already counted when it first entered the queue.
    pub fn push_front(&mut self, req: PrefetchRequest) -> bool {
        let block = req.addr.block_number();
        if self.pending_blocks.contains(&block) {
            self.dropped_duplicate += 1;
            return false;
        }
        if self.queue.len() >= self.capacity {
            self.dropped_full += 1;
            return false;
        }
        self.pending_blocks.insert(block);
        self.queue.push_front(req);
        true
    }

    /// The oldest queued request, without dequeuing it.
    pub fn peek(&self) -> Option<&PrefetchRequest> {
        self.queue.front()
    }

    /// Returns `true` when a request for the block is queued.
    pub fn contains_block(&self, addr: planaria_common::PhysAddr) -> bool {
        self.pending_blocks.contains(&addr.block_number())
    }

    /// Removes a queued request for the given block (e.g. because a demand
    /// miss is already fetching it). Returns `true` if one was removed.
    pub fn cancel(&mut self, addr: planaria_common::PhysAddr) -> bool {
        let block = addr.block_number();
        if !self.pending_blocks.remove(&block) {
            return false;
        }
        self.queue.retain(|r| r.addr.block_number() != block);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{Cycle, PhysAddr, PrefetchOrigin};

    fn req(addr: u64) -> PrefetchRequest {
        PrefetchRequest::new(PhysAddr::new(addr), PrefetchOrigin::Slp, Cycle::new(0))
    }

    #[test]
    fn fifo_order() {
        let mut q = PrefetchQueue::new(4);
        assert!(q.push(req(0x40)));
        assert!(q.push(req(0x80)));
        assert_eq!(q.pop().map(|r| r.addr.as_u64()), Some(0x40));
        assert_eq!(q.pop().map(|r| r.addr.as_u64()), Some(0x80));
        assert!(q.pop().is_none());
    }

    #[test]
    fn duplicates_dropped() {
        let mut q = PrefetchQueue::new(4);
        assert!(q.push(req(0x40)));
        assert!(!q.push(req(0x40)));
        assert!(!q.push(req(0x44))); // same block
        assert_eq!(q.dropped_duplicate, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn overflow_drops() {
        let mut q = PrefetchQueue::new(2);
        assert!(q.push(req(0x40)));
        assert!(q.push(req(0x80)));
        assert!(!q.push(req(0xc0)));
        assert_eq!(q.dropped_full, 1);
    }

    #[test]
    fn dedup_resets_after_pop() {
        let mut q = PrefetchQueue::new(2);
        q.push(req(0x40));
        q.pop();
        assert!(q.push(req(0x40)), "block no longer pending");
    }

    #[test]
    fn push_front_takes_head_position() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(0x40));
        q.push(req(0x80));
        let head = q.pop().unwrap();
        assert!(q.push_front(head));
        assert_eq!(q.pop().map(|r| r.addr.as_u64()), Some(0x40), "re-staged head first");
        assert_eq!(q.pop().map(|r| r.addr.as_u64()), Some(0x80));
    }

    #[test]
    fn push_front_respects_dedup_and_capacity() {
        let mut q = PrefetchQueue::new(2);
        q.push(req(0x40));
        q.push(req(0x80));
        assert!(!q.push_front(req(0x40)), "duplicate block rejected");
        assert!(!q.push_front(req(0xc0)), "full queue rejected");
        assert_eq!(q.dropped_duplicate, 1);
        assert_eq!(q.dropped_full, 1);
        // Re-stage does not inflate the accepted-request counter.
        let before = q.enqueued;
        let head = q.pop().unwrap();
        assert!(q.push_front(head));
        assert_eq!(q.enqueued, before);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(0x40));
        q.push(req(0x80));
        assert!(q.cancel(PhysAddr::new(0x44)));
        assert!(!q.contains_block(PhysAddr::new(0x40)));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(PhysAddr::new(0x40)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = PrefetchQueue::new(0);
    }
}
