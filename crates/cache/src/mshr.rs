//! Miss-status holding registers (MSHRs).
//!
//! Outstanding fills — demand misses and issued prefetches — are tracked
//! here so that (a) duplicate misses to the same block merge instead of
//! issuing twice, and (b) a demand miss that lands on an in-flight
//! *prefetch* is recognised as a **late prefetch**: the requester waits
//! only the residual latency instead of a full memory access.

use planaria_common::{Cycle, PhysAddr, PrefetchOrigin};
use planaria_hash::{map_with_capacity, FastHashMap};

/// Outcome of probing the MSHR file for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrStatus {
    /// No outstanding request for this block.
    Absent,
    /// An outstanding request exists; carries its completion time and
    /// whether it was initiated by a prefetch.
    InFlight {
        /// When the outstanding fill completes.
        ready_at: Cycle,
        /// `Some(origin)` when the outstanding request is a prefetch.
        prefetch: Option<PrefetchOrigin>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready_at: Cycle,
    prefetch: Option<PrefetchOrigin>,
}

/// A bounded file of outstanding misses, keyed by block address.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: FastHashMap<u64, Entry>,
    capacity: usize,
    /// Demand misses merged into an in-flight entry.
    pub merged: u64,
    /// Demand misses that hit an in-flight prefetch (late prefetches).
    pub late_prefetch_hits: u64,
    /// Allocations rejected because the file was full.
    pub rejected_full: u64,
}

impl MshrFile {
    /// Creates a file with room for `capacity` outstanding blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Self {
            entries: map_with_capacity(capacity),
            capacity,
            merged: 0,
            late_prefetch_hits: 0,
            rejected_full: 0,
        }
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when no further allocation is possible.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Probes for an outstanding request covering `addr`'s block.
    pub fn probe(&self, addr: PhysAddr) -> MshrStatus {
        match self.entries.get(&addr.block_number()) {
            Some(e) => MshrStatus::InFlight { ready_at: e.ready_at, prefetch: e.prefetch },
            None => MshrStatus::Absent,
        }
    }

    /// Records a demand miss merging into an in-flight entry. Upgrades a
    /// prefetch entry to demand (its data now has a waiting consumer) and
    /// counts a late prefetch.
    pub fn merge_demand(&mut self, addr: PhysAddr) -> Option<Cycle> {
        let e = self.entries.get_mut(&addr.block_number())?;
        self.merged += 1;
        if e.prefetch.take().is_some() {
            self.late_prefetch_hits += 1;
        }
        Some(e.ready_at)
    }

    /// Allocates an entry for a new outstanding fill.
    ///
    /// Returns `false` (and counts a rejection) when the file is full or an
    /// entry already exists for the block.
    pub fn allocate(
        &mut self,
        addr: PhysAddr,
        ready_at: Cycle,
        prefetch: Option<PrefetchOrigin>,
    ) -> bool {
        if self.is_full() {
            self.rejected_full += 1;
            return false;
        }
        let block = addr.block_number();
        if self.entries.contains_key(&block) {
            return false;
        }
        self.entries.insert(block, Entry { ready_at, prefetch });
        true
    }

    /// Releases every entry whose fill completed at or before `now`,
    /// appending `(block address, was prefetch)` pairs to `out` in
    /// address order (the same caller-provided-buffer pattern as the SLP
    /// tables' `sweep(&mut out)`, so steady-state draining allocates
    /// nothing).
    pub fn drain_completed(
        &mut self,
        now: Cycle,
        out: &mut Vec<(PhysAddr, Option<PrefetchOrigin>)>,
    ) {
        let start = out.len();
        self.entries.retain(|&b, e| {
            if e.ready_at <= now {
                out.push((PhysAddr::new(b * planaria_common::BLOCK_SIZE), e.prefetch));
                false
            } else {
                true
            }
        });
        // `retain` visits in map order; re-establish the address order the
        // API guarantees (and determinism demands).
        out[start..].sort_by_key(|(a, _)| a.as_u64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_and_allocate() {
        let mut m = MshrFile::new(4);
        let a = PhysAddr::new(0x1000);
        assert_eq!(m.probe(a), MshrStatus::Absent);
        assert!(m.allocate(a, Cycle::new(100), None));
        assert_eq!(m.probe(a), MshrStatus::InFlight { ready_at: Cycle::new(100), prefetch: None });
        assert!(!m.allocate(a, Cycle::new(200), None), "duplicate allocation");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(PhysAddr::new(0x0), Cycle::new(1), None));
        assert!(m.allocate(PhysAddr::new(0x40), Cycle::new(1), None));
        assert!(m.is_full());
        assert!(!m.allocate(PhysAddr::new(0x80), Cycle::new(1), None));
        assert_eq!(m.rejected_full, 1);
    }

    #[test]
    fn merge_demand_upgrades_prefetch() {
        let mut m = MshrFile::new(4);
        let a = PhysAddr::new(0x2000);
        m.allocate(a, Cycle::new(500), Some(PrefetchOrigin::Slp));
        let ready = m.merge_demand(a).expect("in flight");
        assert_eq!(ready, Cycle::new(500));
        assert_eq!(m.late_prefetch_hits, 1);
        assert_eq!(m.merged, 1);
        // Entry is now a demand entry.
        assert_eq!(m.probe(a), MshrStatus::InFlight { ready_at: Cycle::new(500), prefetch: None });
    }

    #[test]
    fn merge_absent_returns_none() {
        let mut m = MshrFile::new(4);
        assert!(m.merge_demand(PhysAddr::new(0x3000)).is_none());
    }

    #[test]
    fn drain_completes_in_time_order() {
        let mut m = MshrFile::new(8);
        m.allocate(PhysAddr::new(0x40), Cycle::new(10), None);
        m.allocate(PhysAddr::new(0x80), Cycle::new(20), Some(PrefetchOrigin::Tlp));
        m.allocate(PhysAddr::new(0xc0), Cycle::new(30), None);
        let mut done = Vec::new();
        m.drain_completed(Cycle::new(20), &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, PhysAddr::new(0x40));
        assert_eq!(done[1].1, Some(PrefetchOrigin::Tlp));
        assert_eq!(m.len(), 1);
        done.clear();
        m.drain_completed(Cycle::new(19), &mut done);
        assert!(done.is_empty());
    }

    #[test]
    fn drain_appends_after_existing_content() {
        // The buffer is caller-owned: existing content stays, new pairs
        // land behind it in address order.
        let mut m = MshrFile::new(8);
        m.allocate(PhysAddr::new(0xc0), Cycle::new(5), None);
        m.allocate(PhysAddr::new(0x40), Cycle::new(5), None);
        let sentinel = (PhysAddr::new(0xffff), None);
        let mut out = vec![sentinel];
        m.drain_completed(Cycle::new(5), &mut out);
        assert_eq!(out[0], sentinel);
        assert_eq!(out[1].0, PhysAddr::new(0x40));
        assert_eq!(out[2].0, PhysAddr::new(0xc0));
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn sub_block_addresses_share_entry() {
        let mut m = MshrFile::new(4);
        m.allocate(PhysAddr::new(0x1000), Cycle::new(5), None);
        assert_ne!(m.probe(PhysAddr::new(0x1004)), MshrStatus::Absent);
    }
}
