//! Property test: the LRU cache agrees access-for-access with a tiny,
//! obviously-correct reference model on arbitrary interleavings of
//! accesses and fills.

use std::collections::VecDeque;

use planaria_cache::{AccessResult, CacheConfig, ReplacementKind, SetAssocCache};
use planaria_common::{AccessKind, PhysAddr, BLOCK_SIZE};
use proptest::prelude::*;

/// A straightforward LRU set-associative cache: per-set deque of block
/// numbers, front = most recent.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self { sets: (0..sets).map(|_| VecDeque::new()).collect(), ways }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    fn access(&mut self, block: u64) -> bool {
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&b| b == block) {
            let b = self.sets[set].remove(pos).expect("position valid");
            self.sets[set].push_front(b);
            true
        } else {
            false
        }
    }

    /// Fill; returns the evicted block, if any.
    fn fill(&mut self, block: u64) -> Option<u64> {
        let set = self.set_of(block);
        if self.sets[set].contains(&block) {
            return None;
        }
        self.sets[set].push_front(block);
        if self.sets[set].len() > self.ways {
            self.sets[set].pop_back()
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Demand access; fill on miss (like the simulator's synchronous path).
    Access(u64),
    /// Speculative fill only.
    Fill(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Small block range so sets collide and evict constantly.
    prop_oneof![(0u64..96).prop_map(Op::Access), (0u64..96).prop_map(Op::Fill),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_cache_matches_reference(ops in proptest::collection::vec(arb_op(), 1..400)) {
        // 8 sets x 2 ways.
        let cfg = CacheConfig {
            size_bytes: 8 * 2 * BLOCK_SIZE,
            ways: 2,
            replacement: ReplacementKind::Lru,
        };
        let mut dut = SetAssocCache::new(cfg);
        let mut reference = RefCache::new(8, 2);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Access(block) => {
                    let addr = PhysAddr::new(block * BLOCK_SIZE);
                    let got = dut.access(addr, AccessKind::Read).is_hit();
                    let want = reference.access(block);
                    prop_assert_eq!(got, want, "op {}: access {} hit mismatch", i, block);
                    if !got {
                        let evicted = dut.fill(addr, None).map(|e| e.addr.block_number());
                        let ref_evicted = reference.fill(block);
                        prop_assert_eq!(evicted, ref_evicted, "op {}: eviction mismatch", i);
                    }
                }
                Op::Fill(block) => {
                    let addr = PhysAddr::new(block * BLOCK_SIZE);
                    let evicted = dut.fill(addr, None).map(|e| e.addr.block_number());
                    let ref_evicted = reference.fill(block);
                    prop_assert_eq!(evicted, ref_evicted, "op {}: fill eviction mismatch", i);
                }
            }
        }
        // Final contents agree.
        for set in 0..8u64 {
            for way_block in &reference.sets[set as usize] {
                prop_assert!(
                    dut.contains(PhysAddr::new(way_block * BLOCK_SIZE)),
                    "reference holds block {way_block}, cache does not"
                );
            }
        }
    }

    #[test]
    fn capacity_is_never_exceeded(ops in proptest::collection::vec(arb_op(), 1..300)) {
        for repl in ReplacementKind::ALL {
            let cfg = CacheConfig {
                size_bytes: 4 * 2 * BLOCK_SIZE,
                ways: 2,
                replacement: repl,
            };
            let mut dut = SetAssocCache::new(cfg);
            for op in &ops {
                let block = match *op { Op::Access(b) | Op::Fill(b) => b };
                let addr = PhysAddr::new(block * BLOCK_SIZE);
                match *op {
                    Op::Access(_) => {
                        if matches!(dut.access(addr, AccessKind::Read), AccessResult::Miss) {
                            dut.fill(addr, None);
                        }
                    }
                    Op::Fill(_) => {
                        dut.fill(addr, None);
                    }
                }
                prop_assert!(dut.valid_lines() <= 8, "{repl}: capacity exceeded");
            }
            // A resident block always hits, under every policy.
            let s = dut.stats();
            prop_assert_eq!(s.demand_accesses(), s.demand_hits + s.demand_misses);
        }
    }

    #[test]
    fn stats_are_conserved(ops in proptest::collection::vec(arb_op(), 1..300)) {
        let cfg = CacheConfig {
            size_bytes: 8 * 2 * BLOCK_SIZE,
            ways: 2,
            replacement: ReplacementKind::Lru,
        };
        let mut dut = SetAssocCache::new(cfg);
        let mut accesses = 0u64;
        let mut fills = 0u64;
        for op in &ops {
            match *op {
                Op::Access(block) => {
                    accesses += 1;
                    let addr = PhysAddr::new(block * BLOCK_SIZE);
                    if !dut.access(addr, AccessKind::Read).is_hit()
                        && (dut.fill(addr, None).is_some() || dut.valid_lines() <= 16) {
                            fills += 1;
                        }
                }
                Op::Fill(block) => {
                    let addr = PhysAddr::new(block * BLOCK_SIZE);
                    dut.fill(addr, Some(planaria_common::PrefetchOrigin::Slp));
                    fills += 1;
                }
            }
        }
        let s = dut.stats();
        prop_assert_eq!(s.demand_accesses(), accesses);
        prop_assert!(s.useful_prefetches <= s.prefetch_fills);
        prop_assert!(s.polluting_prefetches <= s.prefetch_fills);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!(s.demand_fills + s.prefetch_fills <= fills);
    }
}
