//! Property tests: the command log of a random request mix never violates
//! the JEDEC-style inter-command constraints of Table 1.

use planaria_common::{Cycle, PhysAddr, BLOCK_SIZE};
use planaria_dram::{CommandKind, DramConfig, MemoryController, Priority, Timing};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Req {
    addr: u64,
    is_write: bool,
    at: u64,
}

fn arb_req() -> impl Strategy<Value = Req> {
    // Small page range so banks/rows collide often.
    (0u64..2048, any::<bool>(), 0u64..50_000).prop_map(|(block, is_write, at)| Req {
        addr: block * BLOCK_SIZE,
        is_write,
        at,
    })
}

fn run(reqs: Vec<Req>) -> MemoryController {
    let mut reqs = reqs;
    reqs.sort_by_key(|r| r.at);
    let mut mc = MemoryController::new(DramConfig::lpddr4().with_log());
    for r in reqs {
        let now = Cycle::new(r.at);
        mc.advance_collect(now);
        let prio = if r.is_write { Priority::Writeback } else { Priority::Demand };
        // Drop politely if the queue is full — the sim does the same for
        // prefetches; protocol invariants must hold regardless.
        let _ = mc.try_enqueue(PhysAddr::new(r.addr), r.is_write, prio, now);
    }
    mc.drain_collect();
    mc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn protocol_invariants_hold(reqs in proptest::collection::vec(arb_req(), 1..200)) {
        let t = Timing::lpddr4();
        let mc = run(reqs);
        for ch in 0..4 {
            let log = mc.command_log(ch);
            // Per-bank constraint checks.
            for bank in 0..8 {
                let cmds: Vec<_> = log
                    .iter()
                    .filter(|c| c.bank == bank || c.kind == CommandKind::Refresh)
                    .collect();
                let mut last_act: Option<u64> = None;
                let mut last_pre_or_ref_end: Option<u64> = None;
                for c in &cmds {
                    match c.kind {
                        CommandKind::Activate => {
                            if let Some(a) = last_act {
                                prop_assert!(
                                    c.cycle.as_u64() >= a + t.t_rc,
                                    "ch{ch} bank{bank}: ACT at {} after ACT at {a} violates tRC",
                                    c.cycle.as_u64()
                                );
                            }
                            if let Some(p) = last_pre_or_ref_end {
                                prop_assert!(
                                    c.cycle.as_u64() >= p,
                                    "ch{ch} bank{bank}: ACT at {} inside PRE/REF window ending {p}",
                                    c.cycle.as_u64()
                                );
                            }
                            last_act = Some(c.cycle.as_u64());
                        }
                        CommandKind::Precharge => {
                            if let Some(a) = last_act {
                                prop_assert!(
                                    c.cycle.as_u64() >= a + t.t_ras,
                                    "ch{ch} bank{bank}: PRE violates tRAS"
                                );
                            }
                            last_pre_or_ref_end = Some(c.cycle.as_u64() + t.t_rp);
                        }
                        CommandKind::Read | CommandKind::Write => {
                            if let Some(a) = last_act {
                                prop_assert!(
                                    c.cycle.as_u64() >= a + t.t_rcd,
                                    "ch{ch} bank{bank}: column command violates tRCD"
                                );
                            }
                        }
                        CommandKind::Refresh => {
                            last_pre_or_ref_end = Some(c.cycle.as_u64() + t.t_rfc);
                        }
                    }
                }
            }
            // Channel-level: column commands at least tCCD apart; at most
            // 4 ACTs in any tFAW window.
            let cols: Vec<u64> = log
                .iter()
                .filter(|c| matches!(c.kind, CommandKind::Read | CommandKind::Write))
                .map(|c| c.cycle.as_u64())
                .collect();
            for w in cols.windows(2) {
                prop_assert!(w[1] >= w[0] + t.t_ccd, "ch{ch}: column commands violate tCCD");
            }
            let acts: Vec<u64> = log
                .iter()
                .filter(|c| c.kind == CommandKind::Activate)
                .map(|c| c.cycle.as_u64())
                .collect();
            for w in acts.windows(5) {
                prop_assert!(
                    w[4] >= w[0] + t.t_faw,
                    "ch{ch}: five ACTs within tFAW window"
                );
            }
        }
    }

    #[test]
    fn every_request_completes_exactly_once(reqs in proptest::collection::vec(arb_req(), 1..100)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|r| r.at);
        let mut mc = MemoryController::new(DramConfig::lpddr4());
        let mut expected = Vec::new();
        for r in &reqs {
            let now = Cycle::new(r.at);
            let mut done = mc.advance_collect(now);
            expected.retain(|id| !done.iter().any(|c| c.id == *id));
            done.clear();
            if let Ok(id) = mc.try_enqueue(
                PhysAddr::new(r.addr),
                r.is_write,
                Priority::Demand,
                now,
            ) {
                expected.push(id);
            }
        }
        let done = mc.drain_collect();
        let mut got: Vec<_> = done.iter().map(|c| c.id).collect();
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn completions_never_precede_enqueue_plus_min_latency(
        reqs in proptest::collection::vec(arb_req(), 1..100)
    ) {
        let t = Timing::lpddr4();
        let mc_done = {
            let mut reqs = reqs;
            reqs.sort_by_key(|r| r.at);
            let mut mc = MemoryController::new(DramConfig::lpddr4());
            let mut all = Vec::new();
            for r in reqs {
                let now = Cycle::new(r.at);
                all.extend(mc.advance_collect(now));
                let _ = mc.try_enqueue(PhysAddr::new(r.addr), r.is_write, Priority::Demand, now);
            }
            all.extend(mc.drain_collect());
            all
        };
        for c in &mc_done {
            let min = if c.is_write { t.t_cwl + t.t_burst() } else { t.t_cl + t.t_burst() };
            prop_assert!(
                c.finish.as_u64() >= c.enqueued.as_u64() + min,
                "completion faster than physically possible"
            );
        }
    }
}
