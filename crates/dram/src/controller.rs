//! The multi-channel memory controller facade.

use core::fmt;

use planaria_common::{Cycle, PhysAddr};

use crate::channel::Channel;
use crate::config::DramConfig;
use crate::power::DramStats;
use crate::request::{Command, Completion, Priority, RequestId};

/// Error returned when a channel queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The channel whose queue rejected the request.
    pub channel: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dram channel {} queue is full", self.channel)
    }
}

impl std::error::Error for QueueFull {}

/// A 4-channel LPDDR4 memory controller (see the crate docs for the model).
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    channels: Vec<Channel>,
    next_id: u64,
    /// Lower bound on the next cycle at which *any* channel can act;
    /// [`MemoryController::advance_to`] before this cycle is a no-op and
    /// returns without touching the channels. Reset to `Cycle::ZERO`
    /// whenever channel state changes outside `advance_to` (enqueue).
    next_event: Cycle,
}

impl MemoryController {
    /// Creates a controller from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.channels` does not match the static page-segment
    /// channel mapping (4 channels).
    pub fn new(cfg: DramConfig) -> Self {
        assert_eq!(
            cfg.channels,
            planaria_common::NUM_CHANNELS,
            "the static page-segment mapping requires {} channels",
            planaria_common::NUM_CHANNELS
        );
        Self {
            channels: (0..cfg.channels).map(|_| Channel::new(cfg)).collect(),
            next_id: 0,
            next_event: Cycle::ZERO,
            cfg,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Attempts to enqueue a 64 B request at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the target channel's queue is at its
    /// configured depth; the caller decides whether to stall (demand) or
    /// drop (prefetch).
    pub fn try_enqueue(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        priority: Priority,
        now: Cycle,
    ) -> Result<RequestId, QueueFull> {
        let ch = addr.channel().as_usize();
        if !self.channels[ch].has_room() {
            return Err(QueueFull { channel: ch });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.channels[ch].enqueue(id, addr.block_base(), is_write, priority, now);
        self.next_event = Cycle::ZERO;
        Ok(id)
    }

    /// Number of queued requests in `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn queue_len(&self, channel: usize) -> usize {
        self.channels[channel].queue_len()
    }

    /// Returns `true` if `addr`'s channel can accept another request.
    pub fn has_room_for(&self, addr: PhysAddr) -> bool {
        self.channels[addr.channel().as_usize()].has_room()
    }

    /// Issues every command that can legally issue at or before `now` on
    /// every channel, filling `out` (cleared first) with completions
    /// sorted by finish time.
    ///
    /// The caller owns and reuses the buffer: the simulator calls this
    /// once per demand access, so a returned `Vec` here would be a heap
    /// allocation on the steady-state hot path.
    pub fn advance_to(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.clear();
        // Incremental scheduling fast path: each channel's memoised
        // decision bounds when it can next act, so calls before the bound
        // (the common case — one call per simulated demand access) skip
        // the per-channel walk entirely.
        if now < self.next_event {
            return;
        }
        for ch in &mut self.channels {
            ch.advance_to(now, out);
        }
        self.next_event =
            self.channels.iter().map(Channel::next_event).min().unwrap_or(Cycle::ZERO);
        out.sort_by_key(|c| (c.finish, c.id));
    }

    /// Services every outstanding request, filling `out` (cleared first)
    /// with completions sorted by finish time.
    pub fn drain(&mut self, out: &mut Vec<Completion>) {
        out.clear();
        self.next_event = Cycle::ZERO;
        for ch in &mut self.channels {
            ch.drain(out);
        }
        out.sort_by_key(|c| (c.finish, c.id));
    }

    /// [`MemoryController::advance_to`] into a freshly allocated buffer —
    /// a convenience for tests and examples off the hot path.
    pub fn advance_collect(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_to(now, &mut out);
        out
    }

    /// [`MemoryController::drain`] into a freshly allocated buffer — a
    /// convenience for tests and examples off the hot path.
    pub fn drain_collect(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain(&mut out);
        out
    }

    /// Aggregated command counters over all channels.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.merge(&ch.stats);
        }
        s
    }

    /// Total DRAM energy over `duration_cycles`, summed per channel so
    /// each channel's background and power-down windows are charged
    /// correctly.
    pub fn energy_pj(&self, duration_cycles: u64) -> f64 {
        self.channels.iter().map(|ch| ch.stats.energy_pj(&self.cfg.energy, duration_cycles)).sum()
    }

    /// Clears accumulated command counters on every channel (e.g. after a
    /// warm-up phase); in-flight protocol state is untouched.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.stats = DramStats::default();
        }
    }

    /// Per-channel command counters.
    pub fn channel_stats(&self, channel: usize) -> &DramStats {
        &self.channels[channel].stats
    }

    /// The recorded command log of `channel` (empty unless
    /// [`DramConfig::record_log`] is set).
    pub fn command_log(&self, channel: usize) -> &[Command] {
        &self.channels[channel].log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Timing;
    use crate::request::CommandKind;
    use planaria_common::{BLOCK_SIZE, PAGE_SIZE};

    fn mc_logged() -> MemoryController {
        MemoryController::new(DramConfig::lpddr4().with_log())
    }

    #[test]
    fn single_read_latency_is_closed_bank() {
        let t = Timing::lpddr4();
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        let done = mc.drain_collect();
        assert_eq!(done.len(), 1);
        // Cold bank: ACT at 0 is gated only by the command bus, then
        // RD at tRCD, data at +tCL+tBURST.
        assert_eq!(done[0].finish.as_u64(), t.row_closed_latency());
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let t = Timing::lpddr4();
        // Two reads to the same row.
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.try_enqueue(PhysAddr::new(BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
            .expect("room");
        let done = mc.drain_collect();
        let hit_gap = done[1].finish - done[0].finish;
        assert_eq!(hit_gap, t.t_ccd, "row hit should be tCCD apart");

        // Two reads to different rows of the same bank (conflict).
        // Same channel+bank, different row: rows interleave across 8 banks
        // every 32 blocks, so add 8*32 blocks within the channel = 16 pages.
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.try_enqueue(PhysAddr::new(16 * PAGE_SIZE), false, Priority::Demand, Cycle::ZERO)
            .expect("room");
        let done = mc.drain_collect();
        let conflict_gap = done[1].finish - done[0].finish;
        assert!(
            conflict_gap > hit_gap,
            "conflict gap {conflict_gap} should exceed hit gap {hit_gap}"
        );
    }

    #[test]
    fn channels_are_independent() {
        let mut mc = mc_logged();
        // Block 0 -> channel 0; block 16 -> channel 1.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(16 * BLOCK_SIZE);
        assert_ne!(a.channel(), b.channel());
        mc.try_enqueue(a, false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.try_enqueue(b, false, Priority::Demand, Cycle::ZERO).expect("room");
        let done = mc.drain_collect();
        // Both finish at the cold-bank latency: no shared-bus interference.
        assert_eq!(done[0].finish, done[1].finish);
    }

    #[test]
    fn queue_depth_is_enforced() {
        let mut cfg = DramConfig::lpddr4();
        cfg.queue_depth = 2;
        let mut mc = MemoryController::new(cfg);
        let a = PhysAddr::new(0);
        assert!(mc.try_enqueue(a, false, Priority::Demand, Cycle::ZERO).is_ok());
        assert!(mc
            .try_enqueue(PhysAddr::new(BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
            .is_ok());
        let err = mc
            .try_enqueue(PhysAddr::new(2 * BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
            .unwrap_err();
        assert_eq!(err.channel, 0);
        assert!(!err.to_string().is_empty());
        assert!(!mc.has_room_for(a));
    }

    #[test]
    fn advance_to_only_issues_due_commands() {
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        assert!(mc.advance_collect(Cycle::new(1)).is_empty(), "data cannot be ready yet");
        let t = Timing::lpddr4();
        let done = mc.advance_collect(Cycle::new(t.row_closed_latency() + 10));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn refresh_happens_periodically() {
        let t = Timing::lpddr4();
        let mut mc = mc_logged();
        // Idle for three refresh intervals.
        mc.advance_collect(Cycle::new(3 * t.t_refi + 1));
        let s = mc.stats();
        assert_eq!(s.n_ref, 3 * 4, "3 refreshes x 4 channels");
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), true, Priority::Writeback, Cycle::ZERO).expect("room");
        let done = mc.drain_collect();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(mc.stats().n_wr, 1);
    }

    #[test]
    fn demand_wins_ties_over_prefetch() {
        let mut mc = mc_logged();
        // Same bank, same row, enqueued same cycle: prefetch first in queue.
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Prefetch, Cycle::ZERO).expect("room");
        mc.try_enqueue(PhysAddr::new(BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
            .expect("room");
        let done = mc.drain_collect();
        // The ACT is triggered by whichever is scheduled first; both target
        // the same row so the column commands tie — demand must go first.
        assert_eq!(done[0].priority, Priority::Demand);
    }

    #[test]
    fn command_log_respects_trcd() {
        let t = Timing::lpddr4();
        let mut mc = mc_logged();
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.drain_collect();
        let log = mc.command_log(0);
        let act = log.iter().find(|c| c.kind == CommandKind::Activate).expect("ACT");
        let rd = log.iter().find(|c| c.kind == CommandKind::Read).expect("RD");
        assert!(rd.cycle.as_u64() >= act.cycle.as_u64() + t.t_rcd);
    }

    #[test]
    fn fcfs_services_strictly_in_order() {
        use crate::config::SchedulerKind;
        // Interleave row-conflict and row-hit requests: FR-FCFS reorders,
        // FCFS must not.
        let addrs = [
            PhysAddr::new(0),
            PhysAddr::new(16 * PAGE_SIZE), // same bank, different row
            PhysAddr::new(BLOCK_SIZE),     // row hit with the first
            PhysAddr::new(17 * PAGE_SIZE),
        ];
        let run = |sched| {
            let mut mc = MemoryController::new(DramConfig::lpddr4().with_scheduler(sched));
            let ids: Vec<RequestId> = addrs
                .iter()
                .map(|&a| mc.try_enqueue(a, false, Priority::Demand, Cycle::ZERO).expect("room"))
                .collect();
            let done = mc.drain_collect();
            let order: Vec<RequestId> = done.iter().map(|c| c.id).collect();
            (ids, order, done.last().expect("nonempty").finish)
        };
        let (ids, order, fcfs_finish) = run(SchedulerKind::Fcfs);
        assert_eq!(order, ids, "FCFS must preserve arrival order");
        let (_, frfcfs_order, frfcfs_finish) = run(SchedulerKind::FrFcfs);
        assert_ne!(frfcfs_order, order, "FR-FCFS should reorder for the row hit");
        assert!(frfcfs_finish <= fcfs_finish, "FR-FCFS must not be slower overall");
    }

    #[test]
    fn idle_rank_powers_down_and_pays_wakeup() {
        let t = Timing::lpddr4();
        let mut mc = MemoryController::new(DramConfig::lpddr4());
        // Long idle gap before the first request (shorter than tREFI so no
        // refresh interferes with the arithmetic).
        let now = Cycle::new(5000);
        mc.advance_collect(now);
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, now).expect("room");
        let done = mc.drain_collect();
        // The wake adds tXP before the first command.
        assert_eq!(
            done[0].finish.as_u64(),
            5000 + t.t_xp + t.row_closed_latency(),
            "wake-up penalty missing"
        );
        let s = mc.stats();
        assert_eq!(s.n_wakeups, 1);
        assert_eq!(s.powerdown_cycles, 5000 - t.t_cke);
    }

    #[test]
    fn powerdown_can_be_disabled() {
        let mut cfg = DramConfig::lpddr4();
        cfg.powerdown = false;
        let mut mc = MemoryController::new(cfg);
        let now = Cycle::new(5000);
        mc.advance_collect(now);
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, now).expect("room");
        let done = mc.drain_collect();
        let t = Timing::lpddr4();
        assert_eq!(done[0].finish.as_u64(), 5000 + t.row_closed_latency());
        assert_eq!(mc.stats().powerdown_cycles, 0);
    }

    #[test]
    fn closed_page_precharges_when_no_row_hit_waits() {
        use crate::config::PagePolicy;
        // Single read, closed-page: the row is auto-precharged after the
        // column command (one PRE in the log with no second request).
        let mut mc = MemoryController::new(
            DramConfig::lpddr4().with_page_policy(PagePolicy::Closed).with_log(),
        );
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.drain_collect();
        assert_eq!(mc.stats().n_pre, 1, "auto-precharge missing");

        // Two same-row reads enqueued together: the first column command
        // sees the second hit waiting and keeps the row open.
        let mut mc = MemoryController::new(
            DramConfig::lpddr4().with_page_policy(PagePolicy::Closed).with_log(),
        );
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.try_enqueue(PhysAddr::new(BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
            .expect("room");
        let done = mc.drain_collect();
        let t = Timing::lpddr4();
        assert_eq!(done[1].finish - done[0].finish, t.t_ccd, "second read stays a row hit");
        assert_eq!(mc.stats().n_pre, 1, "only the final auto-precharge");
    }

    #[test]
    fn closed_page_speeds_up_pure_conflicts() {
        use crate::config::PagePolicy;
        // Alternating rows in the same bank: closed-page saves the PRE
        // from the critical path of every second access.
        let run = |policy| {
            let mut mc = MemoryController::new(DramConfig::lpddr4().with_page_policy(policy));
            for i in 0..8u64 {
                // Rows alternate: 0, 16 pages apart (same bank, diff row).
                let addr = PhysAddr::new((i % 2) * 16 * PAGE_SIZE + (i / 2) * BLOCK_SIZE);
                mc.try_enqueue(addr, false, Priority::Demand, Cycle::new(i * 500)).expect("room");
                mc.advance_collect(Cycle::new(i * 500));
            }
            mc.drain_collect().last().expect("nonempty").finish
        };
        let open = run(PagePolicy::Open);
        let closed = run(PagePolicy::Closed);
        assert!(
            closed <= open,
            "closed-page must not lose on a pure conflict pattern: {closed:?} vs {open:?}"
        );
    }

    #[test]
    fn reads_split_by_priority() {
        let mut mc = MemoryController::new(DramConfig::lpddr4());
        for i in 0..12u64 {
            let prio = if i % 3 == 0 { Priority::Demand } else { Priority::Prefetch };
            mc.try_enqueue(PhysAddr::new(i * BLOCK_SIZE), false, prio, Cycle::new(i * 50))
                .expect("room");
        }
        mc.try_enqueue(PhysAddr::new(13 * BLOCK_SIZE), true, Priority::Writeback, Cycle::ZERO)
            .expect("room");
        mc.drain_collect();
        let s = mc.stats();
        assert_eq!(s.n_rd, 12);
        assert_eq!(s.n_rd_demand, 4);
        assert_eq!(s.n_rd_prefetch, 8);
        assert_eq!(s.n_rd_demand + s.n_rd_prefetch, s.n_rd, "split partitions reads");
        assert_eq!(s.n_wr, 1, "writebacks are writes, never in the read split");
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut mc = MemoryController::new(DramConfig::lpddr4());
        mc.try_enqueue(PhysAddr::new(0), false, Priority::Demand, Cycle::ZERO).expect("room");
        mc.drain_collect();
        assert!(mc.stats().n_rd > 0);
        mc.reset_stats();
        assert_eq!(mc.stats(), DramStats::default());
    }

    #[test]
    fn energy_accounts_all_channels() {
        let mc = MemoryController::new(DramConfig::lpddr4());
        // Idle controller: pure background on four channels.
        let e = mc.energy_pj(1000);
        let per_channel = DramConfig::lpddr4().energy.background_pj_per_cycle * 1000.0;
        assert!((e - 4.0 * per_channel).abs() < 1e-6);
    }

    #[test]
    fn completion_ids_match_enqueue_order_of_single_stream() {
        let mut mc = mc_logged();
        let mut ids = Vec::new();
        for i in 0..10u64 {
            ids.push(
                mc.try_enqueue(PhysAddr::new(i * BLOCK_SIZE), false, Priority::Demand, Cycle::ZERO)
                    .expect("room"),
            );
        }
        let done = mc.drain_collect();
        assert_eq!(done.len(), 10);
        let mut got: Vec<RequestId> = done.iter().map(|c| c.id).collect();
        got.sort();
        assert_eq!(got, ids);
    }
}
