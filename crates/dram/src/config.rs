//! DRAM configuration: geometry, timing and address mapping.

use planaria_common::{PhysAddr, BLOCKS_PER_SEGMENT, BLOCK_SIZE, NUM_CHANNELS};

/// Inter-command timing constraints, in memory-controller cycles.
///
/// The values of [`Timing::lpddr4`] are exactly the paper's Table 1 set;
/// `tCL`/`tCWL` (CAS latencies) are not listed in the table and use standard
/// LPDDR4-3200 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // the fields are the standard JEDEC parameter names
pub struct Timing {
    pub t_ras: u64,
    pub t_rcd: u64,
    pub t_rrd: u64,
    pub t_rc: u64,
    pub t_rp: u64,
    pub t_ccd: u64,
    pub t_rtp: u64,
    pub t_wtr: u64,
    pub t_wr: u64,
    pub t_rtrs: u64,
    pub t_rfc: u64,
    pub t_faw: u64,
    pub t_cke: u64,
    pub t_xp: u64,
    pub t_cmd: u64,
    pub t_cl: u64,
    pub t_cwl: u64,
    /// Burst length in beats; a 64 B block moves in `burst_length / 2`
    /// clock cycles on the DDR bus.
    pub burst_length: u64,
    /// All-bank refresh interval.
    pub t_refi: u64,
}

impl Timing {
    /// Table 1's LPDDR4 timing set.
    pub const fn lpddr4() -> Self {
        Self {
            t_ras: 51,
            t_rcd: 16,
            t_rrd: 12,
            t_rc: 76,
            t_rp: 16,
            t_ccd: 8,
            t_rtp: 9,
            t_wtr: 12,
            t_wr: 22,
            t_rtrs: 2,
            t_rfc: 216,
            t_faw: 48,
            t_cke: 9,
            t_xp: 9,
            t_cmd: 1,
            t_cl: 28,
            t_cwl: 14,
            burst_length: 16,
            t_refi: 6240,
        }
    }

    /// Data-transfer time of one 64 B burst on the DDR bus.
    pub const fn t_burst(&self) -> u64 {
        self.burst_length / 2
    }

    /// Idealised row-hit read latency (`tCL + tBURST`).
    pub const fn row_hit_latency(&self) -> u64 {
        self.t_cl + self.t_burst()
    }

    /// Idealised row-miss (closed-bank) read latency (`tRCD + tCL + tBURST`).
    pub const fn row_closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.t_burst()
    }

    /// Idealised row-conflict read latency (`tRP + tRCD + tCL + tBURST`).
    pub const fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst()
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::lpddr4()
    }
}

/// Maps a channel-local block to (bank, row, column-block).
///
/// The channel itself comes from the static page-segment slicing in
/// [`planaria_common::PhysAddr::channel`]: each 4 KB page contributes one
/// 16-block (1 KB) segment to each channel. Within a channel, consecutive
/// segments fill a 2 KB row (two pages' worth), and rows interleave across
/// banks — so a footprint prefetch burst within one page enjoys row-buffer
/// locality, which is where Planaria's power advantage comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AddressMap {
    /// Banks per channel (Table 1: 8).
    pub banks: usize,
    /// 64 B blocks per row (2 KB rows → 32 blocks).
    pub blocks_per_row: u64,
}

impl AddressMap {
    /// The Table 1 geometry.
    pub const fn lpddr4() -> Self {
        Self { banks: 8, blocks_per_row: 32 }
    }

    /// Decomposes an address into `(bank, row)` within its channel.
    pub fn locate(&self, addr: PhysAddr) -> (usize, u64) {
        // Channel-local block number: each page contributes
        // BLOCKS_PER_SEGMENT consecutive blocks to this channel.
        let page = addr.page().as_u64();
        let local = page * BLOCKS_PER_SEGMENT as u64 + addr.block_index().index_in_segment() as u64;
        let row_global = local / self.blocks_per_row;
        let bank = (row_global % self.banks as u64) as usize;
        let row = row_global / self.banks as u64;
        (bank, row)
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        Self::lpddr4()
    }
}

/// Command-scheduling discipline of each channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerKind {
    /// First-ready, first-come-first-served: row hits first, then age
    /// (the high-performance default).
    #[default]
    FrFcfs,
    /// Strict first-come-first-served (the ablation baseline).
    Fcfs,
}

impl core::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::Fcfs => "FCFS",
        })
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PagePolicy {
    /// Keep rows open after column commands (bets on row-buffer locality;
    /// the default, and what pattern-bursting prefetchers feed).
    #[default]
    Open,
    /// Auto-precharge after a column command unless another queued request
    /// targets the same row (bets against locality; trades row hits for
    /// cheaper conflicts).
    Closed,
}

impl core::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            PagePolicy::Open => "open-page",
            PagePolicy::Closed => "closed-page",
        })
    }
}

/// Full controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramConfig {
    /// Channel count (the common static mapping assumes 4).
    pub channels: usize,
    /// Timing parameters.
    pub timing: Timing,
    /// Address decomposition.
    pub map: AddressMap,
    /// Per-channel request-queue depth (Table 1: 64).
    pub queue_depth: usize,
    /// Command scheduling discipline.
    pub scheduler: SchedulerKind,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Model CKE power-down: an idle rank (no pending work for `t_cke`)
    /// drops to reduced background power and pays `t_xp` to wake — the
    /// LPDDR low-power behaviour Table 1's tCKE/tXP parameters exist for.
    pub powerdown: bool,
    /// Energy model parameters.
    pub energy: crate::power::EnergyParams,
    /// Record the full command log (for tests; costs memory).
    pub record_log: bool,
}

impl DramConfig {
    /// The paper's Table 1 memory system.
    pub fn lpddr4() -> Self {
        Self {
            channels: NUM_CHANNELS,
            timing: Timing::lpddr4(),
            map: AddressMap::lpddr4(),
            queue_depth: 64,
            scheduler: SchedulerKind::default(),
            page_policy: PagePolicy::default(),
            powerdown: true,
            energy: crate::power::EnergyParams::lpddr4(),
            record_log: false,
        }
    }

    /// Enables command-log recording (builder style).
    #[must_use]
    pub fn with_log(mut self) -> Self {
        self.record_log = true;
        self
    }

    /// Selects the scheduler (builder style).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the row-buffer policy (builder style).
    #[must_use]
    pub fn with_page_policy(mut self, page_policy: PagePolicy) -> Self {
        self.page_policy = page_policy;
        self
    }

    /// Bytes per row (for documentation/reporting).
    pub const fn row_bytes(&self) -> u64 {
        self.map.blocks_per_row * BLOCK_SIZE
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::PAGE_SIZE;

    #[test]
    fn table1_values() {
        let t = Timing::lpddr4();
        assert_eq!(t.t_ras, 51);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_rc, 76);
        assert_eq!(t.t_rfc, 216);
        assert_eq!(t.t_faw, 48);
        assert_eq!(t.burst_length, 16);
        assert_eq!(t.t_burst(), 8);
    }

    #[test]
    fn latency_helpers_are_ordered() {
        let t = Timing::lpddr4();
        assert!(t.row_hit_latency() < t.row_closed_latency());
        assert!(t.row_closed_latency() < t.row_conflict_latency());
    }

    #[test]
    fn same_page_segment_shares_a_row() {
        let map = AddressMap::lpddr4();
        // Blocks 0 and 15 of page 0 are both in channel 0's first segment
        // and must land in the same row.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(15 * BLOCK_SIZE);
        assert_eq!(a.channel(), b.channel());
        assert_eq!(map.locate(a), map.locate(b));
    }

    #[test]
    fn adjacent_pages_share_a_row_then_switch_banks() {
        let map = AddressMap::lpddr4();
        // 32-block rows hold two 16-block segments: pages 0 and 1 share a
        // row; page 2 starts a new row on the next bank.
        let p0 = PhysAddr::new(0);
        let p1 = PhysAddr::new(PAGE_SIZE);
        let p2 = PhysAddr::new(2 * PAGE_SIZE);
        assert_eq!(map.locate(p0), map.locate(p1));
        let (b0, r0) = map.locate(p0);
        let (b2, r2) = map.locate(p2);
        assert_ne!((b0, r0), (b2, r2));
        assert_eq!(b2, (b0 + 1) % map.banks);
    }

    #[test]
    fn rows_cycle_through_banks() {
        let map = AddressMap::lpddr4();
        let mut banks = Vec::new();
        for seg_pair in 0..8u64 {
            let addr = PhysAddr::new(seg_pair * 2 * PAGE_SIZE);
            banks.push(map.locate(addr).0);
        }
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn config_defaults() {
        let c = DramConfig::lpddr4();
        assert_eq!(c.channels, 4);
        assert_eq!(c.queue_depth, 64);
        assert_eq!(c.row_bytes(), 2048);
        assert!(!c.record_log);
        assert!(c.with_log().record_log);
        assert_eq!(c.scheduler, SchedulerKind::FrFcfs);
        assert_eq!(c.with_scheduler(SchedulerKind::Fcfs).scheduler, SchedulerKind::Fcfs);
        assert_eq!(c.page_policy, PagePolicy::Open);
        assert_eq!(c.with_page_policy(PagePolicy::Closed).page_policy, PagePolicy::Closed);
        assert!(!PagePolicy::Closed.to_string().is_empty());
        assert!(c.powerdown);
        assert!(!SchedulerKind::Fcfs.to_string().is_empty());
    }
}
