//! Activity-based DRAM energy model.
//!
//! The paper embeds a manufacturer power model into DRAMSim2; its Figure 10
//! result is driven by *traffic*: BOP's +23.4% memory traffic becomes +13.5%
//! memory-system power. This model reproduces that mechanism with
//! DRAMSim2-style per-command energies plus background power:
//!
//! ```text
//! E = n_act·E_actpre + n_rd·E_rd + n_wr·E_wr + n_ref·E_ref + cycles·P_bg
//! ```
//!
//! Row-buffer locality matters: a request that hits an open row skips the
//! activate/precharge energy, which is how an accurate pattern prefetcher
//! (bursting through one page segment per trigger) can *reduce* energy per
//! useful byte even while adding a little traffic.

use core::fmt;

use planaria_common::Cycle;

/// Per-command energies (pJ) and background power (pJ/cycle/channel).
///
/// Values are representative of an LPDDR4-3200 x16 device (per 64 B burst,
/// IO included); they set the *scale* of Figure 10 while the command mix
/// sets its *shape*.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyParams {
    /// Energy of one activate+precharge pair (charged at ACT).
    pub act_pre_pj: f64,
    /// Energy of one 64 B read burst.
    pub read_pj: f64,
    /// Energy of one 64 B write burst.
    pub write_pj: f64,
    /// Energy of one all-bank refresh.
    pub refresh_pj: f64,
    /// Background (standby + clocking) energy per cycle per channel.
    pub background_pj_per_cycle: f64,
    /// Background multiplier while in CKE power-down (LPDDR parts drop to
    /// a small fraction of active standby).
    pub powerdown_fraction: f64,
}

impl EnergyParams {
    /// Representative LPDDR4 values.
    pub const fn lpddr4() -> Self {
        Self {
            act_pre_pj: 1800.0,
            read_pj: 2000.0,
            write_pj: 2200.0,
            refresh_pj: 28_000.0,
            background_pj_per_cycle: 15.0,
            powerdown_fraction: 0.25,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::lpddr4()
    }
}

/// Command counts accumulated by a channel (or summed over channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramStats {
    /// Row activates issued.
    pub n_act: u64,
    /// Precharges issued (including refresh-forced closes).
    pub n_pre: u64,
    /// Column reads issued.
    pub n_rd: u64,
    /// Column reads that serviced a demand-priority request. Counted at
    /// command execution, so a request enqueued before a stats reset but
    /// read after it lands in the post-reset bucket — exactly matching
    /// what `n_rd` itself does across a reset.
    pub n_rd_demand: u64,
    /// Column reads that serviced a prefetch-priority request.
    pub n_rd_prefetch: u64,
    /// Column writes issued.
    pub n_wr: u64,
    /// All-bank refreshes issued.
    pub n_ref: u64,
    /// Cycles spent in CKE power-down (reduced background power).
    pub powerdown_cycles: u64,
    /// Power-down exits (each pays `t_xp` of wake latency).
    pub n_wakeups: u64,
    /// Finish cycle of the last completed request.
    pub last_finish: Cycle,
}

impl DramStats {
    /// Total data-moving requests serviced.
    pub fn requests(&self) -> u64 {
        self.n_rd + self.n_wr
    }

    /// Row-hit rate of column accesses: reads/writes that did not need a
    /// fresh activate. (Approximate: `1 − n_act / (n_rd + n_wr)`.)
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.requests();
        if cols == 0 {
            0.0
        } else {
            1.0 - (self.n_act.min(cols)) as f64 / cols as f64
        }
    }

    /// Total energy in picojoules over `duration` cycles (per channel, so
    /// the caller multiplies the duration by the channel count when
    /// aggregating, or sums per-channel results).
    pub fn energy_pj(&self, params: &EnergyParams, duration_cycles: u64) -> f64 {
        let pd = self.powerdown_cycles.min(duration_cycles);
        let active = duration_cycles - pd;
        self.n_act as f64 * params.act_pre_pj
            + self.n_rd as f64 * params.read_pj
            + self.n_wr as f64 * params.write_pj
            + self.n_ref as f64 * params.refresh_pj
            + active as f64 * params.background_pj_per_cycle
            + pd as f64 * params.background_pj_per_cycle * params.powerdown_fraction
    }

    /// Merges another channel's counters into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.n_act += other.n_act;
        self.n_pre += other.n_pre;
        self.n_rd += other.n_rd;
        self.n_rd_demand += other.n_rd_demand;
        self.n_rd_prefetch += other.n_rd_prefetch;
        self.n_wr += other.n_wr;
        self.n_ref += other.n_ref;
        self.powerdown_cycles += other.powerdown_cycles;
        self.n_wakeups += other.n_wakeups;
        self.last_finish = self.last_finish.max(other.last_finish);
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACT {} PRE {} RD {} WR {} REF {} (row-hit {:.1}%)",
            self.n_act,
            self.n_pre,
            self.n_rd,
            self.n_wr,
            self.n_ref,
            self.row_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_sums_terms() {
        let p = EnergyParams::lpddr4();
        let s = DramStats { n_act: 2, n_rd: 3, n_wr: 1, n_ref: 1, ..DramStats::default() };
        let e = s.energy_pj(&p, 100);
        let expect = 2.0 * p.act_pre_pj
            + 3.0 * p.read_pj
            + p.write_pj
            + p.refresh_pj
            + 100.0 * p.background_pj_per_cycle;
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn powerdown_cycles_reduce_background_energy() {
        let p = EnergyParams::lpddr4();
        let active = DramStats::default();
        let idle = DramStats { powerdown_cycles: 80, ..DramStats::default() };
        let e_active = active.energy_pj(&p, 100);
        let e_idle = idle.energy_pj(&p, 100);
        assert!(e_idle < e_active, "{e_idle} !< {e_active}");
        let expect = 20.0 * p.background_pj_per_cycle
            + 80.0 * p.background_pj_per_cycle * p.powerdown_fraction;
        assert!((e_idle - expect).abs() < 1e-9);
        // Power-down never exceeds the duration.
        let clamped = DramStats { powerdown_cycles: 500, ..DramStats::default() };
        assert!(clamped.energy_pj(&p, 100) <= e_idle + 1e-9);
    }

    #[test]
    fn row_hit_rate_bounds() {
        let s = DramStats { n_act: 1, n_rd: 4, ..DramStats::default() };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        // More ACTs than columns clamps to zero, not negative.
        let s = DramStats { n_act: 10, n_rd: 4, ..DramStats::default() };
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a =
            DramStats { n_act: 1, n_rd: 2, last_finish: Cycle::new(50), ..DramStats::default() };
        let b =
            DramStats { n_act: 3, n_wr: 4, last_finish: Cycle::new(90), ..DramStats::default() };
        a.merge(&b);
        assert_eq!(a.n_act, 4);
        assert_eq!(a.n_rd, 2);
        assert_eq!(a.n_wr, 4);
        assert_eq!(a.last_finish, Cycle::new(90));
        assert!(!a.to_string().is_empty());
    }
}
