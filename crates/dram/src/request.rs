//! Request and command records.

use core::fmt;

use planaria_common::{Cycle, PhysAddr};

/// Opaque identifier of an enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestId(pub(crate) u64);

impl RequestId {
    /// Raw id value (monotonically increasing per controller).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Scheduling class of a request.
///
/// FR-FCFS breaks ties in favour of earlier classes, so demand misses are
/// never starved by prefetch or writeback traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Priority {
    /// A demand miss fill — someone is stalled on it.
    Demand,
    /// A speculative prefetch fill.
    Prefetch,
    /// A dirty-line writeback.
    Writeback,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Demand => "demand",
            Priority::Prefetch => "prefetch",
            Priority::Writeback => "writeback",
        })
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Completion {
    /// Request identifier returned by `try_enqueue`.
    pub id: RequestId,
    /// Block address of the request.
    pub addr: PhysAddr,
    /// Whether it was a write.
    pub is_write: bool,
    /// Scheduling class.
    pub priority: Priority,
    /// Cycle the request entered the queue.
    pub enqueued: Cycle,
    /// Cycle the data transfer finished.
    pub finish: Cycle,
}

impl Completion {
    /// Queue-to-data latency of the request.
    pub fn latency(&self) -> u64 {
        self.finish.since(self.enqueued)
    }
}

/// DRAM command kinds (recorded in the command log when enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommandKind {
    /// Row activate.
    Activate,
    /// Precharge.
    Precharge,
    /// Column read.
    Read,
    /// Column write.
    Write,
    /// All-bank refresh.
    Refresh,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
        })
    }
}

/// One issued command (log entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Command {
    /// Issue cycle.
    pub cycle: Cycle,
    /// Command kind.
    pub kind: CommandKind,
    /// Target bank (0 for refresh).
    pub bank: usize,
    /// Target row (0 for precharge/refresh).
    pub row: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_for_tie_breaks() {
        assert!(Priority::Demand < Priority::Prefetch);
        assert!(Priority::Prefetch < Priority::Writeback);
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: RequestId(1),
            addr: PhysAddr::new(0x40),
            is_write: false,
            priority: Priority::Demand,
            enqueued: Cycle::new(100),
            finish: Cycle::new(180),
        };
        assert_eq!(c.latency(), 80);
    }

    #[test]
    fn displays() {
        assert_eq!(RequestId(7).to_string(), "req#7");
        assert_eq!(Priority::Demand.to_string(), "demand");
        assert_eq!(CommandKind::Activate.to_string(), "ACT");
    }
}
