//! Per-bank state machine.
//!
//! Each bank tracks its open row and the earliest cycles at which the next
//! activate, precharge and column command may legally issue. The channel
//! controller combines these with rank-level constraints (tRRD, tFAW,
//! shared data bus) when scheduling.

use planaria_common::Cycle;

use crate::config::Timing;

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Bank {
    /// The currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle an ACT may issue (tRC from last ACT, tRP from PRE).
    pub next_act: Cycle,
    /// Earliest cycle a PRE may issue (tRAS from ACT, tRTP/tWR from columns).
    pub next_pre: Cycle,
    /// Earliest cycle a column command may issue (tRCD from ACT).
    pub next_col: Cycle,
}

impl Bank {
    pub(crate) fn new() -> Self {
        Self { open_row: None, next_act: Cycle::ZERO, next_pre: Cycle::ZERO, next_col: Cycle::ZERO }
    }

    /// Applies an ACT issued at `at` opening `row`.
    pub(crate) fn activate(&mut self, at: Cycle, row: u64, t: &Timing) {
        debug_assert!(at >= self.next_act, "ACT violates tRC/tRP");
        debug_assert!(self.open_row.is_none(), "ACT on open bank");
        self.open_row = Some(row);
        self.next_col = at + t.t_rcd;
        self.next_pre = at + t.t_ras;
        self.next_act = at + t.t_rc;
    }

    /// Applies a PRE issued at `at`.
    pub(crate) fn precharge(&mut self, at: Cycle, t: &Timing) {
        debug_assert!(at >= self.next_pre, "PRE violates tRAS/tRTP/tWR");
        debug_assert!(self.open_row.is_some(), "PRE on closed bank");
        self.open_row = None;
        self.next_act = self.next_act.max(at + t.t_rp);
    }

    /// Applies a column read issued at `at`.
    pub(crate) fn read(&mut self, at: Cycle, t: &Timing) {
        debug_assert!(at >= self.next_col, "RD violates tRCD");
        debug_assert!(self.open_row.is_some(), "RD on closed bank");
        self.next_pre = self.next_pre.max(at + t.t_rtp);
    }

    /// Applies a column write issued at `at`.
    pub(crate) fn write(&mut self, at: Cycle, t: &Timing) {
        debug_assert!(at >= self.next_col, "WR violates tRCD");
        debug_assert!(self.open_row.is_some(), "WR on closed bank");
        // Write recovery: the row must stay open until tCWL + tBURST + tWR.
        self.next_pre = self.next_pre.max(at + t.t_cwl + t.t_burst() + t.t_wr);
    }

    /// Forces the bank closed by a refresh finishing at `ready`.
    pub(crate) fn refresh_reset(&mut self, ready: Cycle) {
        self.open_row = None;
        self.next_act = self.next_act.max(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timing {
        Timing::lpddr4()
    }

    #[test]
    fn activate_sets_windows() {
        let t = t();
        let mut b = Bank::new();
        b.activate(Cycle::new(100), 7, &t);
        assert_eq!(b.open_row, Some(7));
        assert_eq!(b.next_col, Cycle::new(100 + t.t_rcd));
        assert_eq!(b.next_pre, Cycle::new(100 + t.t_ras));
        assert_eq!(b.next_act, Cycle::new(100 + t.t_rc));
    }

    #[test]
    fn precharge_closes_and_gates_act() {
        let t = t();
        let mut b = Bank::new();
        b.activate(Cycle::new(0), 1, &t);
        b.precharge(Cycle::new(t.t_ras), &t);
        assert_eq!(b.open_row, None);
        // next_act is the later of tRC-from-ACT and tRP-from-PRE.
        assert_eq!(b.next_act, Cycle::new(t.t_rc.max(t.t_ras + t.t_rp)));
    }

    #[test]
    fn read_extends_pre_window() {
        let t = t();
        let mut b = Bank::new();
        b.activate(Cycle::new(0), 1, &t);
        let rd_at = Cycle::new(t.t_ras - 2); // late read
        b.read(rd_at, &t);
        assert!(b.next_pre >= rd_at + t.t_rtp);
    }

    #[test]
    fn write_recovery_is_longer_than_read() {
        let t = t();
        let mut rb = Bank::new();
        rb.activate(Cycle::new(0), 1, &t);
        rb.read(Cycle::new(16), &t);
        let mut wb = Bank::new();
        wb.activate(Cycle::new(0), 1, &t);
        wb.write(Cycle::new(16), &t);
        assert!(wb.next_pre > rb.next_pre);
    }

    #[test]
    fn refresh_reset_closes_bank() {
        let t = t();
        let mut b = Bank::new();
        b.activate(Cycle::new(0), 1, &t);
        b.refresh_reset(Cycle::new(1000));
        assert_eq!(b.open_row, None);
        assert!(b.next_act >= Cycle::new(1000));
    }
}
