//! One channel's controller: queue, scheduler, banks, refresh.

use std::collections::VecDeque;

use planaria_common::{Cycle, PhysAddr};

use crate::bank::Bank;
use crate::config::{DramConfig, PagePolicy, SchedulerKind};
use crate::power::DramStats;
use crate::request::{Command, CommandKind, Completion, Priority, RequestId};

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: RequestId,
    addr: PhysAddr,
    bank: usize,
    row: u64,
    is_write: bool,
    priority: Priority,
    enqueued: Cycle,
    seq: u64,
}

/// Command-kind index used by the scheduler scan (also indexes its gate
/// table): 0 = Read, 1 = Write, 2 = Precharge, 3 = Activate.
const SCAN_KINDS: [CommandKind; 4] =
    [CommandKind::Read, CommandKind::Write, CommandKind::Precharge, CommandKind::Activate];

/// Hot scheduler-scan state for one queue entry, kept in a dense array
/// parallel to the request queue (24 bytes vs the 64-byte [`Pending`], so
/// the per-issue rescan streams 2-3 entries per host cache line).
///
/// `local` and `kind` memoise the bank-local half of the FR-FCFS decision
/// — `bank_ready.max(enqueued)` and the command the request needs next —
/// valid while `version` matches the bank's mutation counter. `static_lo`
/// packs the kind-dependent column preference with the request's static
/// tie-breaks, so the scan's whole ordering key is one `u128` compare.
#[derive(Debug, Clone, Copy)]
struct ScanEntry {
    /// Bank-local ready cycle, already `max`ed with the enqueue cycle.
    local: Cycle,
    /// `col_rank << 62 | priority << 60 | seq` (bit 63 clear, seq < 2^60).
    static_lo: u64,
    /// Bank version this entry's memo was computed against.
    version: u32,
    /// Bank index (banks per channel always fit in a byte).
    bank: u8,
    /// Index into [`SCAN_KINDS`] / the scan's gate table.
    kind: u8,
}

impl ScanEntry {
    /// Derives the memoised half of the scheduling decision from current
    /// bank state — exactly the bank-dependent part of
    /// [`Channel::next_command`].
    fn compute(p: &Pending, bank: &Bank, version: u32) -> Self {
        let (kind, local) = match bank.open_row {
            Some(r) if r == p.row => (p.is_write as u8, bank.next_col),
            Some(_) => (2, bank.next_pre),
            None => (3, bank.next_act),
        };
        debug_assert!(p.seq < 1 << 60, "seq outgrew its 60-bit key field");
        let col_rank = (kind >= 2) as u64;
        Self {
            local: local.max(p.enqueued),
            static_lo: col_rank << 62 | (p.priority as u64) << 60 | p.seq,
            version,
            bank: p.bank as u8,
            kind,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    queue_idx: usize,
    issue: Cycle,
    kind: CommandKind,
}

/// Per-channel memory controller with FR-FCFS scheduling.
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Per-bank mutation counters backing the [`ScanEntry`] memo: bumped
    /// whenever a bank's timing state changes (command issue,
    /// auto-precharge, refresh), so queue entries recompute their
    /// bank-local readiness only when *their* bank actually moved. `u32`
    /// wrap-around is harmless: an entry is re-observed on every scan and
    /// every bump forces a scan before the next command, so the delta
    /// between observations is always a handful, never 2^32.
    bank_versions: Vec<u32>,
    queue: Vec<Pending>,
    /// Hot scan state, index-parallel to `queue` (same push/swap-remove).
    scan: Vec<ScanEntry>,
    /// Command-bus gate: one command per `t_cmd`.
    next_cmd: Cycle,
    /// Earliest next column read (bus occupancy + write-to-read turnaround).
    next_rd: Cycle,
    /// Earliest next column write.
    next_wr: Cycle,
    /// Issue cycles of recent ACTs (bounded by 4 for the tFAW window).
    act_history: VecDeque<Cycle>,
    next_ref: Cycle,
    /// Issue time of the most recent command (power-down bookkeeping).
    last_activity: Cycle,
    seq: u64,
    /// Memoised scheduler decision. The queue and the timing state it
    /// depends on change only in `enqueue`, `issue` and `do_refresh`, each
    /// of which resets this to `None` (stale); `Some(best)` is served
    /// without rescanning the queue — the common case, since `advance_to`
    /// re-asks on every simulated demand access. `Some(None)` memoises an
    /// empty queue.
    cached_candidate: Option<Option<Candidate>>,
    pub(crate) stats: DramStats,
    pub(crate) log: Vec<Command>,
}

impl Channel {
    pub(crate) fn new(cfg: DramConfig) -> Self {
        Self {
            banks: (0..cfg.map.banks).map(|_| Bank::new()).collect(),
            bank_versions: vec![0; cfg.map.banks],
            queue: Vec::with_capacity(cfg.queue_depth),
            scan: Vec::with_capacity(cfg.queue_depth),
            next_cmd: Cycle::ZERO,
            next_rd: Cycle::ZERO,
            next_wr: Cycle::ZERO,
            act_history: VecDeque::with_capacity(4),
            next_ref: Cycle::new(cfg.timing.t_refi),
            last_activity: Cycle::ZERO,
            seq: 0,
            cached_candidate: Some(None),
            stats: DramStats::default(),
            log: Vec::new(),
            cfg,
        }
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn has_room(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth
    }

    pub(crate) fn enqueue(
        &mut self,
        id: RequestId,
        addr: PhysAddr,
        is_write: bool,
        priority: Priority,
        now: Cycle,
    ) {
        debug_assert!(self.has_room(), "enqueue on full channel queue");
        // CKE power-down: a rank idle past t_cke dropped its clock enable;
        // this arrival wakes it, paying t_xp before the next command.
        if self.cfg.powerdown && self.queue.is_empty() {
            let idle = now.since(self.last_activity);
            if idle > self.cfg.timing.t_cke {
                self.stats.powerdown_cycles += idle - self.cfg.timing.t_cke;
                self.stats.n_wakeups += 1;
                self.next_cmd = self.next_cmd.max(now + self.cfg.timing.t_xp);
            }
        }
        let (bank, row) = self.cfg.map.locate(addr);
        self.cached_candidate = None;
        let p = Pending { id, addr, bank, row, is_write, priority, enqueued: now, seq: self.seq };
        self.scan.push(ScanEntry::compute(&p, &self.banks[bank], self.bank_versions[bank]));
        self.queue.push(p);
        self.seq += 1;
    }

    /// Earliest cycle the next command of `p` could issue, and its kind.
    fn next_command(&self, p: &Pending) -> (CommandKind, Cycle) {
        let t = &self.cfg.timing;
        let b = &self.banks[p.bank];
        let (kind, ready) = match b.open_row {
            Some(r) if r == p.row => {
                let bus = if p.is_write { self.next_wr } else { self.next_rd };
                let kind = if p.is_write { CommandKind::Write } else { CommandKind::Read };
                (kind, b.next_col.max(bus))
            }
            Some(_) => (CommandKind::Precharge, b.next_pre),
            None => {
                let mut ready = b.next_act;
                if let Some(&last) = self.act_history.back() {
                    ready = ready.max(last + t.t_rrd);
                }
                if self.act_history.len() >= 4 {
                    ready = ready.max(self.act_history[self.act_history.len() - 4] + t.t_faw);
                }
                (CommandKind::Activate, ready)
            }
        };
        (kind, ready.max(p.enqueued).max(self.next_cmd))
    }

    /// Scheduler front-end with incremental rescanning: the full queue
    /// scan of [`Channel::compute_best_candidate`] runs only when the
    /// decision inputs changed since the last call (enqueue, issue or
    /// refresh); otherwise the memoised winner is returned directly.
    fn best_candidate(&mut self) -> Option<Candidate> {
        if let Some(cached) = self.cached_candidate {
            debug_assert_eq!(
                cached.map(|c| (c.queue_idx, c.issue, c.kind)),
                self.compute_best_candidate_uncached().map(|c| (c.queue_idx, c.issue, c.kind)),
                "stale scheduler cache: a mutation path forgot to invalidate"
            );
            return cached;
        }
        let best = self.compute_best_candidate();
        debug_assert_eq!(
            best.map(|c| (c.queue_idx, c.issue, c.kind)),
            self.compute_best_candidate_uncached().map(|c| (c.queue_idx, c.issue, c.kind)),
            "entry-level memo diverged: a bank mutation missed its version bump"
        );
        self.cached_candidate = Some(best);
        best
    }

    /// FCFS considers only the oldest request; FR-FCFS (default):
    /// earliest-issuable command wins; ties prefer column commands (row
    /// hits), then demand over prefetch over writeback, then age.
    ///
    /// The FR-FCFS scan is incremental at the entry level: each entry's
    /// command kind and bank-local ready time (`bank_ready.max(enqueued)`)
    /// are memoised against its bank's version counter, and the global
    /// gates (command bus, data-bus turnaround, tRRD/tFAW) — identical for
    /// every entry wanting the same command kind — are hoisted out of the
    /// loop. `max` is associative and commutative, so the issue cycle is
    /// bit-identical to the direct [`Channel::next_command`] form (a debug
    /// assertion in [`Channel::best_candidate`] re-derives it that way).
    fn compute_best_candidate(&mut self) -> Option<Candidate> {
        if self.cfg.scheduler == SchedulerKind::Fcfs {
            let (i, p) = self.queue.iter().enumerate().min_by_key(|(_, p)| p.seq)?;
            let (kind, issue) = self.next_command(p);
            return Some(Candidate { queue_idx: i, issue, kind });
        }
        let t = &self.cfg.timing;
        let mut act_gate = self.next_cmd;
        if let Some(&last) = self.act_history.back() {
            act_gate = act_gate.max(last + t.t_rrd);
        }
        if self.act_history.len() >= 4 {
            act_gate = act_gate.max(self.act_history[self.act_history.len() - 4] + t.t_faw);
        }
        let gates = [
            self.next_rd.max(self.next_cmd).as_u64(),
            self.next_wr.max(self.next_cmd).as_u64(),
            self.next_cmd.as_u64(),
            act_gate.as_u64(),
        ];
        let banks = &self.banks;
        let versions = &self.bank_versions;
        let queue = &self.queue;
        // `(issue, col_rank, priority, seq)` in one u128: the fields sit
        // in disjoint bit ranges in significance order, so the integer
        // compare IS the lexicographic tuple compare (ties are impossible
        // — `seq` is unique). The original tuple form replaced the running
        // best only on strict improvement; `<` preserves that.
        let mut best_key = u128::MAX;
        let mut best_idx = usize::MAX;
        for (i, e) in self.scan.iter_mut().enumerate() {
            let v = versions[e.bank as usize];
            if e.version != v {
                *e = ScanEntry::compute(&queue[i], &banks[e.bank as usize], v);
            }
            let issue = e.local.as_u64().max(gates[e.kind as usize]);
            let key = (issue as u128) << 64 | e.static_lo as u128;
            if key < best_key {
                best_key = key;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            return None;
        }
        Some(Candidate {
            queue_idx: best_idx,
            issue: Cycle::new((best_key >> 64) as u64),
            kind: SCAN_KINDS[self.scan[best_idx].kind as usize],
        })
    }

    /// The pre-memoisation scheduler scan, kept as the debug-build oracle
    /// for [`Channel::best_candidate`]'s assertions: every entry re-derives
    /// its command directly from bank state via [`Channel::next_command`],
    /// so a missing bank-version bump in a mutation path shows up as a
    /// divergence instead of a silent wrong schedule.
    fn compute_best_candidate_uncached(&self) -> Option<Candidate> {
        if self.cfg.scheduler == SchedulerKind::Fcfs {
            let (i, p) = self.queue.iter().enumerate().min_by_key(|(_, p)| p.seq)?;
            let (kind, issue) = self.next_command(p);
            return Some(Candidate { queue_idx: i, issue, kind });
        }
        let mut best: Option<(Candidate, (u64, u8, Priority, u64))> = None;
        for (i, p) in self.queue.iter().enumerate() {
            let (kind, issue) = self.next_command(p);
            let col_rank = match kind {
                CommandKind::Read | CommandKind::Write => 0u8,
                _ => 1,
            };
            let key = (issue.as_u64(), col_rank, p.priority, p.seq);
            match &best {
                Some((_, k)) if *k <= key => {}
                _ => best = Some((Candidate { queue_idx: i, issue, kind }, key)),
            }
        }
        best.map(|(c, _)| c)
    }

    fn record(&mut self, cycle: Cycle, kind: CommandKind, bank: usize, row: u64) {
        if self.cfg.record_log {
            self.log.push(Command { cycle, kind, bank, row });
        }
    }

    fn do_refresh(&mut self) {
        // Bank timing state and `next_cmd` change: the memo is stale.
        self.cached_candidate = None;
        let t = self.cfg.timing;
        // All banks must be precharged before REF; take the latest legal
        // moment across open banks (implicit precharges).
        let mut start = self.next_ref.max(self.next_cmd);
        for b in &self.banks {
            if b.open_row.is_some() {
                start = start.max(b.next_pre);
            }
        }
        let open_banks = self.banks.iter().filter(|b| b.open_row.is_some()).count() as u64;
        self.stats.n_pre += open_banks;
        let ready = start + t.t_rfc;
        for b in &mut self.banks {
            b.refresh_reset(ready);
        }
        for v in &mut self.bank_versions {
            *v += 1;
        }
        self.stats.n_ref += 1;
        self.record(start, CommandKind::Refresh, 0, 0);
        self.next_cmd = self.next_cmd.max(start + t.t_cmd);
        self.last_activity = self.last_activity.max(ready);
        self.next_ref += t.t_refi;
    }

    fn issue(&mut self, cand: Candidate, out: &mut Vec<Completion>) {
        // Every arm mutates bank/bus timing (and column commands retire
        // their request): the memoised scheduler decision is stale.
        self.cached_candidate = None;
        let t = self.cfg.timing;
        let p = self.queue[cand.queue_idx];
        // Every arm below mutates `p.bank`'s timing state.
        self.bank_versions[p.bank] += 1;
        let at = cand.issue;
        self.next_cmd = at + t.t_cmd;
        self.last_activity = self.last_activity.max(at);
        match cand.kind {
            CommandKind::Activate => {
                self.banks[p.bank].activate(at, p.row, &t);
                if self.act_history.len() == 4 {
                    self.act_history.pop_front();
                }
                self.act_history.push_back(at);
                self.stats.n_act += 1;
                self.record(at, CommandKind::Activate, p.bank, p.row);
            }
            CommandKind::Precharge => {
                self.banks[p.bank].precharge(at, &t);
                self.stats.n_pre += 1;
                self.record(at, CommandKind::Precharge, p.bank, 0);
            }
            CommandKind::Read => {
                self.banks[p.bank].read(at, &t);
                self.maybe_auto_precharge(p.bank, p.row, cand.queue_idx);
                self.next_rd = at + t.t_ccd;
                // Read-to-write turnaround on the shared data bus.
                let rd_data_end = at + t.t_cl + t.t_burst();
                self.next_wr = self
                    .next_wr
                    .max(Cycle::new((rd_data_end + t.t_rtrs).as_u64().saturating_sub(t.t_cwl)));
                self.stats.n_rd += 1;
                match p.priority {
                    Priority::Demand => self.stats.n_rd_demand += 1,
                    Priority::Prefetch => self.stats.n_rd_prefetch += 1,
                    Priority::Writeback => {}
                }
                self.record(at, CommandKind::Read, p.bank, p.row);
                let finish = at + t.t_cl + t.t_burst();
                self.finish_request(cand.queue_idx, finish, out);
            }
            CommandKind::Write => {
                self.banks[p.bank].write(at, &t);
                self.maybe_auto_precharge(p.bank, p.row, cand.queue_idx);
                self.next_wr = at + t.t_ccd;
                // Write-to-read turnaround.
                self.next_rd = self.next_rd.max(at + t.t_cwl + t.t_burst() + t.t_wtr);
                self.stats.n_wr += 1;
                self.record(at, CommandKind::Write, p.bank, p.row);
                let finish = at + t.t_cwl + t.t_burst();
                self.finish_request(cand.queue_idx, finish, out);
            }
            CommandKind::Refresh => unreachable!("refresh is not a per-request command"),
        }
    }

    /// Closed-page policy: auto-precharge after a column command unless
    /// another queued request (other than the one being retired at
    /// `retiring_idx`) still wants this row.
    fn maybe_auto_precharge(&mut self, bank: usize, row: u64, retiring_idx: usize) {
        if self.cfg.page_policy != PagePolicy::Closed {
            return;
        }
        let another_hit = self
            .queue
            .iter()
            .enumerate()
            .any(|(i, q)| i != retiring_idx && q.bank == bank && q.row == row);
        if another_hit {
            return;
        }
        // The earliest legal precharge moment (tRAS from ACT, tRTP/tWR from
        // the column command just issued).
        self.bank_versions[bank] += 1;
        let b = &mut self.banks[bank];
        let pre_at = b.next_pre;
        b.precharge(pre_at, &self.cfg.timing);
        self.stats.n_pre += 1;
        if self.cfg.record_log {
            self.log.push(Command { cycle: pre_at, kind: CommandKind::Precharge, bank, row: 0 });
        }
    }

    fn finish_request(&mut self, idx: usize, finish: Cycle, out: &mut Vec<Completion>) {
        let p = self.queue.swap_remove(idx);
        self.scan.swap_remove(idx);
        self.stats.last_finish = self.stats.last_finish.max(finish);
        out.push(Completion {
            id: p.id,
            addr: p.addr,
            is_write: p.is_write,
            priority: p.priority,
            enqueued: p.enqueued,
            finish,
        });
    }

    /// Lower bound on the next cycle at which this channel can legally do
    /// anything (issue a command or refresh). `Cycle::ZERO` when the memo
    /// is stale, forcing the next [`Channel::advance_to`] to rescan.
    pub(crate) fn next_event(&self) -> Cycle {
        match self.cached_candidate {
            None => Cycle::ZERO,
            Some(None) => self.next_ref,
            Some(Some(c)) => c.issue.min(self.next_ref),
        }
    }

    /// Issues every command that can legally issue at or before `t`.
    pub(crate) fn advance_to(&mut self, t: Cycle, out: &mut Vec<Completion>) {
        loop {
            let cand = self.best_candidate();
            let next_issue = cand.map(|c| c.issue);
            let ref_due = self.next_ref <= t && next_issue.is_none_or(|i| self.next_ref <= i);
            if ref_due {
                self.do_refresh();
                continue;
            }
            match cand {
                Some(c) if c.issue <= t => self.issue(c, out),
                _ => break,
            }
        }
    }

    /// Issues until the queue is empty, servicing refreshes as they come due.
    pub(crate) fn drain(&mut self, out: &mut Vec<Completion>) {
        while let Some(cand) = self.best_candidate() {
            if self.next_ref <= cand.issue {
                self.do_refresh();
                continue;
            }
            self.issue(cand, out);
        }
    }
}
