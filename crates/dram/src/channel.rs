//! One channel's controller: queue, scheduler, banks, refresh.

use std::collections::VecDeque;

use planaria_common::{Cycle, PhysAddr};

use crate::bank::Bank;
use crate::config::{DramConfig, PagePolicy, SchedulerKind};
use crate::power::DramStats;
use crate::request::{Command, CommandKind, Completion, Priority, RequestId};

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: RequestId,
    addr: PhysAddr,
    bank: usize,
    row: u64,
    is_write: bool,
    priority: Priority,
    enqueued: Cycle,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    queue_idx: usize,
    issue: Cycle,
    kind: CommandKind,
}

/// Per-channel memory controller with FR-FCFS scheduling.
#[derive(Debug, Clone)]
pub(crate) struct Channel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: Vec<Pending>,
    /// Command-bus gate: one command per `t_cmd`.
    next_cmd: Cycle,
    /// Earliest next column read (bus occupancy + write-to-read turnaround).
    next_rd: Cycle,
    /// Earliest next column write.
    next_wr: Cycle,
    /// Issue cycles of recent ACTs (bounded by 4 for the tFAW window).
    act_history: VecDeque<Cycle>,
    next_ref: Cycle,
    /// Issue time of the most recent command (power-down bookkeeping).
    last_activity: Cycle,
    seq: u64,
    pub(crate) stats: DramStats,
    pub(crate) log: Vec<Command>,
}

impl Channel {
    pub(crate) fn new(cfg: DramConfig) -> Self {
        Self {
            banks: (0..cfg.map.banks).map(|_| Bank::new()).collect(),
            queue: Vec::with_capacity(cfg.queue_depth),
            next_cmd: Cycle::ZERO,
            next_rd: Cycle::ZERO,
            next_wr: Cycle::ZERO,
            act_history: VecDeque::with_capacity(4),
            next_ref: Cycle::new(cfg.timing.t_refi),
            last_activity: Cycle::ZERO,
            seq: 0,
            stats: DramStats::default(),
            log: Vec::new(),
            cfg,
        }
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn has_room(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth
    }

    pub(crate) fn enqueue(
        &mut self,
        id: RequestId,
        addr: PhysAddr,
        is_write: bool,
        priority: Priority,
        now: Cycle,
    ) {
        debug_assert!(self.has_room(), "enqueue on full channel queue");
        // CKE power-down: a rank idle past t_cke dropped its clock enable;
        // this arrival wakes it, paying t_xp before the next command.
        if self.cfg.powerdown && self.queue.is_empty() {
            let idle = now.since(self.last_activity);
            if idle > self.cfg.timing.t_cke {
                self.stats.powerdown_cycles += idle - self.cfg.timing.t_cke;
                self.stats.n_wakeups += 1;
                self.next_cmd = self.next_cmd.max(now + self.cfg.timing.t_xp);
            }
        }
        let (bank, row) = self.cfg.map.locate(addr);
        self.queue.push(Pending {
            id,
            addr,
            bank,
            row,
            is_write,
            priority,
            enqueued: now,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Earliest cycle the next command of `p` could issue, and its kind.
    fn next_command(&self, p: &Pending) -> (CommandKind, Cycle) {
        let t = &self.cfg.timing;
        let b = &self.banks[p.bank];
        let (kind, ready) = match b.open_row {
            Some(r) if r == p.row => {
                let bus = if p.is_write { self.next_wr } else { self.next_rd };
                let kind = if p.is_write { CommandKind::Write } else { CommandKind::Read };
                (kind, b.next_col.max(bus))
            }
            Some(_) => (CommandKind::Precharge, b.next_pre),
            None => {
                let mut ready = b.next_act;
                if let Some(&last) = self.act_history.back() {
                    ready = ready.max(last + t.t_rrd);
                }
                if self.act_history.len() >= 4 {
                    ready = ready.max(self.act_history[self.act_history.len() - 4] + t.t_faw);
                }
                (CommandKind::Activate, ready)
            }
        };
        (kind, ready.max(p.enqueued).max(self.next_cmd))
    }

    /// Scheduler front-end. FCFS considers only the oldest request;
    /// FR-FCFS (default): earliest-issuable command wins; ties prefer
    /// column commands (row hits), then demand over prefetch over
    /// writeback, then age.
    fn best_candidate(&self) -> Option<Candidate> {
        if self.cfg.scheduler == SchedulerKind::Fcfs {
            let (i, p) = self.queue.iter().enumerate().min_by_key(|(_, p)| p.seq)?;
            let (kind, issue) = self.next_command(p);
            return Some(Candidate { queue_idx: i, issue, kind });
        }
        let mut best: Option<(Candidate, (u64, u8, Priority, u64))> = None;
        for (i, p) in self.queue.iter().enumerate() {
            let (kind, issue) = self.next_command(p);
            let col_rank = match kind {
                CommandKind::Read | CommandKind::Write => 0u8,
                _ => 1,
            };
            let key = (issue.as_u64(), col_rank, p.priority, p.seq);
            match &best {
                Some((_, k)) if *k <= key => {}
                _ => best = Some((Candidate { queue_idx: i, issue, kind }, key)),
            }
        }
        best.map(|(c, _)| c)
    }

    fn record(&mut self, cycle: Cycle, kind: CommandKind, bank: usize, row: u64) {
        if self.cfg.record_log {
            self.log.push(Command { cycle, kind, bank, row });
        }
    }

    fn do_refresh(&mut self) {
        let t = self.cfg.timing;
        // All banks must be precharged before REF; take the latest legal
        // moment across open banks (implicit precharges).
        let mut start = self.next_ref.max(self.next_cmd);
        for b in &self.banks {
            if b.open_row.is_some() {
                start = start.max(b.next_pre);
            }
        }
        let open_banks = self.banks.iter().filter(|b| b.open_row.is_some()).count() as u64;
        self.stats.n_pre += open_banks;
        let ready = start + t.t_rfc;
        for b in &mut self.banks {
            b.refresh_reset(ready);
        }
        self.stats.n_ref += 1;
        self.record(start, CommandKind::Refresh, 0, 0);
        self.next_cmd = self.next_cmd.max(start + t.t_cmd);
        self.last_activity = self.last_activity.max(ready);
        self.next_ref += t.t_refi;
    }

    fn issue(&mut self, cand: Candidate, out: &mut Vec<Completion>) {
        let t = self.cfg.timing;
        let p = self.queue[cand.queue_idx];
        let at = cand.issue;
        self.next_cmd = at + t.t_cmd;
        self.last_activity = self.last_activity.max(at);
        match cand.kind {
            CommandKind::Activate => {
                self.banks[p.bank].activate(at, p.row, &t);
                if self.act_history.len() == 4 {
                    self.act_history.pop_front();
                }
                self.act_history.push_back(at);
                self.stats.n_act += 1;
                self.record(at, CommandKind::Activate, p.bank, p.row);
            }
            CommandKind::Precharge => {
                self.banks[p.bank].precharge(at, &t);
                self.stats.n_pre += 1;
                self.record(at, CommandKind::Precharge, p.bank, 0);
            }
            CommandKind::Read => {
                self.banks[p.bank].read(at, &t);
                self.maybe_auto_precharge(p.bank, p.row, cand.queue_idx);
                self.next_rd = at + t.t_ccd;
                // Read-to-write turnaround on the shared data bus.
                let rd_data_end = at + t.t_cl + t.t_burst();
                self.next_wr = self
                    .next_wr
                    .max(Cycle::new((rd_data_end + t.t_rtrs).as_u64().saturating_sub(t.t_cwl)));
                self.stats.n_rd += 1;
                match p.priority {
                    Priority::Demand => self.stats.n_rd_demand += 1,
                    Priority::Prefetch => self.stats.n_rd_prefetch += 1,
                    Priority::Writeback => {}
                }
                self.record(at, CommandKind::Read, p.bank, p.row);
                let finish = at + t.t_cl + t.t_burst();
                self.finish_request(cand.queue_idx, finish, out);
            }
            CommandKind::Write => {
                self.banks[p.bank].write(at, &t);
                self.maybe_auto_precharge(p.bank, p.row, cand.queue_idx);
                self.next_wr = at + t.t_ccd;
                // Write-to-read turnaround.
                self.next_rd = self.next_rd.max(at + t.t_cwl + t.t_burst() + t.t_wtr);
                self.stats.n_wr += 1;
                self.record(at, CommandKind::Write, p.bank, p.row);
                let finish = at + t.t_cwl + t.t_burst();
                self.finish_request(cand.queue_idx, finish, out);
            }
            CommandKind::Refresh => unreachable!("refresh is not a per-request command"),
        }
    }

    /// Closed-page policy: auto-precharge after a column command unless
    /// another queued request (other than the one being retired at
    /// `retiring_idx`) still wants this row.
    fn maybe_auto_precharge(&mut self, bank: usize, row: u64, retiring_idx: usize) {
        if self.cfg.page_policy != PagePolicy::Closed {
            return;
        }
        let another_hit = self
            .queue
            .iter()
            .enumerate()
            .any(|(i, q)| i != retiring_idx && q.bank == bank && q.row == row);
        if another_hit {
            return;
        }
        // The earliest legal precharge moment (tRAS from ACT, tRTP/tWR from
        // the column command just issued).
        let b = &mut self.banks[bank];
        let pre_at = b.next_pre;
        b.precharge(pre_at, &self.cfg.timing);
        self.stats.n_pre += 1;
        if self.cfg.record_log {
            self.log.push(Command { cycle: pre_at, kind: CommandKind::Precharge, bank, row: 0 });
        }
    }

    fn finish_request(&mut self, idx: usize, finish: Cycle, out: &mut Vec<Completion>) {
        let p = self.queue.swap_remove(idx);
        self.stats.last_finish = self.stats.last_finish.max(finish);
        out.push(Completion {
            id: p.id,
            addr: p.addr,
            is_write: p.is_write,
            priority: p.priority,
            enqueued: p.enqueued,
            finish,
        });
    }

    /// Issues every command that can legally issue at or before `t`.
    pub(crate) fn advance_to(&mut self, t: Cycle, out: &mut Vec<Completion>) {
        loop {
            let cand = self.best_candidate();
            let next_issue = cand.map(|c| c.issue);
            let ref_due = self.next_ref <= t && next_issue.is_none_or(|i| self.next_ref <= i);
            if ref_due {
                self.do_refresh();
                continue;
            }
            match cand {
                Some(c) if c.issue <= t => self.issue(c, out),
                _ => break,
            }
        }
    }

    /// Issues until the queue is empty, servicing refreshes as they come due.
    pub(crate) fn drain(&mut self, out: &mut Vec<Completion>) {
        while let Some(cand) = self.best_candidate() {
            if self.next_ref <= cand.issue {
                self.do_refresh();
                continue;
            }
            self.issue(cand, out);
        }
    }
}
