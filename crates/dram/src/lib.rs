//! Cycle-level LPDDR4 memory-controller model.
//!
//! The paper evaluates Planaria with a modified **DRAMSim2** configured as a
//! 4-channel LPDDR4 part (Table 1). This crate re-implements that substrate:
//!
//! * per-bank state machines with the full Table 1 timing set
//!   (`tRAS`/`tRCD`/`tRRD`/`tRC`/`tRP`/`tCCD`/`tRTP`/`tWTR`/`tWR`/`tRTRS`/
//!   `tRFC`/`tFAW`/`tCKE`/`tXP`/`tCMD`, burst length 16);
//! * one controller per channel with a bounded request queue (depth 64) and
//!   **FR-FCFS** scheduling (row hits first, then oldest; demand traffic
//!   ahead of prefetch traffic on ties);
//! * periodic all-bank refresh;
//! * a DRAMSim2-style activity-based energy model ([`power`]), which is what
//!   turns prefetch *traffic* into the paper's Figure 10 *power* numbers.
//!
//! The controller is event-jumping rather than tick-stepped: between
//! commands it advances directly to the next cycle at which any command can
//! legally issue, so simulating tens of millions of requests stays cheap
//! while every inter-command constraint is still enforced (and checked by
//! property tests over the recorded command log).
//!
//! # Examples
//!
//! ```
//! use planaria_dram::{DramConfig, MemoryController, Priority};
//! use planaria_common::{Cycle, PhysAddr};
//!
//! let mut mc = MemoryController::new(DramConfig::lpddr4());
//! let id = mc
//!     .try_enqueue(PhysAddr::new(0x4000), false, Priority::Demand, Cycle::new(0))
//!     .expect("queue has room");
//! // Hot-path callers reuse one completion buffer across calls; the
//! // `_collect` variants allocate a fresh one for convenience.
//! let done = mc.drain_collect();
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].id, id);
//! assert!(done[0].finish.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod config;
mod controller;
pub mod power;
mod request;

pub use config::{AddressMap, DramConfig, PagePolicy, SchedulerKind, Timing};
pub use controller::{MemoryController, QueueFull};
pub use power::{DramStats, EnergyParams};
pub use request::{Command, CommandKind, Completion, Priority, RequestId};
