//! Property tests over the Planaria prefetcher family: whatever the access
//! sequence, structural invariants of the generated requests hold.

use planaria_common::{
    BlockIndex, Cycle, MemAccess, PageNum, PhysAddr, PrefetchOrigin, PrefetchRequest,
};
use planaria_core::{Planaria, PlanariaConfig, Prefetcher, Slp, SlpConfig, Tlp, TlpConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Step {
    page: u64,
    block: usize,
    gap: u64,
    hit: bool,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u64..64, 0usize..64, 1u64..800, any::<bool>()).prop_map(|(page, block, gap, hit)| Step {
        page,
        block,
        gap,
        hit,
    })
}

fn drive(pf: &mut dyn Prefetcher, steps: &[Step]) -> Vec<(Step, Vec<PrefetchRequest>)> {
    let mut t = 0u64;
    let mut out = Vec::new();
    let mut log = Vec::new();
    for &s in steps {
        t += s.gap;
        out.clear();
        let access = MemAccess::read(
            PhysAddr::from_parts(PageNum::new(s.page), BlockIndex::new(s.block)),
            Cycle::new(t),
        );
        pf.on_access(&access, s.hit, &mut out);
        log.push((s, out.clone()));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slp_requests_stay_in_page_and_channel(steps in proptest::collection::vec(arb_step(), 1..300)) {
        let mut slp = Slp::default();
        for (s, reqs) in drive(&mut slp, &steps) {
            let trigger = PhysAddr::from_parts(PageNum::new(s.page), BlockIndex::new(s.block));
            for r in reqs {
                prop_assert_eq!(r.origin, PrefetchOrigin::Slp);
                prop_assert_eq!(r.addr.page().as_u64(), s.page, "SLP is intra-page");
                prop_assert_eq!(r.addr.channel(), trigger.channel(), "channel-sliced");
                prop_assert_ne!(r.addr.block_base(), trigger.block_base(), "no self-prefetch");
                prop_assert!(!s.hit, "requests only on miss triggers");
            }
        }
    }

    #[test]
    fn tlp_requests_stay_in_page_and_channel(steps in proptest::collection::vec(arb_step(), 1..300)) {
        let mut tlp = Tlp::default();
        for (s, reqs) in drive(&mut tlp, &steps) {
            let trigger = PhysAddr::from_parts(PageNum::new(s.page), BlockIndex::new(s.block));
            for r in reqs {
                prop_assert_eq!(r.origin, PrefetchOrigin::Tlp);
                prop_assert_eq!(r.addr.page().as_u64(), s.page, "the transfer targets the trigger page");
                prop_assert_eq!(r.addr.channel(), trigger.channel());
                prop_assert!(!s.hit);
            }
        }
    }

    #[test]
    fn planaria_never_mixes_origins_per_trigger(steps in proptest::collection::vec(arb_step(), 1..300)) {
        let mut pf = Planaria::default();
        for (_s, reqs) in drive(&mut pf, &steps) {
            // Serial issuing: one sub-prefetcher per trigger.
            let origins: std::collections::BTreeSet<PrefetchOrigin> =
                reqs.iter().map(|r| r.origin).collect();
            prop_assert!(origins.len() <= 1, "serial coordinator mixed origins: {origins:?}");
        }
    }

    #[test]
    fn per_trigger_request_count_is_bounded(steps in proptest::collection::vec(arb_step(), 1..300)) {
        // 16-bit segment bitmaps bound every burst to 15 blocks.
        let mut pf = Planaria::default();
        for (_s, reqs) in drive(&mut pf, &steps) {
            prop_assert!(reqs.len() <= 15, "burst of {} exceeds a segment", reqs.len());
            // No duplicates within a burst.
            let mut blocks: Vec<u64> = reqs.iter().map(|r| r.addr.block_number()).collect();
            blocks.sort_unstable();
            blocks.dedup();
            prop_assert_eq!(blocks.len(), reqs.len(), "duplicate targets in one burst");
        }
    }

    #[test]
    fn prefetchers_are_deterministic(steps in proptest::collection::vec(arb_step(), 1..200)) {
        let mut a = Planaria::default();
        let mut b = Planaria::default();
        let log_a = drive(&mut a, &steps);
        let log_b = drive(&mut b, &steps);
        for ((_, ra), (_, rb)) in log_a.iter().zip(&log_b) {
            prop_assert_eq!(ra, rb);
        }
    }

    #[test]
    fn batched_dispatch_is_bit_identical_to_single(steps in proptest::collection::vec(arb_step(), 1..300)) {
        // The contract on `Prefetcher::on_batch`: replaying a pre-resolved
        // chunk must produce exactly the per-access request stream, in
        // order — for the default forwarding impl (Slp, Tlp) and for
        // Planaria's overridden chunk loop alike.
        let batch: Vec<(MemAccess, bool)> = {
            let mut t = 0u64;
            steps.iter().map(|s| {
                t += s.gap;
                let addr = PhysAddr::from_parts(PageNum::new(s.page), BlockIndex::new(s.block));
                (MemAccess::read(addr, Cycle::new(t)), s.hit)
            }).collect()
        };
        let singles: [Box<dyn Prefetcher>; 3] =
            [Box::new(Planaria::default()), Box::new(Slp::default()), Box::new(Tlp::default())];
        let batched: [Box<dyn Prefetcher>; 3] =
            [Box::new(Planaria::default()), Box::new(Slp::default()), Box::new(Tlp::default())];
        for (mut single, mut chunked) in singles.into_iter().zip(batched) {
            let mut want = Vec::new();
            for (access, hit) in &batch {
                single.on_access(access, *hit, &mut want);
            }
            let mut got = Vec::new();
            chunked.on_batch(&batch, &mut got);
            prop_assert_eq!(&got, &want, "{} batched run diverged", chunked.name());
            prop_assert_eq!(
                chunked.table_accesses(),
                single.table_accesses(),
                "metadata traffic diverged"
            );
        }
    }

    #[test]
    fn storage_is_config_independent_of_traffic(steps in proptest::collection::vec(arb_step(), 1..100)) {
        let mut pf = Planaria::new(PlanariaConfig {
            slp: SlpConfig::default(),
            tlp: TlpConfig::default(),
            ..PlanariaConfig::default()
        });
        let before = pf.storage_bits();
        drive(&mut pf, &steps);
        prop_assert_eq!(pf.storage_bits(), before, "hardware does not grow at runtime");
    }
}
