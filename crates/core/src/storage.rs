//! Hardware storage accounting.
//!
//! The paper reports Planaria's total metadata storage as **345.2 KB** —
//! 8.4% of the 4 MB system cache. This module derives that figure from the
//! table geometries, so the claim is pinned by a unit test instead of being
//! a magic constant.
//!
//! Per-channel entry layouts (bit widths from the configs):
//!
//! | Table | Entry layout | Default entries |
//! |---|---|---|
//! | FT | tag + 3×4-bit offsets + 2-bit count + timestamp + valid | 128 |
//! | AT | tag + 16-bit bitmap + timestamp + valid | 256 |
//! | PT | tag + 16-bit bitmap + valid | 12288 |
//! | RPT | tag + 16-bit bitmap + 127 Ref bits + valid | 128 |
//!
//! Four channels: `4 × (FT + AT + PT + RPT)` ≈ 345 KB.

use planaria_common::{BLOCKS_PER_SEGMENT, NUM_CHANNELS};

use crate::{PlanariaConfig, SlpConfig, TlpConfig};

/// Bits in a per-segment footprint bitmap.
const BITMAP_BITS: u64 = BLOCKS_PER_SEGMENT as u64;

/// Bits to encode one segment-local offset (log2 of 16).
const OFFSET_BITS: u64 = 4;

/// Bits for the FT's distinct-offset counter (counts to 3).
const COUNT_BITS: u64 = 2;

/// Valid bit.
const VALID_BITS: u64 = 1;

/// Storage of one channel's SLP tables, in bits.
pub fn slp_bits(cfg: &SlpConfig) -> u64 {
    let ft_entry = cfg.tag_bits
        + crate::slp::FT_PROMOTE_COUNT as u64 * OFFSET_BITS
        + COUNT_BITS
        + cfg.timestamp_bits
        + VALID_BITS;
    let at_entry = cfg.tag_bits + BITMAP_BITS + cfg.timestamp_bits + VALID_BITS;
    let pt_entry = cfg.tag_bits + BITMAP_BITS + VALID_BITS;
    cfg.ft_entries as u64 * ft_entry
        + cfg.at_entries as u64 * at_entry
        + cfg.pt_entries as u64 * pt_entry
}

/// Storage of one channel's RPT, in bits.
pub fn tlp_bits(cfg: &TlpConfig) -> u64 {
    // N-1 useful Ref bits per entry (referring to oneself is meaningless).
    let ref_bits = cfg.entries as u64 - 1;
    let entry = cfg.tag_bits + BITMAP_BITS + ref_bits + VALID_BITS;
    cfg.entries as u64 * entry
}

/// Total Planaria storage across all four channels, in bits.
pub fn planaria_bits(cfg: &PlanariaConfig) -> u64 {
    NUM_CHANNELS as u64 * (slp_bits(&cfg.slp) + tlp_bits(&cfg.tlp))
}

/// Total Planaria storage in kilobytes (1 KB = 1024 B).
pub fn planaria_kilobytes(cfg: &PlanariaConfig) -> f64 {
    planaria_bits(cfg) as f64 / 8.0 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_storage_matches_paper_345_kb() {
        let kb = planaria_kilobytes(&PlanariaConfig::default());
        // Paper: 345.2 KB. Our derived layout lands within a rounding
        // neighbourhood of it.
        assert!((kb - 345.2).abs() < 2.0, "storage {kb:.1} KB strays from the paper's 345.2 KB");
    }

    #[test]
    fn storage_is_under_nine_percent_of_sc() {
        let kb = planaria_kilobytes(&PlanariaConfig::default());
        let fraction = kb / 4096.0;
        // Paper: 8.4% of the 4 MB SC.
        assert!(
            (fraction - 0.084).abs() < 0.005,
            "fraction {:.3} strays from the paper's 8.4%",
            fraction
        );
    }

    #[test]
    fn pt_dominates_slp_storage() {
        let cfg = SlpConfig::default();
        let total = slp_bits(&cfg);
        let pt_only = slp_bits(&SlpConfig { ft_entries: 1, at_entries: 1, ..cfg })
            - 2 * (cfg.tag_bits + BITMAP_BITS + cfg.timestamp_bits + VALID_BITS);
        assert!(pt_only as f64 > 0.9 * total as f64 - 1000.0);
    }

    #[test]
    fn tlp_ref_matrix_scales_quadratically() {
        let small = tlp_bits(&TlpConfig { entries: 64, ..TlpConfig::default() });
        let big = tlp_bits(&TlpConfig { entries: 128, ..TlpConfig::default() });
        // Doubling entries more than doubles storage (Ref bits grow too).
        assert!(big > 2 * small);
    }
}
