//! The Planaria composite prefetcher.
//!
//! Planaria is a memory-side, **PC-free** hardware prefetcher for the mobile
//! system cache. It is built from:
//!
//! * [`Slp`] — the *Self-Learning directed Prefetcher* (intra-page): learns
//!   each page's **footprint snapshot** through a Filter Table →
//!   Accumulation Table → Pattern History Table pipeline keyed purely by
//!   page number, and on a demand miss replays the snapshot as prefetches.
//! * [`Tlp`] — the *Transfer-Learning directed Prefetcher* (inter-page):
//!   keeps a 128-entry Recent Page Table with pairwise neighbour ("Ref")
//!   bits, and lets a page without history borrow the footprint of its most
//!   similar neighbour within a page-number distance threshold.
//! * [`Planaria`] — the coordinator implementing the paper's key insight:
//!   **decoupled phases** ("parallel training, serial issuing"). Both
//!   sub-prefetchers' *learning* phases observe every access; only one
//!   sub-prefetcher *issues* per trigger, SLP preferentially and TLP as the
//!   fallback when SLP has no metadata.
//!
//! Everything is sized per DRAM channel: the paper's SoC statically slices a
//! 4 KB page into four 16-block segments, one per channel, so per-channel
//! tables hold 16-bit bitmaps. [`Planaria`] instantiates one coordinator per
//! channel and routes accesses by [`planaria_common::PhysAddr::channel`].
//!
//! # Examples
//!
//! ```
//! use planaria_core::{Planaria, PlanariaConfig, Prefetcher};
//! use planaria_common::{Cycle, MemAccess, PhysAddr};
//!
//! let mut pf = Planaria::new(PlanariaConfig::default());
//! let mut out = Vec::new();
//! let access = MemAccess::read(PhysAddr::new(0x4000), Cycle::new(10));
//! pf.on_access(&access, /* sc hit: */ false, &mut out);
//! // A cold page with no history produces no prefetches yet.
//! assert!(out.is_empty());
//! assert!(pf.storage_bits() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod planaria;
pub mod slp;
pub mod storage;
mod tlp;
mod traits;

pub use planaria::{Planaria, PlanariaConfig};
pub use slp::{PatternMerge, Slp, SlpConfig};
pub use tlp::{Tlp, TlpConfig};
pub use traits::{NullPrefetcher, Prefetcher};

// Decision tracing: every instrumented prefetcher speaks these types (see
// the `planaria_telemetry` crate docs for the event taxonomy).
pub use planaria_telemetry::{Telemetry, TelemetryConfig, TelemetryReport};
