//! SLP's three hardware tables: Filter, Accumulation and Pattern History.
//!
//! The learning pipeline (paper Figure 1, steps 1–4):
//!
//! 1. A demand access first probes the **Accumulation Table (AT)**; a hit
//!    sets the block's bit in the entry's 16-bit bitmap.
//! 2. On an AT miss the access goes to the **Filter Table (FT)**, which
//!    weeds out pages whose snapshots involve too few blocks.
//! 3. Once an FT entry has recorded three distinct offsets, the page is
//!    *promoted* into the AT.
//! 4. When an AT entry times out (no access for the timeout window), SLP
//!    interprets the recorded bitmap as a complete, stable snapshot and
//!    transfers it to the **Pattern History Table (PT)**.
//!
//! All tables are indexed by page number only — no PC exists at the system
//! cache. Timeouts are implemented with lazy expiry queues so each access
//! costs amortised O(1), and the maps hash with the deterministic
//! [`planaria_hash`] hasher (these lookups run on every simulated access).
//! Any decision that scans a map — victim selection in particular — must
//! break ties on the page number so results never depend on iteration
//! order, i.e. on the hasher.

use std::collections::VecDeque;

use planaria_common::{Bitmap16, Cycle};
use planaria_hash::{map_with_capacity, FastHashMap};

/// How the Pattern History Table reconciles a freshly captured snapshot
/// with a previously learned pattern for the same page.
///
/// `Replace` is the paper's SLP. The other two transplant DSPatch's
/// coverage-vs-accuracy bitmap duality (Bera et al., MICRO 2019 — the
/// paper's reference \[1\]) into the PN-keyed setting: `Union` grows the
/// pattern toward coverage, `Intersect` shrinks it toward accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PatternMerge {
    /// Latest snapshot wins (the paper's behaviour).
    #[default]
    Replace,
    /// Accumulate the union of snapshots (coverage-biased).
    Union,
    /// Keep only blocks present in every snapshot (accuracy-biased).
    Intersect,
}

impl core::fmt::Display for PatternMerge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            PatternMerge::Replace => "replace",
            PatternMerge::Union => "union",
            PatternMerge::Intersect => "intersect",
        })
    }
}

/// Number of distinct offsets an FT entry must record before promotion.
pub(crate) const FT_PROMOTE_COUNT: usize = 3;

/// What [`FilterTable::record`] did with an access — distinguished so the
/// telemetry layer can count allocations, recordings and promotions
/// separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FtOutcome {
    /// The page had no FT entry; one was allocated.
    Allocated,
    /// An existing entry observed the access (offset new or repeated).
    Recorded,
    /// The entry reached [`FT_PROMOTE_COUNT`] distinct offsets and left the
    /// FT carrying this bitmap.
    Promoted(Bitmap16),
}

impl FtOutcome {
    /// The promotion bitmap, if this access promoted the page.
    #[cfg(test)]
    pub(crate) fn promoted(self) -> Option<Bitmap16> {
        match self {
            FtOutcome::Promoted(bm) => Some(bm),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FtEntry {
    offsets: [u8; FT_PROMOTE_COUNT],
    count: u8,
    last: Cycle,
}

/// The Filter Table: pre-screens pages before they earn an AT entry.
#[derive(Debug, Clone)]
pub(crate) struct FilterTable {
    map: FastHashMap<u64, FtEntry>,
    expiry: VecDeque<(u64, Cycle)>,
    capacity: usize,
    timeout: u64,
    pub(crate) accesses: u64,
}

impl FilterTable {
    pub(crate) fn new(capacity: usize, timeout: u64) -> Self {
        assert!(capacity > 0, "FT capacity must be positive");
        Self {
            map: map_with_capacity(capacity),
            expiry: VecDeque::new(),
            capacity,
            timeout,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Records `offset` (0..16) for `page`; the outcome carries the
    /// three-offset bitmap when the entry reaches the promotion threshold
    /// (which also removes it from the table).
    pub(crate) fn record(&mut self, page: u64, offset: usize, now: Cycle) -> FtOutcome {
        self.accesses += 1;
        self.sweep(now);
        match self.map.get_mut(&page) {
            Some(e) => {
                e.last = now;
                let known = e.offsets[..e.count as usize].contains(&(offset as u8));
                if !known {
                    e.offsets[e.count as usize] = offset as u8;
                    e.count += 1;
                    if e.count as usize == FT_PROMOTE_COUNT {
                        let e = self.map.remove(&page).expect("entry just updated");
                        let bitmap = e.offsets.iter().map(|&o| o as usize).collect::<Bitmap16>();
                        return FtOutcome::Promoted(bitmap);
                    }
                }
                FtOutcome::Recorded
            }
            None => {
                if self.map.len() >= self.capacity {
                    self.evict_oldest();
                }
                let mut offsets = [0u8; FT_PROMOTE_COUNT];
                offsets[0] = offset as u8;
                self.map.insert(page, FtEntry { offsets, count: 1, last: now });
                self.expiry.push_back((page, now));
                FtOutcome::Allocated
            }
        }
    }

    /// Offsets recorded so far for `page`, as a bitmap (blocks already
    /// accessed in the current visit while the page is still filtering).
    pub(crate) fn observed(&self, page: u64) -> Option<Bitmap16> {
        self.map
            .get(&page)
            .map(|e| e.offsets[..e.count as usize].iter().map(|&o| o as usize).collect())
    }

    fn evict_oldest(&mut self) {
        // Total order (last, page): equal timestamps would otherwise be
        // broken by map iteration order, i.e. by the hasher.
        if let Some((&victim, _)) = self.map.iter().min_by_key(|(&page, e)| (e.last, page)) {
            self.map.remove(&victim);
        }
    }

    /// Drops entries idle past the timeout (their snapshots never grew
    /// beyond a couple of blocks — exactly what the FT exists to filter).
    pub(crate) fn sweep(&mut self, now: Cycle) {
        while let Some(&(page, stamped)) = self.expiry.front() {
            if now.since(stamped) < self.timeout {
                break;
            }
            self.expiry.pop_front();
            if let Some(e) = self.map.get(&page) {
                if now.since(e.last) >= self.timeout {
                    self.map.remove(&page);
                } else {
                    let last = e.last;
                    self.expiry.push_back((page, last));
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct AtEntry {
    bitmap: Bitmap16,
    last: Cycle,
}

/// The Accumulation Table: builds the footprint bitmap of in-flight pages.
#[derive(Debug, Clone)]
pub(crate) struct AccumulationTable {
    map: FastHashMap<u64, AtEntry>,
    expiry: VecDeque<(u64, Cycle)>,
    capacity: usize,
    timeout: u64,
    pub(crate) accesses: u64,
}

impl AccumulationTable {
    pub(crate) fn new(capacity: usize, timeout: u64) -> Self {
        assert!(capacity > 0, "AT capacity must be positive");
        Self {
            map: map_with_capacity(capacity),
            expiry: VecDeque::new(),
            capacity,
            timeout,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Sets `offset`'s bit for an existing entry. Returns `true` on hit.
    pub(crate) fn record(&mut self, page: u64, offset: usize, now: Cycle) -> bool {
        self.accesses += 1;
        match self.map.get_mut(&page) {
            Some(e) => {
                e.bitmap.set(offset);
                e.last = now;
                true
            }
            None => false,
        }
    }

    /// Bits accumulated so far for `page` (blocks already accessed in the
    /// current visit).
    pub(crate) fn observed(&self, page: u64) -> Option<Bitmap16> {
        self.map.get(&page).map(|e| e.bitmap)
    }

    /// Inserts a freshly promoted page. A capacity eviction transfers the
    /// victim's partial snapshot out (returned for the PT), since dropping
    /// it would lose a complete-but-crowded pattern.
    pub(crate) fn insert(
        &mut self,
        page: u64,
        bitmap: Bitmap16,
        now: Cycle,
    ) -> Option<(u64, Bitmap16)> {
        let mut spilled = None;
        if self.map.len() >= self.capacity {
            // Total order (last, page): equal timestamps would otherwise
            // be broken by map iteration order, i.e. by the hasher.
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(&page, e)| (e.last, page)) {
                let e = self.map.remove(&victim).expect("victim exists");
                spilled = Some((victim, e.bitmap));
            }
        }
        self.map.insert(page, AtEntry { bitmap, last: now });
        self.expiry.push_back((page, now));
        spilled
    }

    /// Pops every entry idle past the timeout: each is a detected complete,
    /// stable snapshot headed for the PT (paper step 4).
    pub(crate) fn sweep(&mut self, now: Cycle, out: &mut Vec<(u64, Bitmap16)>) {
        while let Some(&(page, stamped)) = self.expiry.front() {
            if now.since(stamped) < self.timeout {
                break;
            }
            self.expiry.pop_front();
            if let Some(e) = self.map.get(&page) {
                if now.since(e.last) >= self.timeout {
                    let e = self.map.remove(&page).expect("entry exists");
                    out.push((page, e.bitmap));
                } else {
                    let last = e.last;
                    self.expiry.push_back((page, last));
                }
            }
        }
    }
}

/// The Pattern History Table: page number → learned snapshot bitmap.
#[derive(Debug, Clone)]
pub(crate) struct PatternTable {
    map: FastHashMap<u64, Bitmap16>,
    fifo: VecDeque<u64>,
    capacity: usize,
    merge: PatternMerge,
    pub(crate) accesses: u64,
}

impl PatternTable {
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_merge(capacity, PatternMerge::default())
    }

    pub(crate) fn with_merge(capacity: usize, merge: PatternMerge) -> Self {
        assert!(capacity > 0, "PT capacity must be positive");
        Self {
            map: map_with_capacity(capacity),
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            merge,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Stores (or merges, per the configured [`PatternMerge`]) the learned
    /// snapshot of `page`.
    pub(crate) fn insert(&mut self, page: u64, bitmap: Bitmap16) {
        self.accesses += 1;
        if bitmap.is_empty() {
            return;
        }
        let merged = match (self.merge, self.map.get(&page)) {
            (PatternMerge::Union, Some(&old)) => old.or(bitmap),
            (PatternMerge::Intersect, Some(&old)) => {
                let both = old.and(bitmap);
                if both.is_empty() {
                    // An unstable pattern carries no signal: drop the entry
                    // (the fifo slot goes stale and is skipped at eviction).
                    self.map.remove(&page);
                    return;
                }
                both
            }
            _ => bitmap,
        };
        if self.map.insert(page, merged).is_none() {
            self.fifo.push_back(page);
            while self.map.len() > self.capacity {
                if let Some(victim) = self.fifo.pop_front() {
                    self.map.remove(&victim);
                } else {
                    break;
                }
            }
        }
    }

    /// The learned snapshot for `page`, if any.
    pub(crate) fn lookup(&mut self, page: u64) -> Option<Bitmap16> {
        self.accesses += 1;
        self.map.get(&page).copied()
    }

    /// Probe without counting a table access (coordinator's selection rule).
    pub(crate) fn contains(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft_promotes_after_three_distinct_offsets() {
        let mut ft = FilterTable::new(8, 1000);
        assert_eq!(ft.record(1, 3, Cycle::new(0)), FtOutcome::Allocated);
        assert_eq!(ft.record(1, 3, Cycle::new(1)), FtOutcome::Recorded, "duplicate offset");
        assert_eq!(ft.record(1, 5, Cycle::new(2)), FtOutcome::Recorded);
        let bm = ft.record(1, 9, Cycle::new(3)).promoted().expect("promotion");
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![3, 5, 9]);
        assert_eq!(ft.len(), 0, "promoted entry leaves the FT");
    }

    #[test]
    fn ft_times_out_sparse_pages() {
        let mut ft = FilterTable::new(8, 100);
        ft.record(1, 0, Cycle::new(0));
        ft.record(2, 0, Cycle::new(50));
        ft.sweep(Cycle::new(120));
        assert_eq!(ft.len(), 1, "page 1 expired, page 2 alive");
        ft.sweep(Cycle::new(200));
        assert_eq!(ft.len(), 0);
    }

    #[test]
    fn ft_eviction_on_capacity() {
        let mut ft = FilterTable::new(2, 1_000_000);
        ft.record(1, 0, Cycle::new(0));
        ft.record(2, 0, Cycle::new(1));
        ft.record(3, 0, Cycle::new(2)); // evicts page 1 (oldest)
        assert_eq!(ft.len(), 2);
        // Page 1 restarts from scratch: its pre-eviction offset is gone,
        // so promotion needs three fresh distinct offsets.
        assert_eq!(ft.record(1, 1, Cycle::new(3)), FtOutcome::Allocated);
        assert_eq!(ft.record(1, 2, Cycle::new(4)), FtOutcome::Recorded);
        let bm = ft.record(1, 3, Cycle::new(5)).promoted().expect("third distinct offset promotes");
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn at_accumulates_and_times_out_to_pattern() {
        let mut at = AccumulationTable::new(8, 100);
        at.insert(7, Bitmap16::from_bits(0b111), Cycle::new(0));
        assert!(at.record(7, 5, Cycle::new(10)));
        assert!(!at.record(8, 0, Cycle::new(11)), "page 8 not resident");
        let mut out = Vec::new();
        at.sweep(Cycle::new(50), &mut out);
        assert!(out.is_empty(), "not yet expired");
        at.sweep(Cycle::new(200), &mut out);
        assert_eq!(out, vec![(7, Bitmap16::from_bits(0b10_0111))]);
        assert_eq!(at.len(), 0);
    }

    #[test]
    fn at_expiry_follows_latest_touch() {
        let mut at = AccumulationTable::new(8, 100);
        at.insert(7, Bitmap16::from_bits(0b1), Cycle::new(0));
        at.record(7, 1, Cycle::new(90)); // refreshed
        let mut out = Vec::new();
        at.sweep(Cycle::new(120), &mut out);
        assert!(out.is_empty(), "entry refreshed at 90, timeout at 190");
        at.sweep(Cycle::new(191), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn at_victim_ties_break_on_page_number() {
        // Two entries with identical `last` stamps: the victim must be the
        // lower page number regardless of insertion order or hasher —
        // before the (last, page) total order, iteration order decided.
        for &(first, second) in &[(10u64, 20u64), (20u64, 10u64)] {
            let mut at = AccumulationTable::new(2, 1000);
            at.insert(first, Bitmap16::from_bits(0b1), Cycle::new(5));
            at.insert(second, Bitmap16::from_bits(0b10), Cycle::new(5));
            let spilled = at.insert(30, Bitmap16::from_bits(0b100), Cycle::new(6));
            assert_eq!(spilled.map(|(page, _)| page), Some(10), "insert order {first},{second}");
        }
    }

    #[test]
    fn ft_victim_ties_break_on_page_number() {
        for &(first, second) in &[(10u64, 20u64), (20u64, 10u64)] {
            let mut ft = FilterTable::new(2, 1_000_000);
            ft.record(first, 0, Cycle::new(5));
            ft.record(second, 0, Cycle::new(5));
            ft.record(30, 0, Cycle::new(6)); // evicts the tied oldest
            assert!(ft.observed(10).is_none(), "page 10 must be the victim");
            assert!(ft.observed(20).is_some());
        }
    }

    #[test]
    fn at_capacity_spills_victim() {
        let mut at = AccumulationTable::new(2, 1000);
        assert!(at.insert(1, Bitmap16::from_bits(0b1), Cycle::new(0)).is_none());
        assert!(at.insert(2, Bitmap16::from_bits(0b10), Cycle::new(1)).is_none());
        let spilled = at.insert(3, Bitmap16::from_bits(0b100), Cycle::new(2));
        assert_eq!(spilled, Some((1, Bitmap16::from_bits(0b1))));
        assert_eq!(at.len(), 2);
    }

    #[test]
    fn pt_fifo_eviction() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::from_bits(0b1));
        pt.insert(2, Bitmap16::from_bits(0b10));
        pt.insert(3, Bitmap16::from_bits(0b100));
        assert_eq!(pt.len(), 2);
        assert!(pt.lookup(1).is_none(), "oldest evicted");
        assert!(pt.lookup(3).is_some());
    }

    #[test]
    fn pt_update_refreshes_pattern_not_position() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::from_bits(0b1));
        pt.insert(2, Bitmap16::from_bits(0b10));
        pt.insert(1, Bitmap16::from_bits(0b11)); // update in place
        pt.insert(3, Bitmap16::from_bits(0b100)); // evicts 1 (still oldest)
        assert!(pt.lookup(1).is_none());
        assert_eq!(pt.lookup(2), Some(Bitmap16::from_bits(0b10)));
    }

    #[test]
    fn pt_ignores_empty_bitmaps() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::EMPTY);
        assert_eq!(pt.len(), 0);
    }

    #[test]
    fn pt_union_accumulates_coverage() {
        let mut pt = PatternTable::with_merge(4, PatternMerge::Union);
        pt.insert(1, Bitmap16::from_bits(0b0011));
        pt.insert(1, Bitmap16::from_bits(0b0110));
        assert_eq!(pt.lookup(1), Some(Bitmap16::from_bits(0b0111)));
    }

    #[test]
    fn pt_intersect_keeps_stable_core() {
        let mut pt = PatternTable::with_merge(4, PatternMerge::Intersect);
        pt.insert(1, Bitmap16::from_bits(0b0111));
        pt.insert(1, Bitmap16::from_bits(0b0110));
        assert_eq!(pt.lookup(1), Some(Bitmap16::from_bits(0b0110)));
        // Disjoint snapshots: the pattern is unstable and gets dropped.
        pt.insert(1, Bitmap16::from_bits(0b1000));
        assert_eq!(pt.lookup(1), None);
    }

    #[test]
    fn merge_mode_display() {
        assert_eq!(PatternMerge::Replace.to_string(), "replace");
        assert_eq!(PatternMerge::Union.to_string(), "union");
        assert_eq!(PatternMerge::Intersect.to_string(), "intersect");
    }
}
