//! SLP's three hardware tables: Filter, Accumulation and Pattern History.
//!
//! The learning pipeline (paper Figure 1, steps 1–4):
//!
//! 1. A demand access first probes the **Accumulation Table (AT)**; a hit
//!    sets the block's bit in the entry's 16-bit bitmap.
//! 2. On an AT miss the access goes to the **Filter Table (FT)**, which
//!    weeds out pages whose snapshots involve too few blocks.
//! 3. Once an FT entry has recorded three distinct offsets, the page is
//!    *promoted* into the AT.
//! 4. When an AT entry times out (no access for the timeout window), SLP
//!    interprets the recorded bitmap as a complete, stable snapshot and
//!    transfers it to the **Pattern History Table (PT)**.
//!
//! All tables are indexed by page number only — no PC exists at the system
//! cache. Timeouts are implemented with lazy expiry queues so each access
//! costs amortised O(1).
//!
//! # Data-oriented layout
//!
//! Each table is stored struct-of-arrays: a fixed-capacity open-addressed
//! [`FixedIndex`] maps `page → slot`, and every entry field lives in its
//! own dense array indexed by slot. The lookups run on every simulated
//! access, so they must be one hash plus a short flat-array probe; the
//! victim scans walk only the fields they compare (timestamps and pages)
//! instead of dragging whole map entries through the cache. Occupied slots
//! are tracked in a `valid` bitmask whose set bits drive the scans, and a
//! free list recycles slots, so the dense arrays never reallocate.
//!
//! Any decision that scans the table — victim selection in particular —
//! must break ties on the page number so results never depend on slot
//! assignment or probe order, i.e. on the hasher.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use planaria_common::{Bitmap16, Cycle};
use planaria_hash::FixedIndex;

/// How the Pattern History Table reconciles a freshly captured snapshot
/// with a previously learned pattern for the same page.
///
/// `Replace` is the paper's SLP. The other two transplant DSPatch's
/// coverage-vs-accuracy bitmap duality (Bera et al., MICRO 2019 — the
/// paper's reference \[1\]) into the PN-keyed setting: `Union` grows the
/// pattern toward coverage, `Intersect` shrinks it toward accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PatternMerge {
    /// Latest snapshot wins (the paper's behaviour).
    #[default]
    Replace,
    /// Accumulate the union of snapshots (coverage-biased).
    Union,
    /// Keep only blocks present in every snapshot (accuracy-biased).
    Intersect,
}

impl core::fmt::Display for PatternMerge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            PatternMerge::Replace => "replace",
            PatternMerge::Union => "union",
            PatternMerge::Intersect => "intersect",
        })
    }
}

/// Number of distinct offsets an FT entry must record before promotion.
pub(crate) const FT_PROMOTE_COUNT: usize = 3;

/// Segment-local block offsets fit the 16-bit footprint bitmaps.
const SEGMENT_BLOCKS: usize = 16;

/// What [`FilterTable::record`] did with an access — distinguished so the
/// telemetry layer can count allocations, recordings and promotions
/// separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FtOutcome {
    /// The page had no FT entry; one was allocated.
    Allocated,
    /// An existing entry observed the access (offset new or repeated).
    Recorded,
    /// The entry reached [`FT_PROMOTE_COUNT`] distinct offsets and left the
    /// FT carrying this bitmap.
    Promoted(Bitmap16),
}

impl FtOutcome {
    /// The promotion bitmap, if this access promoted the page.
    #[cfg(test)]
    pub(crate) fn promoted(self) -> Option<Bitmap16> {
        match self {
            FtOutcome::Promoted(bm) => Some(bm),
            _ => None,
        }
    }
}

/// Bounds `offset` to the segment bitmap width, returning it as the
/// narrow type the tables store. A bare `as u8` here once truncated
/// out-of-range offsets silently; the tables' addressing invariant
/// (segment-local offsets are always `< 16`) is now enforced loudly.
#[inline]
fn checked_offset(offset: usize) -> u8 {
    assert!(
        offset < SEGMENT_BLOCKS,
        "segment-local block offset {offset} exceeds the {SEGMENT_BLOCKS}-block segment bitmap"
    );
    offset as u8
}

/// Shared slot bookkeeping for the SoA tables: a `page → slot` hash index,
/// the dense `pages` array it mirrors, a validity bitmask driving scans,
/// and a free list recycling slots. Field arrays live in the owning table.
#[derive(Debug, Clone)]
struct SlotMap {
    index: FixedIndex,
    /// Page number per slot; meaningful only where `valid` is set.
    pages: Vec<u64>,
    /// Bit *s* set ⇔ slot *s* holds a live entry.
    valid: Vec<u64>,
    /// Recyclable slots, popped in ascending order at first fill.
    free: Vec<u32>,
    /// Last page probed. Demand accesses arrive in page bursts, and each
    /// access probes the same table more than once (learn then issue), so
    /// this one-entry memo short-circuits most index probes. `u64::MAX`
    /// (never a valid key) means empty.
    memo_page: u64,
    /// Memoized result for `memo_page`; `u32::MAX` records a miss. Misses
    /// are safe to memoize because the only insertion path, [`Self::alloc`],
    /// refreshes the memo.
    memo_slot: u32,
    /// Last-touch stamp per slot; meaningful only where `valid` is set and
    /// only for tables that call [`Self::set_last`] (the PT evicts FIFO and
    /// never stamps).
    lasts: Vec<Cycle>,
    /// Lazy min-heap over `(last, page)` touch snapshots. Every live
    /// slot's *current* key is present (pushed by [`Self::set_last`]);
    /// stale snapshots — superseded stamps or released pages — are
    /// detected against `index`/`lasts` and skipped during
    /// [`Self::oldest`]. This replaces the old linear victim scan
    /// (formerly ~9% of the hot profile) with amortised O(log n) work.
    heap: BinaryHeap<Reverse<(Cycle, u64)>>,
}

impl SlotMap {
    fn new(slots: usize) -> Self {
        Self {
            index: FixedIndex::with_capacity(slots),
            pages: vec![0; slots],
            valid: vec![0; slots.div_ceil(64)],
            free: (0..slots as u32).rev().collect(),
            memo_page: u64::MAX,
            memo_slot: u32::MAX,
            lasts: vec![Cycle::ZERO; slots],
            heap: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    #[inline]
    fn get(&mut self, page: u64) -> Option<usize> {
        if page == self.memo_page {
            return (self.memo_slot != u32::MAX).then_some(self.memo_slot as usize);
        }
        let slot = self.index.get(page);
        self.memo_page = page;
        self.memo_slot = slot.unwrap_or(u32::MAX);
        slot.map(|s| s as usize)
    }

    /// Claims a free slot for `page`. The caller must have made room.
    fn alloc(&mut self, page: u64) -> usize {
        let slot = self.free.pop().expect("capacity eviction precedes allocation") as usize;
        self.index.insert(page, slot as u32);
        self.pages[slot] = page;
        self.valid[slot / 64] |= 1 << (slot % 64);
        self.memo_page = page;
        self.memo_slot = slot as u32;
        slot
    }

    /// Releases `page`'s slot, returning it for field cleanup.
    fn release(&mut self, page: u64) -> Option<usize> {
        let slot = self.index.remove(page)? as usize;
        self.valid[slot / 64] &= !(1 << (slot % 64));
        self.free.push(slot as u32);
        if self.memo_page == page {
            self.memo_slot = u32::MAX;
        }
        Some(slot)
    }

    /// Records `now` as `slot`'s last-touch stamp and logs the new
    /// `(last, page)` key into the lazy eviction heap. Tables that evict
    /// by recency must call this on every allocation and touch, or
    /// [`Self::oldest`] loses sight of the entry.
    #[inline]
    fn set_last(&mut self, slot: usize, now: Cycle) {
        self.lasts[slot] = now;
        self.heap.push(Reverse((now, self.pages[slot])));
        // Stale snapshots accumulate between evictions; a rebuild every
        // >= 3·slots pushes bounds the heap at 4·slots for amortised O(1)
        // extra work per touch.
        if self.heap.len() >= (self.pages.len() * 4).max(64) {
            self.rebuild_heap();
        }
    }

    /// `slot`'s last-touch stamp (only meaningful under the
    /// [`Self::set_last`] discipline).
    #[inline]
    fn last(&self, slot: usize) -> Cycle {
        self.lasts[slot]
    }

    /// Repopulates the heap with exactly the live slots' current keys.
    fn rebuild_heap(&mut self) {
        self.heap.clear();
        for (w, &word) in self.valid.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.heap.push(Reverse((self.lasts[slot], self.pages[slot])));
            }
        }
    }

    /// The slot minimising `(last, page)` over live slots — the eviction
    /// total order. Ties on the timestamp break on the page number, never
    /// on slot assignment (which depends on the hasher).
    ///
    /// Pops lazily: a heap snapshot is fresh exactly when its page still
    /// maps to a slot whose current stamp equals the snapshot — any
    /// snapshot passing that check *is* the slot's current key, so the
    /// first fresh pop is the true minimum.
    fn oldest(&mut self) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        loop {
            let Some(&Reverse((last, page))) = self.heap.peek() else {
                // Unreachable under the set_last discipline (every live
                // key is present), but rebuild rather than trusting it.
                self.rebuild_heap();
                continue;
            };
            match self.index.get(page) {
                Some(slot) if self.lasts[slot as usize] == last => return Some(slot as usize),
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

/// The Filter Table: pre-screens pages before they earn an AT entry.
#[derive(Debug, Clone)]
pub(crate) struct FilterTable {
    slots: SlotMap,
    offsets: Vec<[u8; FT_PROMOTE_COUNT]>,
    counts: Vec<u8>,
    expiry: VecDeque<(u64, Cycle)>,
    capacity: usize,
    timeout: u64,
    pub(crate) accesses: u64,
}

impl FilterTable {
    pub(crate) fn new(capacity: usize, timeout: u64) -> Self {
        assert!(capacity > 0, "FT capacity must be positive");
        Self {
            slots: SlotMap::new(capacity),
            offsets: vec![[0; FT_PROMOTE_COUNT]; capacity],
            counts: vec![0; capacity],
            expiry: VecDeque::new(),
            capacity,
            timeout,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Records `offset` (0..16) for `page`; the outcome carries the
    /// three-offset bitmap when the entry reaches the promotion threshold
    /// (which also removes it from the table).
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit the 16-block segment bitmap.
    pub(crate) fn record(&mut self, page: u64, offset: usize, now: Cycle) -> FtOutcome {
        let offset = checked_offset(offset);
        self.accesses += 1;
        self.sweep(now);
        match self.slots.get(page) {
            Some(slot) => {
                self.slots.set_last(slot, now);
                let count = self.counts[slot] as usize;
                let known = self.offsets[slot][..count].contains(&offset);
                if !known {
                    self.offsets[slot][count] = offset;
                    self.counts[slot] = count as u8 + 1;
                    if count + 1 == FT_PROMOTE_COUNT {
                        let bitmap =
                            self.offsets[slot].iter().map(|&o| o as usize).collect::<Bitmap16>();
                        self.slots.release(page);
                        return FtOutcome::Promoted(bitmap);
                    }
                }
                FtOutcome::Recorded
            }
            None => {
                if self.slots.len() >= self.capacity {
                    self.evict_oldest();
                }
                let slot = self.slots.alloc(page);
                self.offsets[slot][0] = offset;
                self.counts[slot] = 1;
                self.slots.set_last(slot, now);
                self.expiry.push_back((page, now));
                FtOutcome::Allocated
            }
        }
    }

    /// Offsets recorded so far for `page`, as a bitmap (blocks already
    /// accessed in the current visit while the page is still filtering).
    pub(crate) fn observed(&mut self, page: u64) -> Option<Bitmap16> {
        let slot = self.slots.get(page)?;
        Some(self.offsets[slot][..self.counts[slot] as usize].iter().map(|&o| o as usize).collect())
    }

    fn evict_oldest(&mut self) {
        // Total order (last, page): equal timestamps would otherwise be
        // broken by slot assignment, i.e. by the hasher.
        if let Some(slot) = self.slots.oldest() {
            self.slots.release(self.slots.pages[slot]);
        }
    }

    /// Drops entries idle past the timeout (their snapshots never grew
    /// beyond a couple of blocks — exactly what the FT exists to filter).
    pub(crate) fn sweep(&mut self, now: Cycle) {
        while let Some(&(page, stamped)) = self.expiry.front() {
            if now.since(stamped) < self.timeout {
                break;
            }
            self.expiry.pop_front();
            if let Some(slot) = self.slots.get(page) {
                let last = self.slots.last(slot);
                if now.since(last) >= self.timeout {
                    self.slots.release(page);
                } else {
                    self.expiry.push_back((page, last));
                }
            }
        }
    }
}

/// The Accumulation Table: builds the footprint bitmap of in-flight pages.
#[derive(Debug, Clone)]
pub(crate) struct AccumulationTable {
    slots: SlotMap,
    bitmaps: Vec<Bitmap16>,
    expiry: VecDeque<(u64, Cycle)>,
    capacity: usize,
    timeout: u64,
    pub(crate) accesses: u64,
}

impl AccumulationTable {
    pub(crate) fn new(capacity: usize, timeout: u64) -> Self {
        assert!(capacity > 0, "AT capacity must be positive");
        Self {
            slots: SlotMap::new(capacity),
            bitmaps: vec![Bitmap16::EMPTY; capacity],
            expiry: VecDeque::new(),
            capacity,
            timeout,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Sets `offset`'s bit for an existing entry. Returns `true` on hit.
    #[inline]
    pub(crate) fn record(&mut self, page: u64, offset: usize, now: Cycle) -> bool {
        self.accesses += 1;
        match self.slots.get(page) {
            Some(slot) => {
                self.bitmaps[slot].set(offset);
                self.slots.set_last(slot, now);
                true
            }
            None => false,
        }
    }

    /// Bits accumulated so far for `page` (blocks already accessed in the
    /// current visit).
    pub(crate) fn observed(&mut self, page: u64) -> Option<Bitmap16> {
        let slot = self.slots.get(page)?;
        Some(self.bitmaps[slot])
    }

    /// Inserts a freshly promoted page. A capacity eviction transfers the
    /// victim's partial snapshot out (returned for the PT), since dropping
    /// it would lose a complete-but-crowded pattern.
    pub(crate) fn insert(
        &mut self,
        page: u64,
        bitmap: Bitmap16,
        now: Cycle,
    ) -> Option<(u64, Bitmap16)> {
        let mut spilled = None;
        if self.slots.len() >= self.capacity {
            // Total order (last, page): equal timestamps would otherwise
            // be broken by slot assignment, i.e. by the hasher.
            if let Some(slot) = self.slots.oldest() {
                let victim = self.slots.pages[slot];
                self.slots.release(victim);
                spilled = Some((victim, self.bitmaps[slot]));
            }
        }
        let slot = self.slots.alloc(page);
        self.bitmaps[slot] = bitmap;
        self.slots.set_last(slot, now);
        self.expiry.push_back((page, now));
        spilled
    }

    /// Pops every entry idle past the timeout: each is a detected complete,
    /// stable snapshot headed for the PT (paper step 4).
    pub(crate) fn sweep(&mut self, now: Cycle, out: &mut Vec<(u64, Bitmap16)>) {
        while let Some(&(page, stamped)) = self.expiry.front() {
            if now.since(stamped) < self.timeout {
                break;
            }
            self.expiry.pop_front();
            if let Some(slot) = self.slots.get(page) {
                let last = self.slots.last(slot);
                if now.since(last) >= self.timeout {
                    out.push((page, self.bitmaps[slot]));
                    self.slots.release(page);
                } else {
                    self.expiry.push_back((page, last));
                }
            }
        }
    }
}

/// The Pattern History Table: page number → learned snapshot bitmap.
#[derive(Debug, Clone)]
pub(crate) struct PatternTable {
    slots: SlotMap,
    bitmaps: Vec<Bitmap16>,
    fifo: VecDeque<u64>,
    capacity: usize,
    merge: PatternMerge,
    pub(crate) accesses: u64,
}

impl PatternTable {
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_merge(capacity, PatternMerge::default())
    }

    pub(crate) fn with_merge(capacity: usize, merge: PatternMerge) -> Self {
        assert!(capacity > 0, "PT capacity must be positive");
        // One spare slot: insertion precedes the FIFO eviction sweep, so
        // the table transiently holds `capacity + 1` live entries.
        Self {
            slots: SlotMap::new(capacity + 1),
            bitmaps: vec![Bitmap16::EMPTY; capacity + 1],
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            merge,
            accesses: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Stores (or merges, per the configured [`PatternMerge`]) the learned
    /// snapshot of `page`.
    pub(crate) fn insert(&mut self, page: u64, bitmap: Bitmap16) {
        self.accesses += 1;
        if bitmap.is_empty() {
            return;
        }
        if let Some(slot) = self.slots.get(page) {
            self.bitmaps[slot] = match self.merge {
                PatternMerge::Union => self.bitmaps[slot].or(bitmap),
                PatternMerge::Intersect => {
                    let both = self.bitmaps[slot].and(bitmap);
                    if both.is_empty() {
                        // An unstable pattern carries no signal: drop the
                        // entry (the fifo slot goes stale and is skipped
                        // at eviction).
                        self.slots.release(page);
                        return;
                    }
                    both
                }
                PatternMerge::Replace => bitmap,
            };
            return;
        }
        let slot = self.slots.alloc(page);
        self.bitmaps[slot] = bitmap;
        self.fifo.push_back(page);
        while self.slots.len() > self.capacity {
            if let Some(victim) = self.fifo.pop_front() {
                self.slots.release(victim);
            } else {
                break;
            }
        }
    }

    /// The learned snapshot for `page`, if any.
    #[inline]
    pub(crate) fn lookup(&mut self, page: u64) -> Option<Bitmap16> {
        self.accesses += 1;
        self.slots.get(page).map(|slot| self.bitmaps[slot])
    }

    /// Probe without counting a table access (coordinator's selection rule).
    #[inline]
    pub(crate) fn contains(&mut self, page: u64) -> bool {
        self.slots.get(page).is_some()
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    /// The pre-heap victim selection, verbatim: a full scan of the valid
    /// mask minimising `(last, page)`. Kept as the reference the lazy
    /// heap is proven against.
    fn oldest_linear(sm: &SlotMap) -> Option<usize> {
        let mut best: Option<(Cycle, u64, usize)> = None;
        for (w, &word) in sm.valid.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let key = (sm.lasts[slot], sm.pages[slot]);
                if best.is_none_or(|(l, p, _)| key < (l, p)) {
                    best = Some((key.0, key.1, slot));
                }
            }
        }
        best.map(|(_, _, slot)| slot)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The SoA slot engine (open-addressed index + dense arrays +
        /// validity mask + memo) against the obvious reference: an ordered
        /// map from page to last-touch cycle. Membership, occupancy, and —
        /// crucially — the `(last, page)` eviction total order must agree
        /// after every operation, whatever the touch/release interleaving.
        #[test]
        fn slotmap_matches_naive_map_model(
            ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..400),
        ) {
            const CAP: usize = 8;
            let mut sm = SlotMap::new(CAP);
            let mut model: std::collections::BTreeMap<u64, Cycle> = Default::default();
            for (i, &(page, release)) in ops.iter().enumerate() {
                let now = Cycle::new(i as u64 + 1);
                if release {
                    let dropped = sm.release(page).is_some();
                    prop_assert_eq!(dropped, model.remove(&page).is_some());
                } else if let Some(slot) = sm.get(page) {
                    prop_assert!(model.contains_key(&page), "phantom hit for page {}", page);
                    sm.set_last(slot, now);
                    model.insert(page, now);
                } else {
                    prop_assert!(!model.contains_key(&page), "lost page {}", page);
                    if sm.len() >= CAP {
                        let victim = sm.oldest().expect("full table has a victim");
                        let victim_page = sm.pages[victim];
                        let model_victim = model
                            .iter()
                            .map(|(&p, &l)| (l, p))
                            .min()
                            .map(|(_, p)| p)
                            .expect("model is full too");
                        prop_assert_eq!(victim_page, model_victim, "eviction order diverged");
                        sm.release(victim_page);
                        model.remove(&victim_page);
                    }
                    let slot = sm.alloc(page);
                    sm.set_last(slot, now);
                    model.insert(page, now);
                }
                prop_assert_eq!(sm.len(), model.len());
            }
            // Final sweep: every surviving page resolves to a live slot
            // holding it, and nothing else does.
            for &page in model.keys() {
                let slot = sm.get(page).expect("model page must be present");
                prop_assert_eq!(sm.pages[slot], page);
            }
        }

        /// The lazy-heap victim selection against the retired linear scan
        /// it replaced: after every operation — touches, releases,
        /// capacity evictions, deliberately colliding stamps — both must
        /// name the same `(last, page)`-minimal slot. This is the proof
        /// that swapping the scan for the heap changed no output anywhere.
        #[test]
        fn heap_victim_matches_linear_scan(
            ops in proptest::collection::vec((0u64..32, any::<bool>()), 1..500),
        ) {
            const CAP: usize = 8;
            let mut sm = SlotMap::new(CAP);
            for (i, &(page, release)) in ops.iter().enumerate() {
                // Divided stamps collide on purpose: the page tiebreak is
                // where a subtly wrong heap order would surface.
                let now = Cycle::new((i as u64 + 1) / 3);
                if release {
                    sm.release(page);
                } else if let Some(slot) = sm.get(page) {
                    sm.set_last(slot, now);
                } else {
                    if sm.len() >= CAP {
                        let victim = sm.oldest().expect("full table has a victim");
                        prop_assert_eq!(Some(victim), oldest_linear(&sm), "eviction victim");
                        sm.release(sm.pages[victim]);
                    }
                    let slot = sm.alloc(page);
                    sm.set_last(slot, now);
                }
                let heap_pick = sm.oldest();
                prop_assert_eq!(heap_pick, oldest_linear(&sm), "victim choice diverged");
            }
        }

        /// The Filter Table end to end: occupancy never exceeds capacity,
        /// and a page's observed bitmap always equals the distinct offsets
        /// recorded since its current allocation.
        #[test]
        fn ft_observed_matches_recorded_offsets(
            ops in proptest::collection::vec((0u64..12, 0usize..SEGMENT_BLOCKS), 1..300),
        ) {
            const CAP: usize = 4;
            let mut ft = FilterTable::new(CAP, u64::MAX);
            let mut recorded: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
            for (i, &(page, offset)) in ops.iter().enumerate() {
                let now = Cycle::new(i as u64 + 1);
                match ft.record(page, offset, now) {
                    FtOutcome::Allocated => {
                        // A fresh allocation may have evicted some other
                        // filtering page; resync membership from the table.
                        recorded.retain(|&p, _| p == page || ft.observed(p).is_some());
                        recorded.insert(page, vec![offset]);
                    }
                    FtOutcome::Recorded => {
                        let offs = recorded.get_mut(&page).expect("recorded page is tracked");
                        if !offs.contains(&offset) {
                            offs.push(offset);
                        }
                    }
                    FtOutcome::Promoted(bm) => {
                        let mut offs = recorded.remove(&page).expect("promoted page was tracked");
                        offs.push(offset);
                        offs.sort_unstable();
                        prop_assert_eq!(bm.iter_set().collect::<Vec<_>>(), offs);
                    }
                }
                prop_assert!(ft.len() <= CAP, "FT overflowed its capacity");
                for (&p, offs) in &recorded {
                    let bm = ft.observed(p).expect("tracked page must be observable");
                    let mut want = offs.clone();
                    want.sort_unstable();
                    prop_assert_eq!(bm.iter_set().collect::<Vec<_>>(), want);
                }
            }
        }
    }

    #[test]
    fn ft_promotes_after_three_distinct_offsets() {
        let mut ft = FilterTable::new(8, 1000);
        assert_eq!(ft.record(1, 3, Cycle::new(0)), FtOutcome::Allocated);
        assert_eq!(ft.record(1, 3, Cycle::new(1)), FtOutcome::Recorded, "duplicate offset");
        assert_eq!(ft.record(1, 5, Cycle::new(2)), FtOutcome::Recorded);
        let bm = ft.record(1, 9, Cycle::new(3)).promoted().expect("promotion");
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![3, 5, 9]);
        assert_eq!(ft.len(), 0, "promoted entry leaves the FT");
    }

    #[test]
    fn ft_times_out_sparse_pages() {
        let mut ft = FilterTable::new(8, 100);
        ft.record(1, 0, Cycle::new(0));
        ft.record(2, 0, Cycle::new(50));
        ft.sweep(Cycle::new(120));
        assert_eq!(ft.len(), 1, "page 1 expired, page 2 alive");
        ft.sweep(Cycle::new(200));
        assert_eq!(ft.len(), 0);
    }

    #[test]
    fn ft_eviction_on_capacity() {
        let mut ft = FilterTable::new(2, 1_000_000);
        ft.record(1, 0, Cycle::new(0));
        ft.record(2, 0, Cycle::new(1));
        ft.record(3, 0, Cycle::new(2)); // evicts page 1 (oldest)
        assert_eq!(ft.len(), 2);
        // Page 1 restarts from scratch: its pre-eviction offset is gone,
        // so promotion needs three fresh distinct offsets.
        assert_eq!(ft.record(1, 1, Cycle::new(3)), FtOutcome::Allocated);
        assert_eq!(ft.record(1, 2, Cycle::new(4)), FtOutcome::Recorded);
        let bm = ft.record(1, 3, Cycle::new(5)).promoted().expect("third distinct offset promotes");
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn ft_accepts_boundary_offset_and_rejects_out_of_range() {
        let mut ft = FilterTable::new(8, 1000);
        // Offset 15 is the last block of a segment: must round-trip intact
        // through the narrow stored form and into the promotion bitmap.
        ft.record(1, 15, Cycle::new(0));
        ft.record(1, 0, Cycle::new(1));
        let bm = ft.record(1, 7, Cycle::new(2)).promoted().expect("promotion");
        assert_eq!(bm.iter_set().collect::<Vec<_>>(), vec![0, 7, 15]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-block segment bitmap")]
    fn ft_rejects_offset_past_segment_width() {
        // 16 is the first out-of-range offset; the old `offset as u8` cast
        // accepted it (and anything up to 255) silently, deferring the
        // failure to an unrelated bitmap panic at promotion time — or, past
        // 255, truncating to a wrong offset with no failure at all.
        let mut ft = FilterTable::new(8, 1000);
        ft.record(1, 16, Cycle::new(0));
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-block segment bitmap")]
    fn ft_rejects_offset_that_would_silently_truncate() {
        // 256 truncated to 0 under the old bare cast: the worst case the
        // checked conversion exists for.
        let mut ft = FilterTable::new(8, 1000);
        ft.record(1, 256, Cycle::new(0));
    }

    #[test]
    fn at_accumulates_and_times_out_to_pattern() {
        let mut at = AccumulationTable::new(8, 100);
        at.insert(7, Bitmap16::from_bits(0b111), Cycle::new(0));
        assert!(at.record(7, 5, Cycle::new(10)));
        assert!(!at.record(8, 0, Cycle::new(11)), "page 8 not resident");
        let mut out = Vec::new();
        at.sweep(Cycle::new(50), &mut out);
        assert!(out.is_empty(), "not yet expired");
        at.sweep(Cycle::new(200), &mut out);
        assert_eq!(out, vec![(7, Bitmap16::from_bits(0b10_0111))]);
        assert_eq!(at.len(), 0);
    }

    #[test]
    fn at_expiry_follows_latest_touch() {
        let mut at = AccumulationTable::new(8, 100);
        at.insert(7, Bitmap16::from_bits(0b1), Cycle::new(0));
        at.record(7, 1, Cycle::new(90)); // refreshed
        let mut out = Vec::new();
        at.sweep(Cycle::new(120), &mut out);
        assert!(out.is_empty(), "entry refreshed at 90, timeout at 190");
        at.sweep(Cycle::new(191), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn at_victim_ties_break_on_page_number() {
        // Two entries with identical `last` stamps: the victim must be the
        // lower page number regardless of insertion order or hasher —
        // before the (last, page) total order, iteration order decided.
        for &(first, second) in &[(10u64, 20u64), (20u64, 10u64)] {
            let mut at = AccumulationTable::new(2, 1000);
            at.insert(first, Bitmap16::from_bits(0b1), Cycle::new(5));
            at.insert(second, Bitmap16::from_bits(0b10), Cycle::new(5));
            let spilled = at.insert(30, Bitmap16::from_bits(0b100), Cycle::new(6));
            assert_eq!(spilled.map(|(page, _)| page), Some(10), "insert order {first},{second}");
        }
    }

    #[test]
    fn ft_victim_ties_break_on_page_number() {
        for &(first, second) in &[(10u64, 20u64), (20u64, 10u64)] {
            let mut ft = FilterTable::new(2, 1_000_000);
            ft.record(first, 0, Cycle::new(5));
            ft.record(second, 0, Cycle::new(5));
            ft.record(30, 0, Cycle::new(6)); // evicts the tied oldest
            assert!(ft.observed(10).is_none(), "page 10 must be the victim");
            assert!(ft.observed(20).is_some());
        }
    }

    #[test]
    fn at_capacity_spills_victim() {
        let mut at = AccumulationTable::new(2, 1000);
        assert!(at.insert(1, Bitmap16::from_bits(0b1), Cycle::new(0)).is_none());
        assert!(at.insert(2, Bitmap16::from_bits(0b10), Cycle::new(1)).is_none());
        let spilled = at.insert(3, Bitmap16::from_bits(0b100), Cycle::new(2));
        assert_eq!(spilled, Some((1, Bitmap16::from_bits(0b1))));
        assert_eq!(at.len(), 2);
    }

    #[test]
    fn pt_fifo_eviction() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::from_bits(0b1));
        pt.insert(2, Bitmap16::from_bits(0b10));
        pt.insert(3, Bitmap16::from_bits(0b100));
        assert_eq!(pt.len(), 2);
        assert!(pt.lookup(1).is_none(), "oldest evicted");
        assert!(pt.lookup(3).is_some());
    }

    #[test]
    fn pt_update_refreshes_pattern_not_position() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::from_bits(0b1));
        pt.insert(2, Bitmap16::from_bits(0b10));
        pt.insert(1, Bitmap16::from_bits(0b11)); // update in place
        pt.insert(3, Bitmap16::from_bits(0b100)); // evicts 1 (still oldest)
        assert!(pt.lookup(1).is_none());
        assert_eq!(pt.lookup(2), Some(Bitmap16::from_bits(0b10)));
    }

    #[test]
    fn pt_ignores_empty_bitmaps() {
        let mut pt = PatternTable::new(2);
        pt.insert(1, Bitmap16::EMPTY);
        assert_eq!(pt.len(), 0);
    }

    #[test]
    fn pt_union_accumulates_coverage() {
        let mut pt = PatternTable::with_merge(4, PatternMerge::Union);
        pt.insert(1, Bitmap16::from_bits(0b0011));
        pt.insert(1, Bitmap16::from_bits(0b0110));
        assert_eq!(pt.lookup(1), Some(Bitmap16::from_bits(0b0111)));
    }

    #[test]
    fn pt_intersect_keeps_stable_core() {
        let mut pt = PatternTable::with_merge(4, PatternMerge::Intersect);
        pt.insert(1, Bitmap16::from_bits(0b0111));
        pt.insert(1, Bitmap16::from_bits(0b0110));
        assert_eq!(pt.lookup(1), Some(Bitmap16::from_bits(0b0110)));
        // Disjoint snapshots: the pattern is unstable and gets dropped.
        pt.insert(1, Bitmap16::from_bits(0b1000));
        assert_eq!(pt.lookup(1), None);
    }

    #[test]
    fn pt_stale_fifo_entries_are_skipped_at_eviction() {
        // Intersect can drop an entry, leaving its FIFO slot stale. The
        // eviction sweep must skip stale victims (they free no live entry)
        // and keep popping until a live one goes.
        let mut pt = PatternTable::with_merge(2, PatternMerge::Intersect);
        pt.insert(1, Bitmap16::from_bits(0b01));
        pt.insert(1, Bitmap16::from_bits(0b10)); // disjoint: entry dropped
        assert_eq!(pt.len(), 0);
        pt.insert(2, Bitmap16::from_bits(0b1));
        pt.insert(3, Bitmap16::from_bits(0b1));
        pt.insert(4, Bitmap16::from_bits(0b1)); // over capacity
        assert_eq!(pt.len(), 2);
        assert!(pt.lookup(2).is_none(), "page 2 was the live FIFO head");
        assert!(pt.lookup(3).is_some());
        assert!(pt.lookup(4).is_some());
    }

    #[test]
    fn merge_mode_display() {
        assert_eq!(PatternMerge::Replace.to_string(), "replace");
        assert_eq!(PatternMerge::Union.to_string(), "union");
        assert_eq!(PatternMerge::Intersect.to_string(), "intersect");
    }
}
