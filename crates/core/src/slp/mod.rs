//! SLP — the Self-Learning directed Prefetcher (intra-page).
//!
//! SLP exploits Observation 1: at the system-cache level a page's accessed
//! blocks form a stable *footprint snapshot* that repeats across visits with
//! long reuse distance and unpredictable intra-visit order. SLP therefore
//! learns the snapshot as a 16-bit bitmap (per channel segment) keyed by the
//! page number alone, and on a demand **miss** replays every not-yet-seen
//! block of the learned snapshot as prefetches.
//!
//! See the `tables` module for the FT → AT → PT learning pipeline.

mod tables;

use planaria_common::{
    Bitmap16, Cycle, MemAccess, PhysAddr, PrefetchOrigin, PrefetchRequest, NUM_CHANNELS,
};
use planaria_telemetry::{EventData, EventKind, Telemetry, TelemetryConfig, TelemetryReport};

use crate::traits::Prefetcher;
pub use tables::PatternMerge;
pub(crate) use tables::FT_PROMOTE_COUNT;
use tables::{AccumulationTable, FilterTable, FtOutcome, PatternTable};

/// SLP sizing parameters (per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlpConfig {
    /// Filter Table entries.
    pub ft_entries: usize,
    /// Accumulation Table entries.
    pub at_entries: usize,
    /// Pattern History Table entries.
    pub pt_entries: usize,
    /// Idle cycles after which an AT entry is deemed a complete snapshot.
    pub timeout: u64,
    /// Page-number tag width in bits (storage accounting).
    pub tag_bits: u64,
    /// Timestamp width in bits (storage accounting).
    pub timestamp_bits: u64,
    /// How the PT reconciles re-learned snapshots (paper: replace).
    pub pattern_merge: PatternMerge,
}

impl Default for SlpConfig {
    /// The sizing used for the paper's 345.2 KB storage budget.
    fn default() -> Self {
        Self {
            ft_entries: 128,
            at_entries: 256,
            pt_entries: 12288,
            timeout: 2000,
            tag_bits: 36,
            timestamp_bits: 32,
            pattern_merge: PatternMerge::Replace,
        }
    }
}

/// One channel's SLP instance, exposing decoupled learning and issuing
/// phases for the coordinator.
#[derive(Debug, Clone)]
pub(crate) struct ChannelSlp {
    /// Which page segment (= DRAM channel) this instance serves.
    segment: usize,
    ft: FilterTable,
    at: AccumulationTable,
    pt: PatternTable,
    scratch: Vec<(u64, Bitmap16)>,
}

impl ChannelSlp {
    pub(crate) fn new_for_segment(cfg: &SlpConfig, segment: usize) -> Self {
        Self {
            segment,
            ft: FilterTable::new(cfg.ft_entries, cfg.timeout),
            at: AccumulationTable::new(cfg.at_entries, cfg.timeout),
            pt: PatternTable::with_merge(cfg.pt_entries, cfg.pattern_merge),
            scratch: Vec::new(),
        }
    }

    /// Learning phase: observes (page, segment offset) at `now`.
    pub(crate) fn learn(&mut self, page: u64, offset: usize, now: Cycle, tel: &mut Telemetry) {
        let ch = self.segment as u8;
        // Step 4 first: expire finished snapshots into the PT.
        self.scratch.clear();
        self.at.sweep(now, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let (p, bm) = self.scratch[i];
            tel.emit(EventKind::SlpSnapshotCapture, now, ch, || EventData::SlpSnapshotCapture {
                page: p,
                bits: bm.bits(),
            });
            self.pt.insert(p, bm);
        }
        // Step 1: accumulate if the page is already tracked.
        if self.at.record(page, offset, now) {
            // Fires on nearly every access — counted, never materialised.
            tel.count(EventKind::SlpAtAccumulate);
            return;
        }
        // Steps 2–3: filter, then promote after three distinct offsets.
        match self.ft.record(page, offset, now) {
            FtOutcome::Allocated => {
                tel.emit(EventKind::SlpFtAllocate, now, ch, || EventData::SlpFtAllocate { page });
            }
            FtOutcome::Recorded => tel.count(EventKind::SlpFtRecord),
            FtOutcome::Promoted(bitmap) => {
                tel.emit(EventKind::SlpFtPromote, now, ch, || EventData::SlpFtPromote {
                    page,
                    bits: bitmap.bits(),
                });
                if let Some((spill_page, spill_bm)) = self.at.insert(page, bitmap, now) {
                    tel.emit(EventKind::SlpAtSpill, now, ch, || EventData::SlpAtSpill {
                        page: spill_page,
                        bits: spill_bm.bits(),
                    });
                    self.pt.insert(spill_page, spill_bm);
                }
            }
        }
    }

    /// Whether SLP holds history for `page` (the coordinator's selection
    /// rule: TLP may issue only when this is `false`).
    pub(crate) fn has_pattern(&mut self, page: u64) -> bool {
        self.pt.contains(page)
    }

    /// Issuing phase (step 5): on a demand miss, prefetch every block of
    /// the learned snapshot not yet observed in the current visit.
    pub(crate) fn issue(
        &mut self,
        page: u64,
        offset: usize,
        triggered_at: Cycle,
        out: &mut Vec<PrefetchRequest>,
        tel: &mut Telemetry,
    ) {
        let Some(pattern) = self.pt.lookup(page) else { return };
        // Blocks already accessed in this visit — tracked by the AT once
        // promoted, or still sitting in the FT — plus the trigger itself.
        let observed = self
            .at
            .observed(page)
            .or_else(|| self.ft.observed(page))
            .unwrap_or(Bitmap16::EMPTY)
            .with(offset);
        let todo = pattern.minus(observed);
        tel.emit(EventKind::SlpIssue, triggered_at, self.segment as u8, || EventData::SlpIssue {
            page,
            pattern: pattern.bits(),
            issued: todo.bits(),
        });
        let page_num = planaria_common::PageNum::new(page);
        for pos in todo.iter_set() {
            // `offset` is a segment-local position; reconstruct the block
            // index within the page when materialising the address.
            let addr = addr_for(page_num, self.segment, pos);
            out.push(PrefetchRequest::new(addr, PrefetchOrigin::Slp, triggered_at));
        }
    }

    pub(crate) fn table_accesses(&self) -> u64 {
        self.ft.accesses + self.at.accesses + self.pt.accesses
    }

    pub(crate) fn occupancy(&self) -> (usize, usize, usize) {
        (self.ft.len(), self.at.len(), self.pt.len())
    }
}

/// Materialises the physical address of a segment-local position.
fn addr_for(page: planaria_common::PageNum, segment: usize, pos: usize) -> PhysAddr {
    let block = planaria_common::SegmentIndex::new(segment).block(pos);
    PhysAddr::from_parts(page, block)
}

/// The standalone four-channel SLP prefetcher.
///
/// Used directly for the paper's Figure 9 "SLP-only" ablation and as the
/// intra-page half of [`crate::Planaria`].
#[derive(Debug, Clone)]
pub struct Slp {
    cfg: SlpConfig,
    channels: Vec<ChannelSlp>,
    tel: Telemetry,
}

impl Slp {
    /// Creates a four-channel SLP.
    pub fn new(cfg: SlpConfig) -> Self {
        Self {
            channels: (0..NUM_CHANNELS).map(|s| ChannelSlp::new_for_segment(&cfg, s)).collect(),
            cfg,
            tel: Telemetry::counting_only(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SlpConfig {
        &self.cfg
    }

    /// (FT, AT, PT) occupancy of one channel, for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 4`.
    pub fn occupancy(&self, channel: usize) -> (usize, usize, usize) {
        self.channels[channel].occupancy()
    }
}

impl Default for Slp {
    fn default() -> Self {
        Self::new(SlpConfig::default())
    }
}

impl Prefetcher for Slp {
    fn name(&self) -> &str {
        "SLP"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        let ch = access.addr.channel().as_usize();
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().index_in_segment();
        let slp = &mut self.channels[ch];
        slp.learn(page, offset, access.cycle, &mut self.tel);
        if !hit {
            slp.issue(page, offset, access.cycle, out, &mut self.tel);
        }
    }

    fn storage_bits(&self) -> u64 {
        crate::storage::slp_bits(&self.cfg) * NUM_CHANNELS as u64
    }

    fn table_accesses(&self) -> u64 {
        self.channels.iter().map(ChannelSlp::table_accesses).sum()
    }

    fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.tel = Telemetry::from_config(cfg);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.tel)
    }

    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        Some(self.tel.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{BlockIndex, PageNum};

    fn access(page: u64, block: usize, cycle: u64) -> MemAccess {
        MemAccess::read(
            PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(block)),
            Cycle::new(cycle),
        )
    }

    /// Drives one full visit of `blocks` (all in segment 0) at ~10-cycle
    /// spacing starting at `t0`; returns requests generated.
    fn visit(
        slp: &mut Slp,
        page: u64,
        blocks: &[usize],
        t0: u64,
        hit: bool,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            slp.on_access(&access(page, b, t0 + 10 * i as u64), hit, &mut out);
        }
        out
    }

    #[test]
    fn no_prefetch_on_first_visit() {
        let mut slp = Slp::default();
        let out = visit(&mut slp, 42, &[0, 3, 5, 7, 9], 0, false);
        assert!(out.is_empty(), "no history yet");
    }

    #[test]
    fn second_visit_replays_snapshot() {
        let mut slp = Slp::default();
        let blocks = [0usize, 3, 5, 7, 9];
        visit(&mut slp, 42, &blocks, 0, false);
        // Long idle gap lets the AT entry time out into the PT.
        let out = visit(&mut slp, 42, &[3], 10_000, false);
        let mut got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        got.sort();
        // Everything in the snapshot except the trigger block 3.
        assert_eq!(got, vec![0, 5, 7, 9]);
        for r in &out {
            assert_eq!(r.origin, PrefetchOrigin::Slp);
            assert_eq!(r.addr.page().as_u64(), 42);
        }
    }

    #[test]
    fn no_issue_on_hits() {
        let mut slp = Slp::default();
        visit(&mut slp, 42, &[0, 3, 5, 7], 0, false);
        let out = visit(&mut slp, 42, &[3], 10_000, true);
        assert!(out.is_empty(), "paper: issue only on cache miss");
    }

    #[test]
    fn filter_table_blocks_sparse_pages() {
        let mut slp = Slp::default();
        // Only two blocks: never promoted past the FT.
        visit(&mut slp, 42, &[0, 1], 0, false);
        let out = visit(&mut slp, 42, &[0], 10_000, false);
        assert!(out.is_empty(), "two-block page filtered out");
    }

    #[test]
    fn already_observed_blocks_not_reprefetched() {
        let mut slp = Slp::default();
        let blocks = [0usize, 3, 5, 7, 9];
        visit(&mut slp, 42, &blocks, 0, false);
        // Second visit: touch 0 and 3 (misses), then check the issue for 5.
        let mut out = Vec::new();
        slp.on_access(&access(42, 0, 10_000), false, &mut out);
        out.clear();
        slp.on_access(&access(42, 3, 10_010), false, &mut out);
        let got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(!got.contains(&0), "block 0 already observed this visit");
    }

    #[test]
    fn channels_are_independent() {
        let mut slp = Slp::default();
        // Blocks 16..20 live in segment/channel 1.
        visit(&mut slp, 42, &[16, 17, 18, 19], 0, false);
        let out = visit(&mut slp, 42, &[17], 10_000, false);
        for r in &out {
            assert_eq!(r.addr.channel().as_usize(), 1);
            assert_eq!(r.addr.block_index().segment().as_usize(), 1);
        }
        assert_eq!(out.len(), 3);
        // Channel 0 never saw page 42.
        let out0 = visit(&mut slp, 42, &[0], 20_000, false);
        assert!(out0.is_empty());
    }

    #[test]
    fn storage_and_access_accounting() {
        let mut slp = Slp::default();
        assert!(slp.storage_bits() > 0);
        assert_eq!(slp.table_accesses(), 0);
        visit(&mut slp, 42, &[0, 3, 5], 0, false);
        assert!(slp.table_accesses() > 0);
        let (ft, at, _pt) = slp.occupancy(0);
        assert!(ft + at > 0);
    }

    #[test]
    fn pattern_follows_snapshot_drift() {
        let mut slp = Slp::default();
        visit(&mut slp, 42, &[0, 3, 5, 7], 0, false);
        // Drifted snapshot on the second visit (5 -> 6).
        visit(&mut slp, 42, &[0, 3, 6, 7], 10_000, false);
        // Third visit: the PT should reflect the latest complete visit.
        let out = visit(&mut slp, 42, &[0], 20_000, false);
        let mut got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        got.sort();
        assert_eq!(got, vec![3, 6, 7]);
    }
}
