//! TLP — the Transfer-Learning directed Prefetcher (inter-page).
//!
//! TLP exploits Observation 2: significant fractions of pages can learn
//! their access pattern from *neighbouring* pages (close page numbers with
//! similar footprint bitmaps). Its single structure is the **Recent Page
//! Table (RPT)**: 128 entries, each holding a page tag, a 16-bit recently-
//! accessed-blocks bitmap, and one "Ref" bit per other entry that is
//! precomputed at allocation time as `|PN_i − PN_j| ≤ distance threshold`.
//!
//! On a demand miss to a tracked page, TLP scans the page's Ref-flagged
//! neighbours, picks the one whose bitmap shares the most set bits with the
//! blocks this page has already touched (at least
//! [`TlpConfig::min_common_bits`], the paper example's "four same bits"),
//! and prefetches the neighbour's remaining blocks on this page.

use planaria_common::{
    Bitmap16, Cycle, MemAccess, PageNum, PhysAddr, PrefetchOrigin, PrefetchRequest, SegmentIndex,
    NUM_CHANNELS,
};
use planaria_hash::{map_with_capacity, FastHashMap};
use planaria_telemetry::{
    EventData, EventKind, Telemetry, TelemetryConfig, TelemetryReport, TransferReject,
};

use crate::traits::Prefetcher;

/// TLP sizing parameters (per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlpConfig {
    /// Recent Page Table entries (at most 128; Ref bits are a u128).
    pub entries: usize,
    /// Maximum page-number distance for two pages to be neighbours.
    pub distance_threshold: u64,
    /// Minimum shared set bits before a pattern transfer is trusted.
    pub min_common_bits: usize,
    /// Page-number tag width in bits (storage accounting).
    pub tag_bits: u64,
}

impl Default for TlpConfig {
    /// The paper's RPT: 128 entries, distance threshold 64. The confidence
    /// threshold is 2 common bits *per channel segment*: the paper's
    /// "four same bits" example is stated for a whole page, and each of
    /// the four channel-sliced coordinators sees a quarter of the page's
    /// footprint.
    fn default() -> Self {
        Self { entries: 128, distance_threshold: 64, min_common_bits: 2, tag_bits: 36 }
    }
}

/// One channel's TLP instance with decoupled learning/issuing phases.
///
/// The RPT is stored struct-of-arrays: the associative page lookup runs
/// on every single access and is served by a hash index (`page → slot`),
/// while the allocation path's pairwise Ref-bit recomputation and LRU
/// victim scan walk dense `pages`/`lasts`/`refs` arrays instead of
/// 40-byte `Option` entries.
#[derive(Debug, Clone)]
pub(crate) struct ChannelTlp {
    segment: usize,
    cfg: TlpConfig,
    /// `page → slot` index mirroring `pages` (pages are unique per table).
    index: FastHashMap<u64, u32>,
    /// Page number of each slot; valid for slots below `filled`.
    pages: Vec<u64>,
    /// Recently-accessed-blocks bitmap per slot.
    bitmaps: Vec<Bitmap16>,
    /// Last-touch cycle per slot (LRU victim selection).
    lasts: Vec<Cycle>,
    /// Bit *j* set ⇔ entry *j* is an address-space neighbour of this slot.
    refs: Vec<u128>,
    /// Slots handed out so far; slots are never freed, so the first
    /// `filled` entries are exactly the occupied ones.
    filled: usize,
    /// One-entry lookup memo `(page, slot)` exploiting page-burst
    /// locality: consecutive accesses overwhelmingly hit the same page,
    /// and `learn` + `issue` on a miss look the same page up twice. The
    /// mapping only changes on allocation, which refreshes the memo.
    /// `u64::MAX` is never a real page number (pages are `addr >> 12`).
    last_lookup: (u64, u32),
    pub(crate) accesses: u64,
}

impl ChannelTlp {
    pub(crate) fn new_for_segment(cfg: &TlpConfig, segment: usize) -> Self {
        assert!(
            (1..=128).contains(&cfg.entries),
            "RPT entries must be in 1..=128 (got {})",
            cfg.entries
        );
        Self {
            segment,
            cfg: *cfg,
            index: map_with_capacity(cfg.entries),
            pages: vec![0; cfg.entries],
            bitmaps: vec![Bitmap16::EMPTY; cfg.entries],
            lasts: vec![Cycle::ZERO; cfg.entries],
            refs: vec![0; cfg.entries],
            filled: 0,
            last_lookup: (u64::MAX, 0),
            accesses: 0,
        }
    }

    fn slot_of(&mut self, page: u64) -> Option<usize> {
        if self.last_lookup.0 == page {
            return Some(self.last_lookup.1 as usize);
        }
        let slot = *self.index.get(&page)?;
        self.last_lookup = (page, slot);
        Some(slot as usize)
    }

    /// Learning phase: record (page, segment offset) at `now`.
    pub(crate) fn learn(&mut self, page: u64, offset: usize, now: Cycle, tel: &mut Telemetry) {
        self.accesses += 1;
        if let Some(i) = self.slot_of(page) {
            self.bitmaps[i].set(offset);
            self.lasts[i] = now;
            return;
        }
        // Allocate: empty slot first, else LRU victim.
        let (victim, evicted) = if self.filled < self.pages.len() {
            let v = self.filled;
            self.filled += 1;
            (v, false)
        } else {
            let v = self.lasts[..self.filled]
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("non-empty RPT");
            self.index.remove(&self.pages[v]);
            (v, true)
        };
        tel.emit(EventKind::TlpRptAllocate, now, self.segment as u8, || {
            EventData::TlpRptAllocate { page, evicted }
        });
        // The departing entry's Ref bits in everyone else are cleared; the
        // newcomer's are recomputed pairwise (paper §4.2).
        let mask = !(1u128 << victim);
        let mut refs = 0u128;
        for j in 0..self.filled {
            if j == victim {
                continue;
            }
            self.refs[j] &= mask;
            if self.pages[j].abs_diff(page) <= self.cfg.distance_threshold {
                self.refs[j] |= 1u128 << victim;
                refs |= 1u128 << j;
            }
        }
        self.index.insert(page, victim as u32);
        // The victim slot's old page is gone; the newcomer owns the memo.
        self.last_lookup = (page, victim as u32);
        self.pages[victim] = page;
        self.bitmaps[victim] = Bitmap16::EMPTY.with(offset);
        self.lasts[victim] = now;
        self.refs[victim] = refs;
    }

    /// Issuing phase: on a demand miss, transfer the most similar
    /// neighbour's pattern to this page.
    pub(crate) fn issue(
        &mut self,
        page: u64,
        _offset: usize,
        triggered_at: Cycle,
        out: &mut Vec<PrefetchRequest>,
        tel: &mut Telemetry,
    ) {
        self.accesses += 1;
        let ch = self.segment as u8;
        let reject = |tel: &mut Telemetry, reason: TransferReject| {
            tel.emit(EventKind::TlpTransferReject, triggered_at, ch, || {
                EventData::TlpTransferReject { page, reason }
            });
        };
        let Some(i) = self.slot_of(page) else {
            reject(tel, TransferReject::NoEntry);
            return;
        };
        let my_bitmap = self.bitmaps[i];
        let mut best: Option<(usize, Bitmap16, u64)> = None;
        let mut neighbours: u8 = 0;
        let mut best_any: usize = 0;
        // Ref bits only ever point at occupied slots (slots are never
        // freed, and eviction clears the departing slot's bit everywhere).
        let mut refs = self.refs[i];
        while refs != 0 {
            let j = refs.trailing_zeros() as usize;
            refs &= refs - 1;
            neighbours += 1;
            let common = my_bitmap.overlap(self.bitmaps[j]);
            best_any = best_any.max(common);
            if common >= self.cfg.min_common_bits && best.is_none_or(|(c, _, _)| common > c) {
                best = Some((common, self.bitmaps[j], self.pages[j]));
            }
        }
        tel.emit(EventKind::TlpLookup, triggered_at, ch, || EventData::TlpLookup {
            page,
            neighbours,
            best_similarity: best_any.min(u8::MAX as usize) as u8,
        });
        let Some((similarity, pattern, donor)) = best else {
            let reason = if neighbours == 0 {
                TransferReject::NoNeighbour
            } else {
                TransferReject::LowSimilarity
            };
            reject(tel, reason);
            return;
        };
        let todo = pattern.minus(my_bitmap);
        if todo.is_empty() {
            reject(tel, TransferReject::NothingNew);
            return;
        }
        tel.emit(EventKind::TlpTransferAccept, triggered_at, ch, || EventData::TlpTransferAccept {
            page,
            donor,
            similarity: similarity.min(u8::MAX as usize) as u8,
            issued: todo.bits(),
        });
        let page_num = PageNum::new(page);
        for pos in todo.iter_set() {
            let addr = PhysAddr::from_parts(page_num, SegmentIndex::new(self.segment).block(pos));
            out.push(PrefetchRequest::new(addr, PrefetchOrigin::Tlp, triggered_at));
        }
    }

    pub(crate) fn occupancy(&self) -> usize {
        self.filled
    }
}

/// The standalone four-channel TLP prefetcher (Figure 9's "TLP-only").
#[derive(Debug, Clone)]
pub struct Tlp {
    cfg: TlpConfig,
    channels: Vec<ChannelTlp>,
    tel: Telemetry,
}

impl Tlp {
    /// Creates a four-channel TLP.
    pub fn new(cfg: TlpConfig) -> Self {
        Self {
            channels: (0..NUM_CHANNELS).map(|s| ChannelTlp::new_for_segment(&cfg, s)).collect(),
            cfg,
            tel: Telemetry::counting_only(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlpConfig {
        &self.cfg
    }

    /// Valid RPT entries in one channel, for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 4`.
    pub fn occupancy(&self, channel: usize) -> usize {
        self.channels[channel].occupancy()
    }
}

impl Default for Tlp {
    fn default() -> Self {
        Self::new(TlpConfig::default())
    }
}

impl Prefetcher for Tlp {
    fn name(&self) -> &str {
        "TLP"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        let ch = access.addr.channel().as_usize();
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().index_in_segment();
        let tlp = &mut self.channels[ch];
        tlp.learn(page, offset, access.cycle, &mut self.tel);
        if !hit {
            tlp.issue(page, offset, access.cycle, out, &mut self.tel);
        }
    }

    fn storage_bits(&self) -> u64 {
        crate::storage::tlp_bits(&self.cfg) * NUM_CHANNELS as u64
    }

    fn table_accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.accesses).sum()
    }

    fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.tel = Telemetry::from_config(cfg);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.tel)
    }

    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        Some(self.tel.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::BlockIndex;

    fn access(page: u64, block: usize, cycle: u64) -> MemAccess {
        MemAccess::read(
            PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(block)),
            Cycle::new(cycle),
        )
    }

    /// Touches `blocks` of `page` as misses, returning all requests.
    fn touch(tlp: &mut Tlp, page: u64, blocks: &[usize], t0: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            tlp.on_access(&access(page, b, t0 + 10 * i as u64), false, &mut out);
        }
        out
    }

    #[test]
    fn transfers_pattern_from_neighbour() {
        // Pin the confidence threshold at the paper example's four bits so
        // the transfer fires exactly once, after the fourth common block.
        let mut tlp = Tlp::new(TlpConfig { min_common_bits: 4, ..TlpConfig::default() });
        // Page 100 establishes a pattern: blocks {0,2,4,6,8} (segment 0).
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Page 101 (neighbour) touches 4 blocks shared with page 100.
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6], 1000);
        let mut got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        got.sort();
        got.dedup();
        assert_eq!(got, vec![8], "only the not-yet-touched common-pattern block");
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Tlp));
        assert!(out.iter().all(|r| r.addr.page().as_u64() == 101));
    }

    #[test]
    fn default_threshold_transfers_after_two_common_bits() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // With the per-segment default (2 common bits) the transfer already
        // fires on the second shared block.
        let out = touch(&mut tlp, 101, &[0, 2], 1000);
        let got: std::collections::BTreeSet<usize> =
            out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(got.contains(&4) && got.contains(&6) && got.contains(&8), "{got:?}");
    }

    #[test]
    fn far_pages_are_not_neighbours() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Distance 65 > threshold 64.
        let out = touch(&mut tlp, 165, &[0, 2, 4, 6], 1000);
        assert!(out.is_empty());
    }

    #[test]
    fn distance_threshold_is_inclusive() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        let out = touch(&mut tlp, 164, &[0, 2, 4, 6], 1000);
        assert!(!out.is_empty(), "distance exactly 64 is a neighbour");
    }

    #[test]
    fn requires_min_common_bits() {
        let mut tlp = Tlp::new(TlpConfig { min_common_bits: 4, ..TlpConfig::default() });
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Only 3 common bits: below the configured 4-bit threshold.
        let out = touch(&mut tlp, 101, &[0, 2, 4], 1000);
        assert!(out.is_empty());
    }

    #[test]
    fn picks_most_similar_neighbour() {
        let mut tlp = Tlp::default();
        // Page B (=100): 6 blocks; page C (=102): different 5-block pattern
        // sharing only 4 bits with A's prefix.
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8, 10], 0);
        touch(&mut tlp, 102, &[0, 2, 4, 6, 15], 500);
        // Page A (=101) touches five blocks common to B (5 with B, 4 with C).
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6, 8], 1000);
        let got: std::collections::BTreeSet<usize> =
            out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(got.contains(&10), "pattern must come from B: {got:?}");
        assert!(!got.contains(&15), "C must lose the similarity contest: {got:?}");
    }

    #[test]
    fn no_issue_on_hits() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        let mut out = Vec::new();
        for (i, b) in [0usize, 2, 4, 6].into_iter().enumerate() {
            tlp.on_access(&access(101, b, 1000 + i as u64 * 10), true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn rpt_eviction_clears_ref_bits() {
        let cfg = TlpConfig { entries: 2, ..TlpConfig::default() };
        let mut tlp = Tlp::new(cfg);
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        touch(&mut tlp, 101, &[1, 3], 100);
        // Page 300 evicts the LRU entry (page 100).
        touch(&mut tlp, 300, &[5], 200);
        // Page 101 re-accessed: its old neighbour is gone; no transfer.
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6], 300);
        assert!(out.is_empty(), "evicted neighbour must not donate a pattern");
        assert_eq!(tlp.occupancy(0), 2);
    }

    #[test]
    fn segment_routing() {
        let mut tlp = Tlp::default();
        // Segment 2 blocks (32..48).
        touch(&mut tlp, 100, &[32, 34, 36, 38, 40], 0);
        let out = touch(&mut tlp, 101, &[32, 34, 36, 38], 1000);
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.addr.channel().as_usize(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "RPT entries")]
    fn rejects_oversized_rpt() {
        let _ = Tlp::new(TlpConfig { entries: 129, ..TlpConfig::default() });
    }

    #[test]
    fn storage_accounting() {
        let tlp = Tlp::default();
        assert!(tlp.storage_bits() > 0);
    }
}
