//! TLP — the Transfer-Learning directed Prefetcher (inter-page).
//!
//! TLP exploits Observation 2: significant fractions of pages can learn
//! their access pattern from *neighbouring* pages (close page numbers with
//! similar footprint bitmaps). Its single structure is the **Recent Page
//! Table (RPT)**: 128 entries, each holding a page tag, a 16-bit recently-
//! accessed-blocks bitmap, and one "Ref" bit per other entry that is
//! precomputed at allocation time as `|PN_i − PN_j| ≤ distance threshold`.
//!
//! On a demand miss to a tracked page, TLP scans the page's Ref-flagged
//! neighbours, picks the one whose bitmap shares the most set bits with the
//! blocks this page has already touched (at least
//! [`TlpConfig::min_common_bits`], the paper example's "four same bits"),
//! and prefetches the neighbour's remaining blocks on this page.

use planaria_common::{
    Bitmap16, Cycle, MemAccess, PageNum, PhysAddr, PrefetchOrigin, PrefetchRequest, SegmentIndex,
    NUM_CHANNELS,
};
use planaria_hash::FixedIndex;
use planaria_telemetry::{
    EventData, EventKind, Telemetry, TelemetryConfig, TelemetryReport, TransferReject,
};

use crate::traits::Prefetcher;

/// TLP sizing parameters (per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlpConfig {
    /// Recent Page Table entries (at most 128; Ref bits are a u128).
    pub entries: usize,
    /// Maximum page-number distance for two pages to be neighbours.
    pub distance_threshold: u64,
    /// Minimum shared set bits before a pattern transfer is trusted.
    pub min_common_bits: usize,
    /// Page-number tag width in bits (storage accounting).
    pub tag_bits: u64,
}

impl Default for TlpConfig {
    /// The paper's RPT: 128 entries, distance threshold 64. The confidence
    /// threshold is 2 common bits *per channel segment*: the paper's
    /// "four same bits" example is stated for a whole page, and each of
    /// the four channel-sliced coordinators sees a quarter of the page's
    /// footprint.
    fn default() -> Self {
        Self { entries: 128, distance_threshold: 64, min_common_bits: 2, tag_bits: 36 }
    }
}

/// One channel's TLP instance with decoupled learning/issuing phases.
///
/// The RPT is stored struct-of-arrays: the associative page lookup runs
/// on every single access and is served by a fixed-capacity open-addressed
/// index (`page → slot`), while the allocation-path LRU victim scan walks
/// the dense `lasts` array instead of 40-byte `Option` entries.
///
/// The paper's per-entry Ref bits are not materialised. The Ref matrix is
/// symmetric and fully determined by the live page numbers (`bit (i, j)` ⇔
/// `|PN_i − PN_j| ≤ distance`), so the hardware's allocation-time pairwise
/// recomputation — an O(entries) read-modify-write over every row's u128,
/// on ~a third of all accesses in the Table 2 mix — is replaced by a
/// branchless on-demand row build over the dense `pages` array on the
/// issue path, which the compiler vectorises. The storage model still
/// accounts the Ref bits (the hardware holds them; the simulator derives
/// them), and the derived row is bit-identical to the maintained one.
#[derive(Debug, Clone)]
pub(crate) struct ChannelTlp {
    segment: usize,
    cfg: TlpConfig,
    /// `page → slot` index mirroring `pages` (pages are unique per table).
    index: FixedIndex,
    /// Page number of each slot; valid for slots below `filled`.
    pages: Vec<u64>,
    /// Recently-accessed-blocks bitmap per slot.
    bitmaps: Vec<Bitmap16>,
    /// Last-touch cycle per slot (LRU victim selection).
    lasts: Vec<Cycle>,
    /// Slots handed out so far; slots are never freed, so the first
    /// `filled` entries are exactly the occupied ones.
    filled: usize,
    /// One-entry lookup memo `(page, slot)` exploiting page-burst
    /// locality: consecutive accesses overwhelmingly hit the same page,
    /// and `learn` + `issue` on a miss look the same page up twice. The
    /// mapping only changes on allocation, which refreshes the memo.
    /// `u64::MAX` is never a real page number (pages are `addr >> 12`).
    last_lookup: (u64, u32),
    /// Bumped on every allocation — the only event that changes any
    /// derived Ref row (see [`ChannelTlp::ref_row`]).
    epoch: u64,
    /// One-entry derived-row memo `(slot, epoch, row)`: demand misses
    /// arrive in page bursts, so consecutive `issue` calls rebuild the
    /// same slot's row until the next allocation invalidates it.
    row_memo: (u32, u64, u128),
    pub(crate) accesses: u64,
}

impl ChannelTlp {
    pub(crate) fn new_for_segment(cfg: &TlpConfig, segment: usize) -> Self {
        assert!(
            (1..=128).contains(&cfg.entries),
            "RPT entries must be in 1..=128 (got {})",
            cfg.entries
        );
        Self {
            segment,
            cfg: *cfg,
            index: FixedIndex::with_capacity(cfg.entries),
            pages: vec![0; cfg.entries],
            bitmaps: vec![Bitmap16::EMPTY; cfg.entries],
            lasts: vec![Cycle::ZERO; cfg.entries],
            filled: 0,
            last_lookup: (u64::MAX, 0),
            epoch: 0,
            row_memo: (u32::MAX, 0, 0),
            accesses: 0,
        }
    }

    fn slot_of(&mut self, page: u64) -> Option<usize> {
        if self.last_lookup.0 == page {
            return Some(self.last_lookup.1 as usize);
        }
        let slot = self.index.get(page)?;
        self.last_lookup = (page, slot);
        Some(slot as usize)
    }

    /// Learning phase: record (page, segment offset) at `now`.
    pub(crate) fn learn(&mut self, page: u64, offset: usize, now: Cycle, tel: &mut Telemetry) {
        self.accesses += 1;
        if let Some(i) = self.slot_of(page) {
            self.bitmaps[i].set(offset);
            self.lasts[i] = now;
            return;
        }
        // Allocate: empty slot first, else LRU victim.
        let (victim, evicted) = if self.filled < self.pages.len() {
            let v = self.filled;
            self.filled += 1;
            (v, false)
        } else {
            // First-minimum scan (the `min_by_key` contract): strict `<`
            // keeps the earliest slot among equal timestamps, and the
            // arithmetic selects compile without a data-dependent branch.
            let mut min_t = self.lasts[0];
            let mut v = 0usize;
            for (i, &t) in self.lasts[1..self.filled].iter().enumerate() {
                let better = t < min_t;
                min_t = if better { t } else { min_t };
                v = if better { i + 1 } else { v };
            }
            self.index.remove(self.pages[v]);
            (v, true)
        };
        tel.emit(EventKind::TlpRptAllocate, now, self.segment as u8, || {
            EventData::TlpRptAllocate { page, evicted }
        });
        // No Ref-bit maintenance here: the hardware recomputes the
        // newcomer's row and patches its column in every other row (paper
        // §4.2), but both are pure functions of the live page numbers, so
        // [`ChannelTlp::ref_row`] derives them on demand instead.
        self.index.insert(page, victim as u32);
        self.epoch += 1;
        // The victim slot's old page is gone; the newcomer owns the memo.
        self.last_lookup = (page, victim as u32);
        self.pages[victim] = page;
        self.bitmaps[victim] = Bitmap16::EMPTY.with(offset);
        self.lasts[victim] = now;
    }

    /// Entry `i`'s Ref row, derived from the live page numbers: bit `j`
    /// set ⇔ `|PN_i − PN_j| ≤ distance_threshold` and `j ≠ i`. Branchless —
    /// each slot's neighbour verdict widens to an all-ones / all-zeros
    /// mask and the one-hot bit advances by a shift of one — so the
    /// compiler vectorises the sweep over the dense `pages` array.
    /// Rows are pure functions of the live pages, which change only on
    /// allocation, so a one-entry `(slot, epoch)` memo serves page bursts
    /// without rebuilding.
    #[inline]
    fn ref_row(&mut self, i: usize) -> u128 {
        if self.row_memo.0 == i as u32 && self.row_memo.1 == self.epoch {
            return self.row_memo.2;
        }
        let my_page = self.pages[i];
        let d = self.cfg.distance_threshold;
        let mut row = 0u128;
        let mut bit = 1u128;
        for &p in &self.pages[..self.filled] {
            let near = 0u128.wrapping_sub((p.abs_diff(my_page) <= d) as u128);
            row |= bit & near;
            bit <<= 1;
        }
        row &= !(1u128 << i);
        self.row_memo = (i as u32, self.epoch, row);
        row
    }

    /// Issuing phase: on a demand miss, transfer the most similar
    /// neighbour's pattern to this page.
    pub(crate) fn issue(
        &mut self,
        page: u64,
        _offset: usize,
        triggered_at: Cycle,
        out: &mut Vec<PrefetchRequest>,
        tel: &mut Telemetry,
    ) {
        self.accesses += 1;
        let ch = self.segment as u8;
        let reject = |tel: &mut Telemetry, reason: TransferReject| {
            tel.emit(EventKind::TlpTransferReject, triggered_at, ch, || {
                EventData::TlpTransferReject { page, reason }
            });
        };
        let Some(i) = self.slot_of(page) else {
            reject(tel, TransferReject::NoEntry);
            return;
        };
        let my_bitmap = self.bitmaps[i];
        let refs = self.ref_row(i);
        let neighbours = refs.count_ones() as u8;
        // Popcount best-candidate scan over the Ref-flagged set bits.
        // Seeding the running best at `min_common_bits − 1` folds the
        // confidence threshold into the strict `>` comparison, so "first
        // neighbour at the maximum wins" (the LRU-position tie-break) needs
        // no separate qualification test inside the loop. The update stays
        // a branch on purpose: it fires only when a new maximum appears
        // (rare), where an arithmetic select would chain a loop-carried
        // cmov dependency through every iteration.
        let mut best_c = self.cfg.min_common_bits as isize - 1;
        let mut best_j = usize::MAX;
        let mut best_any: usize = 0;
        // Ref bits only ever point at occupied slots (slots are never
        // freed, and eviction clears the departing slot's bit everywhere).
        let mut rest = refs;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let common = my_bitmap.overlap(self.bitmaps[j]);
            best_any = best_any.max(common);
            if common as isize > best_c {
                best_c = common as isize;
                best_j = j;
            }
        }
        // Similarity is a popcount of two ANDed segment bitmaps, so it is
        // bounded by the bitmap width — no saturating narrowing needed.
        debug_assert!(best_any <= 16, "overlap exceeds the 16-bit segment bitmap");
        tel.emit(EventKind::TlpLookup, triggered_at, ch, || EventData::TlpLookup {
            page,
            neighbours,
            best_similarity: best_any as u16,
        });
        if best_j == usize::MAX {
            let reason = if neighbours == 0 {
                TransferReject::NoNeighbour
            } else {
                TransferReject::LowSimilarity
            };
            reject(tel, reason);
            return;
        }
        let (pattern, donor) = (self.bitmaps[best_j], self.pages[best_j]);
        let todo = pattern.minus(my_bitmap);
        if todo.is_empty() {
            reject(tel, TransferReject::NothingNew);
            return;
        }
        tel.emit(EventKind::TlpTransferAccept, triggered_at, ch, || EventData::TlpTransferAccept {
            page,
            donor,
            similarity: best_c as u16,
            issued: todo.bits(),
        });
        let page_num = PageNum::new(page);
        for pos in todo.iter_set() {
            let addr = PhysAddr::from_parts(page_num, SegmentIndex::new(self.segment).block(pos));
            out.push(PrefetchRequest::new(addr, PrefetchOrigin::Tlp, triggered_at));
        }
    }

    pub(crate) fn occupancy(&self) -> usize {
        self.filled
    }
}

/// The standalone four-channel TLP prefetcher (Figure 9's "TLP-only").
#[derive(Debug, Clone)]
pub struct Tlp {
    cfg: TlpConfig,
    channels: Vec<ChannelTlp>,
    tel: Telemetry,
}

impl Tlp {
    /// Creates a four-channel TLP.
    pub fn new(cfg: TlpConfig) -> Self {
        Self {
            channels: (0..NUM_CHANNELS).map(|s| ChannelTlp::new_for_segment(&cfg, s)).collect(),
            cfg,
            tel: Telemetry::counting_only(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlpConfig {
        &self.cfg
    }

    /// Valid RPT entries in one channel, for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 4`.
    pub fn occupancy(&self, channel: usize) -> usize {
        self.channels[channel].occupancy()
    }
}

impl Default for Tlp {
    fn default() -> Self {
        Self::new(TlpConfig::default())
    }
}

impl Prefetcher for Tlp {
    fn name(&self) -> &str {
        "TLP"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        let ch = access.addr.channel().as_usize();
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().index_in_segment();
        let tlp = &mut self.channels[ch];
        tlp.learn(page, offset, access.cycle, &mut self.tel);
        if !hit {
            tlp.issue(page, offset, access.cycle, out, &mut self.tel);
        }
    }

    fn storage_bits(&self) -> u64 {
        crate::storage::tlp_bits(&self.cfg) * NUM_CHANNELS as u64
    }

    fn table_accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.accesses).sum()
    }

    fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.tel = Telemetry::from_config(cfg);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.tel)
    }

    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        Some(self.tel.report())
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use planaria_common::BlockIndex;

    /// Naive Ref row: the paper's pairwise predicate, slot by slot.
    fn pairwise_ref_row(ch: &ChannelTlp, i: usize) -> u128 {
        let mut row = 0u128;
        for j in 0..ch.filled {
            if j != i && ch.pages[j].abs_diff(ch.pages[i]) <= ch.cfg.distance_threshold {
                row |= 1u128 << j;
            }
        }
        row
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The RPT against a naive model: a dense slot vector with the
        /// same first-minimum LRU eviction, but plain linear search in
        /// place of the open-addressed index and memos. Membership must
        /// agree after every learn, and every slot's derived Ref row must
        /// equal the scalar pairwise predicate.
        #[test]
        fn rpt_index_and_ref_rows_match_naive_model(
            steps in proptest::collection::vec((0u64..200, 0usize..16), 1..300),
        ) {
            let cfg = TlpConfig { entries: 16, ..TlpConfig::default() };
            let mut ch = ChannelTlp::new_for_segment(&cfg, 0);
            let mut tel = Telemetry::counting_only();
            // Model slots: (page, last). Same shape, naive operations.
            let mut model: Vec<(u64, Cycle)> = Vec::new();
            for (i, &(page, offset)) in steps.iter().enumerate() {
                let now = Cycle::new((i as u64 + 1) * 10);
                ch.learn(page, offset, now, &mut tel);
                if let Some(e) = model.iter_mut().find(|e| e.0 == page) {
                    e.1 = now;
                } else if model.len() < cfg.entries {
                    model.push((page, now));
                } else {
                    let v = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, last))| last)
                        .map(|(s, _)| s)
                        .expect("model is full");
                    model[v] = (page, now);
                }
                prop_assert_eq!(ch.filled, model.len());
                for (slot, &(page, _)) in model.iter().enumerate() {
                    prop_assert_eq!(ch.pages[slot], page, "slot contents diverged");
                    prop_assert_eq!(ch.slot_of(page), Some(slot), "index lookup diverged");
                }
                for slot in 0..ch.filled {
                    let want = pairwise_ref_row(&ch, slot);
                    prop_assert_eq!(ch.ref_row(slot), want, "derived Ref row diverged");
                }
            }
        }

        /// The branchless popcount donor scan against a scalar reference:
        /// walk every other slot, apply the distance predicate, count
        /// common bits with nested loops, keep the first strict maximum at
        /// or above the confidence threshold. The prefetches `issue` emits
        /// must be exactly the reference donor's unseen blocks.
        #[test]
        fn issue_matches_scalar_pairwise_reference(
            steps in proptest::collection::vec((0u64..40, 0usize..16), 1..200),
            trigger in 0u64..40,
        ) {
            let cfg = TlpConfig { entries: 8, ..TlpConfig::default() };
            let mut ch = ChannelTlp::new_for_segment(&cfg, 0);
            let mut tel = Telemetry::counting_only();
            for (i, &(page, offset)) in steps.iter().enumerate() {
                ch.learn(page, offset, Cycle::new((i as u64 + 1) * 10), &mut tel);
            }
            // Scalar reference over a snapshot of the table.
            let mut want: Vec<usize> = Vec::new();
            if let Some(i) = ch.pages[..ch.filled].iter().position(|&p| p == trigger) {
                let my = ch.bitmaps[i];
                let mut best: Option<(usize, usize)> = None; // (common, slot)
                for j in 0..ch.filled {
                    if j == i || ch.pages[j].abs_diff(trigger) > cfg.distance_threshold {
                        continue;
                    }
                    let mut common = 0usize;
                    for b in 0..16 {
                        if my.get(b) && ch.bitmaps[j].get(b) {
                            common += 1;
                        }
                    }
                    if common >= cfg.min_common_bits
                        && best.is_none_or(|(c, _)| common > c)
                    {
                        best = Some((common, j));
                    }
                }
                if let Some((_, j)) = best {
                    want = ch.bitmaps[j].minus(my).iter_set().collect();
                }
            }
            let mut out = Vec::new();
            ch.issue(trigger, 0, Cycle::new(1_000_000), &mut out, &mut tel);
            let got: Vec<usize> =
                out.iter().map(|r| r.addr.block_index().index_in_segment()).collect();
            prop_assert_eq!(got, want, "popcount scan diverged from the scalar reference");
        }
    }

    fn access(page: u64, block: usize, cycle: u64) -> MemAccess {
        MemAccess::read(
            PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(block)),
            Cycle::new(cycle),
        )
    }

    /// Touches `blocks` of `page` as misses, returning all requests.
    fn touch(tlp: &mut Tlp, page: u64, blocks: &[usize], t0: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            tlp.on_access(&access(page, b, t0 + 10 * i as u64), false, &mut out);
        }
        out
    }

    #[test]
    fn transfers_pattern_from_neighbour() {
        // Pin the confidence threshold at the paper example's four bits so
        // the transfer fires exactly once, after the fourth common block.
        let mut tlp = Tlp::new(TlpConfig { min_common_bits: 4, ..TlpConfig::default() });
        // Page 100 establishes a pattern: blocks {0,2,4,6,8} (segment 0).
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Page 101 (neighbour) touches 4 blocks shared with page 100.
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6], 1000);
        let mut got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        got.sort();
        got.dedup();
        assert_eq!(got, vec![8], "only the not-yet-touched common-pattern block");
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Tlp));
        assert!(out.iter().all(|r| r.addr.page().as_u64() == 101));
    }

    #[test]
    fn default_threshold_transfers_after_two_common_bits() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // With the per-segment default (2 common bits) the transfer already
        // fires on the second shared block.
        let out = touch(&mut tlp, 101, &[0, 2], 1000);
        let got: std::collections::BTreeSet<usize> =
            out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(got.contains(&4) && got.contains(&6) && got.contains(&8), "{got:?}");
    }

    #[test]
    fn far_pages_are_not_neighbours() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Distance 65 > threshold 64.
        let out = touch(&mut tlp, 165, &[0, 2, 4, 6], 1000);
        assert!(out.is_empty());
    }

    #[test]
    fn distance_threshold_is_inclusive() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        let out = touch(&mut tlp, 164, &[0, 2, 4, 6], 1000);
        assert!(!out.is_empty(), "distance exactly 64 is a neighbour");
    }

    #[test]
    fn requires_min_common_bits() {
        let mut tlp = Tlp::new(TlpConfig { min_common_bits: 4, ..TlpConfig::default() });
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        // Only 3 common bits: below the configured 4-bit threshold.
        let out = touch(&mut tlp, 101, &[0, 2, 4], 1000);
        assert!(out.is_empty());
    }

    #[test]
    fn picks_most_similar_neighbour() {
        let mut tlp = Tlp::default();
        // Page B (=100): 6 blocks; page C (=102): different 5-block pattern
        // sharing only 4 bits with A's prefix.
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8, 10], 0);
        touch(&mut tlp, 102, &[0, 2, 4, 6, 15], 500);
        // Page A (=101) touches five blocks common to B (5 with B, 4 with C).
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6, 8], 1000);
        let got: std::collections::BTreeSet<usize> =
            out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(got.contains(&10), "pattern must come from B: {got:?}");
        assert!(!got.contains(&15), "C must lose the similarity contest: {got:?}");
    }

    #[test]
    fn equal_similarity_ties_break_on_slot_order() {
        // Two donors with *identical* overlap against the trigger: the
        // winner must be the earlier-allocated RPT slot (first maximum in
        // Ref-bit order), regardless of which donor page number is larger.
        // Pinned because a saturating similarity cast could manufacture
        // exactly this tie between genuinely different scores.
        for &(first, second) in &[(100u64, 102u64), (102, 100)] {
            let mut tlp = Tlp::default();
            // Donors share blocks {0,2} with the upcoming trigger but
            // differ in their tails, so the transferred pattern reveals
            // the chosen donor.
            let tail = |p: u64| if p == 100 { 8usize } else { 10 };
            touch(&mut tlp, first, &[0, 2, tail(first)], 0);
            touch(&mut tlp, second, &[0, 2, tail(second)], 500);
            let out = touch(&mut tlp, 101, &[0, 2], 1000);
            let got: std::collections::BTreeSet<usize> =
                out.iter().map(|r| r.addr.block_index().as_usize()).collect();
            let want_tail = tail(first);
            assert!(
                got.contains(&want_tail),
                "first-allocated donor {first} must win the tie: {got:?}"
            );
        }
    }

    #[test]
    fn no_issue_on_hits() {
        let mut tlp = Tlp::default();
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        let mut out = Vec::new();
        for (i, b) in [0usize, 2, 4, 6].into_iter().enumerate() {
            tlp.on_access(&access(101, b, 1000 + i as u64 * 10), true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn rpt_eviction_clears_ref_bits() {
        let cfg = TlpConfig { entries: 2, ..TlpConfig::default() };
        let mut tlp = Tlp::new(cfg);
        touch(&mut tlp, 100, &[0, 2, 4, 6, 8], 0);
        touch(&mut tlp, 101, &[1, 3], 100);
        // Page 300 evicts the LRU entry (page 100).
        touch(&mut tlp, 300, &[5], 200);
        // Page 101 re-accessed: its old neighbour is gone; no transfer.
        let out = touch(&mut tlp, 101, &[0, 2, 4, 6], 300);
        assert!(out.is_empty(), "evicted neighbour must not donate a pattern");
        assert_eq!(tlp.occupancy(0), 2);
    }

    #[test]
    fn segment_routing() {
        let mut tlp = Tlp::default();
        // Segment 2 blocks (32..48).
        touch(&mut tlp, 100, &[32, 34, 36, 38, 40], 0);
        let out = touch(&mut tlp, 101, &[32, 34, 36, 38], 1000);
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.addr.channel().as_usize(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "RPT entries")]
    fn rejects_oversized_rpt() {
        let _ = Tlp::new(TlpConfig { entries: 129, ..TlpConfig::default() });
    }

    #[test]
    fn storage_accounting() {
        let tlp = Tlp::default();
        assert!(tlp.storage_bits() > 0);
    }
}
