//! The Planaria coordinator: "parallel training, serial issuing".
//!
//! Prior hybrid prefetchers treat each sub-prefetcher as a monolith —
//! either serially enabling whole prefetchers (TPC) or running them fully in
//! parallel (ISB/MISB). Planaria's coordinator instead **decouples** each
//! sub-prefetcher into a learning phase and an issuing phase and manages
//! them separately:
//!
//! * *learning* of **both** SLP and TLP runs on **every** demand access, so
//!   each sub-prefetcher always observes the complete access sequence
//!   ("full-pattern directed");
//! * *issuing* is enabled for exactly **one** sub-prefetcher per trigger:
//!   SLP preferentially, and TLP only when SLP has no history (no PT entry)
//!   for the page — trading a little coverage for much higher accuracy,
//!   which is what the mobile power budget demands.

use planaria_common::{MemAccess, PrefetchRequest, NUM_CHANNELS};
use planaria_telemetry::{
    ArbitrationWinner, EventData, EventKind, Telemetry, TelemetryConfig, TelemetryReport,
};

use crate::slp::ChannelSlp;
use crate::tlp::ChannelTlp;
use crate::traits::Prefetcher;
use crate::{SlpConfig, TlpConfig};

/// Configuration of the full composite prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlanariaConfig {
    /// Intra-page sub-prefetcher sizing.
    pub slp: SlpConfig,
    /// Inter-page sub-prefetcher sizing.
    pub tlp: TlpConfig,
    /// Enable SLP's issuing phase (learning always runs).
    pub enable_slp_issue: bool,
    /// Enable TLP's issuing phase (learning always runs).
    pub enable_tlp_issue: bool,
    /// Ablation: issue from *both* sub-prefetchers on every trigger (the
    /// "parallel coordinator" of ISB/MISB-style hybrids) instead of
    /// Planaria's serial selection. Higher coverage, lower accuracy —
    /// the trade-off the paper's coordinator design avoids.
    pub parallel_issue: bool,
    /// Maximum prefetches issued per trigger (degree throttle). A 16-bit
    /// segment bitmap bounds any burst at 15, so the default of 16 is
    /// effectively unthrottled; smaller values trade coverage for traffic.
    pub max_degree: usize,
}

impl Default for PlanariaConfig {
    fn default() -> Self {
        Self {
            slp: SlpConfig::default(),
            tlp: TlpConfig::default(),
            enable_slp_issue: true,
            enable_tlp_issue: true,
            parallel_issue: false,
            max_degree: 16,
        }
    }
}

impl PlanariaConfig {
    /// Figure 9's "SLP contribution" ablation: TLP learns but never issues.
    #[must_use]
    pub fn slp_only(mut self) -> Self {
        self.enable_slp_issue = true;
        self.enable_tlp_issue = false;
        self
    }

    /// Figure 9's "TLP contribution" ablation: SLP learns but never issues.
    #[must_use]
    pub fn tlp_only(mut self) -> Self {
        self.enable_slp_issue = false;
        self.enable_tlp_issue = true;
        self
    }

    /// The parallel-coordinator ablation: both sub-prefetchers issue on
    /// every trigger.
    #[must_use]
    pub fn parallel(mut self) -> Self {
        self.enable_slp_issue = true;
        self.enable_tlp_issue = true;
        self.parallel_issue = true;
        self
    }
}

struct ChannelPlanaria {
    slp: ChannelSlp,
    tlp: ChannelTlp,
}

/// The composite Planaria prefetcher (one coordinator per DRAM channel).
///
/// See the crate docs for an end-to-end example.
pub struct Planaria {
    cfg: PlanariaConfig,
    name: String,
    channels: Vec<ChannelPlanaria>,
    tel: Telemetry,
}

impl Planaria {
    /// Creates the four-channel composite prefetcher.
    pub fn new(cfg: PlanariaConfig) -> Self {
        let name = match (cfg.enable_slp_issue, cfg.enable_tlp_issue) {
            (true, true) if cfg.parallel_issue => "Planaria(parallel)".to_string(),
            (true, true) => "Planaria".to_string(),
            (true, false) => "Planaria(SLP-only)".to_string(),
            (false, true) => "Planaria(TLP-only)".to_string(),
            (false, false) => "Planaria(learn-only)".to_string(),
        };
        Self {
            channels: (0..NUM_CHANNELS)
                .map(|s| ChannelPlanaria {
                    slp: ChannelSlp::new_for_segment(&cfg.slp, s),
                    tlp: ChannelTlp::new_for_segment(&cfg.tlp, s),
                })
                .collect(),
            cfg,
            name,
            tel: Telemetry::counting_only(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlanariaConfig {
        &self.cfg
    }
}

impl Default for Planaria {
    fn default() -> Self {
        Self::new(PlanariaConfig::default())
    }
}

impl Planaria {
    /// The per-access coordinator step, shared verbatim by the single and
    /// batched [`Prefetcher`] entry points so the two can never diverge.
    #[inline]
    fn step(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        let ch = access.addr.channel().as_usize();
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().index_in_segment();
        let now = access.cycle;
        let c = &mut self.channels[ch];
        let tel = &mut self.tel;

        // Learning phase: both sub-prefetchers see every access.
        c.slp.learn(page, offset, now, tel);
        c.tlp.learn(page, offset, now, tel);

        // Issuing phase: serial selection, only on a demand miss.
        if hit {
            return;
        }
        let slp_has_pattern = c.slp.has_pattern(page);
        let winner = if self.cfg.parallel_issue {
            match (self.cfg.enable_slp_issue, self.cfg.enable_tlp_issue) {
                (true, true) => ArbitrationWinner::Both,
                (true, false) => ArbitrationWinner::Slp,
                (false, true) => ArbitrationWinner::Tlp,
                (false, false) => ArbitrationWinner::None,
            }
        } else if self.cfg.enable_slp_issue && slp_has_pattern {
            ArbitrationWinner::Slp
        } else if self.cfg.enable_tlp_issue {
            ArbitrationWinner::Tlp
        } else {
            ArbitrationWinner::None
        };
        let kind = match winner {
            ArbitrationWinner::Slp => EventKind::ArbitrationSlp,
            ArbitrationWinner::Tlp => EventKind::ArbitrationTlp,
            ArbitrationWinner::Both => EventKind::ArbitrationBoth,
            ArbitrationWinner::None => EventKind::ArbitrationNone,
        };
        tel.emit(kind, now, ch as u8, || EventData::Arbitration { page, winner, slp_has_pattern });

        let before = out.len();
        if self.cfg.parallel_issue {
            // Ablation: the parallel coordinator lets every sub-prefetcher
            // issue on every trigger.
            if self.cfg.enable_slp_issue {
                c.slp.issue(page, offset, now, out, tel);
            }
            if self.cfg.enable_tlp_issue {
                c.tlp.issue(page, offset, now, out, tel);
            }
            out.truncate(before + self.cfg.max_degree);
            return;
        }
        // The selection rule prefers SLP whenever it has history for the
        // page, even if that history yields no new blocks to prefetch —
        // TLP is strictly the "no SLP metadata" fallback.
        match winner {
            ArbitrationWinner::Slp => c.slp.issue(page, offset, now, out, tel),
            ArbitrationWinner::Tlp => c.tlp.issue(page, offset, now, out, tel),
            _ => {}
        }
        out.truncate(before + self.cfg.max_degree);
    }
}

impl Prefetcher for Planaria {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.step(access, hit, out);
    }

    fn on_batch(&mut self, batch: &[(MemAccess, bool)], out: &mut Vec<PrefetchRequest>) {
        // One virtual dispatch for the whole chunk; the inner loop is a
        // direct (inlined) call into the coordinator step.
        for (access, hit) in batch {
            self.step(access, *hit, out);
        }
    }

    fn storage_bits(&self) -> u64 {
        crate::storage::planaria_bits(&self.cfg)
    }

    fn table_accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.slp.table_accesses() + c.tlp.accesses).sum()
    }

    fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.tel = Telemetry::from_config(cfg);
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.tel)
    }

    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        Some(self.tel.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{BlockIndex, Cycle, PageNum, PhysAddr, PrefetchOrigin};

    fn access(page: u64, block: usize, cycle: u64) -> MemAccess {
        MemAccess::read(
            PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(block)),
            Cycle::new(cycle),
        )
    }

    fn touch(pf: &mut Planaria, page: u64, blocks: &[usize], t0: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            pf.on_access(&access(page, b, t0 + 10 * i as u64), false, &mut out);
        }
        out
    }

    #[test]
    fn slp_issues_for_pages_with_history() {
        let mut pf = Planaria::default();
        touch(&mut pf, 42, &[0, 3, 5, 7], 0);
        let out = touch(&mut pf, 42, &[3], 10_000);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Slp));
    }

    #[test]
    fn tlp_issues_for_history_less_neighbour_pages() {
        let mut pf = Planaria::default();
        // Page 100 gets visited once; page 101 has no SLP history.
        touch(&mut pf, 100, &[0, 2, 4, 6, 8], 0);
        let out = touch(&mut pf, 101, &[0, 2, 4, 6], 500);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Tlp));
    }

    #[test]
    fn slp_preferred_over_tlp_once_history_exists() {
        let mut pf = Planaria::default();
        // Page 100 visited fully and timed out into the PT.
        touch(&mut pf, 100, &[0, 2, 4, 6, 8], 0);
        // Long gap -> SLP pattern exists for page 100 now.
        let out = touch(&mut pf, 100, &[0, 2, 4, 6], 50_000);
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Slp), "{out:?}");
    }

    #[test]
    fn slp_only_config_silences_tlp() {
        let mut pf = Planaria::new(PlanariaConfig::default().slp_only());
        assert_eq!(pf.name(), "Planaria(SLP-only)");
        touch(&mut pf, 100, &[0, 2, 4, 6, 8], 0);
        let out = touch(&mut pf, 101, &[0, 2, 4, 6], 500);
        assert!(out.is_empty(), "TLP issuing disabled");
    }

    #[test]
    fn tlp_only_config_silences_slp() {
        let mut pf = Planaria::new(PlanariaConfig::default().tlp_only());
        assert_eq!(pf.name(), "Planaria(TLP-only)");
        touch(&mut pf, 42, &[0, 3, 5, 7], 0);
        let out = touch(&mut pf, 42, &[3], 10_000);
        assert!(out.iter().all(|r| r.origin == PrefetchOrigin::Tlp), "{out:?}");
    }

    #[test]
    fn no_issuing_on_hits() {
        let mut pf = Planaria::default();
        touch(&mut pf, 42, &[0, 3, 5, 7], 0);
        let mut out = Vec::new();
        pf.on_access(&access(42, 3, 10_000), true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn learning_always_runs_even_with_issuing_disabled() {
        // TLP learned page 100 while TLP issuing was off; flipping to the
        // full config immediately benefits from that learned state.
        let mut pf = Planaria::new(PlanariaConfig {
            enable_slp_issue: false,
            enable_tlp_issue: false,
            ..PlanariaConfig::default()
        });
        touch(&mut pf, 100, &[0, 2, 4, 6, 8], 0);
        assert!(touch(&mut pf, 101, &[0, 2, 4, 6], 500).is_empty());
        assert!(pf.table_accesses() > 0, "both learners observed the stream");
    }

    #[test]
    fn parallel_mode_issues_from_both() {
        let cfg = PlanariaConfig {
            tlp: TlpConfig { entries: 4, ..TlpConfig::default() },
            ..PlanariaConfig::default()
        }
        .parallel();
        let mut pf = Planaria::new(cfg);
        assert_eq!(pf.name(), "Planaria(parallel)");
        // Page 100 trains SLP; page 101 leaves a matching RPT donor.
        touch(&mut pf, 100, &[0, 2, 4, 6, 8], 0);
        touch(&mut pf, 101, &[0, 2, 4, 6, 8], 50_000);
        // Far pages churn page 100 out of the tiny RPT (so its re-allocated
        // entry starts with an incomplete bitmap, leaving TLP work to do).
        for (i, p) in [2000u64, 3000, 4000].into_iter().enumerate() {
            touch(&mut pf, p, &[0], 60_000 + i as u64 * 100);
        }
        // Keep the donor (101) warm so the next allocation evicts a far
        // page instead of it.
        touch(&mut pf, 101, &[4], 70_000);
        // Page 100 revisited: SLP has a pattern AND neighbour 101 overlaps
        // the freshly accumulated bits — in parallel mode both fire.
        let out = touch(&mut pf, 100, &[0, 2], 100_000);
        let origins: std::collections::BTreeSet<_> = out.iter().map(|r| r.origin).collect();
        assert!(origins.contains(&PrefetchOrigin::Slp), "{origins:?}");
        assert!(origins.contains(&PrefetchOrigin::Tlp), "{origins:?}");
    }

    #[test]
    fn degree_throttle_caps_burst_size() {
        let mut full = Planaria::default();
        let mut throttled =
            Planaria::new(PlanariaConfig { max_degree: 2, ..PlanariaConfig::default() });
        let blocks = [0usize, 2, 4, 6, 8, 10, 12, 14];
        for pf in [&mut full, &mut throttled] {
            touch(pf, 42, &blocks, 0);
        }
        let full_out = touch(&mut full, 42, &[0], 50_000);
        let throttled_out = touch(&mut throttled, 42, &[0], 50_000);
        assert!(full_out.len() > 2, "{}", full_out.len());
        assert_eq!(throttled_out.len(), 2);
        // The throttled burst is a prefix of the full burst.
        assert_eq!(&full_out[..2], &throttled_out[..]);
    }

    #[test]
    fn storage_matches_component_sum() {
        let pf = Planaria::default();
        let slp = crate::Slp::default();
        let tlp = crate::Tlp::default();
        assert_eq!(pf.storage_bits(), slp.storage_bits() + tlp.storage_bits());
    }
}
