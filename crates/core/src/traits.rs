//! The prefetcher interface shared by Planaria and every baseline.

use planaria_common::{MemAccess, PrefetchRequest};
use planaria_telemetry::{Telemetry, TelemetryConfig, TelemetryReport};

/// A hardware prefetcher observing the system cache's demand stream.
///
/// Implementations receive every demand access (their *learning* phase must
/// see the full stream — the paper's "full-pattern directed" requirement)
/// together with the cache hit/miss outcome, and append any generated
/// prefetch requests to `out`.
///
/// `out` is an out-buffer by design: `on_access` runs once per trace access
/// (tens of millions of times per experiment) and reusing one caller-owned
/// buffer avoids a per-access allocation.
///
/// `Send` is a supertrait so a whole simulated device — `MemorySystem`
/// plus its boxed prefetcher — can migrate between worker threads
/// (`planaria-serve` multiplexes millions of such devices over a pool).
/// Prefetchers are plain owned state machines, so this costs nothing.
pub trait Prefetcher: Send {
    /// Human-readable name used in figures and tables.
    fn name(&self) -> &str;

    /// Observes one demand access; appends prefetch requests to `out`.
    ///
    /// `hit` is `true` only for a *covered* hit: a demand hit on a line the
    /// cache already held for demand reasons. Both real misses **and** the
    /// first demand touch of a prefetched line arrive with `hit == false` —
    /// the standard "prefetched hit" trigger, without which a prefetcher
    /// could never sustain a chain of timely prefetches. (Planaria issues
    /// only on these triggers; baselines may ignore the flag.)
    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>);

    /// Observes a chunk of demand accesses whose hit outcomes are already
    /// known, appending all generated prefetches to `out` in access order.
    ///
    /// MUST behave exactly like calling [`Prefetcher::on_access`] once per
    /// element — callers use it purely to amortise per-access dispatch
    /// overhead (one virtual call per chunk instead of per access), never
    /// to change semantics. Only drivers that replay a pre-resolved stream
    /// (trace replay, microbenchmarks) can use it; a full memory system
    /// cannot, because each access's prefetches feed back into the next
    /// access's hit outcome.
    fn on_batch(&mut self, batch: &[(MemAccess, bool)], out: &mut Vec<PrefetchRequest>) {
        for (access, hit) in batch {
            self.on_access(access, *hit, out);
        }
    }

    /// Metadata storage cost in bits (for the paper's 345.2 KB accounting).
    fn storage_bits(&self) -> u64;

    /// Metadata-table reads+writes performed so far (prefetcher-side energy).
    fn table_accesses(&self) -> u64 {
        0
    }

    /// (Re)configures decision tracing. Instrumented prefetchers replace
    /// their [`Telemetry`] handle (which also zeroes all counters — the
    /// simulator calls this at the warmup boundary); the default is a no-op
    /// for uninstrumented baselines.
    fn configure_telemetry(&mut self, _cfg: &TelemetryConfig) {}

    /// Read access to the live telemetry handle, if this prefetcher is
    /// instrumented.
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }

    /// Condenses the telemetry handle into a report, draining any captured
    /// events. `None` for uninstrumented baselines.
    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        None
    }
}

/// The "no prefetcher" baseline: observes everything, issues nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub const fn new() -> Self {
        Self
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "None"
    }

    fn on_access(&mut self, _access: &MemAccess, _hit: bool, _out: &mut Vec<PrefetchRequest>) {}

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::{Cycle, PhysAddr};

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher::new();
        let mut out = Vec::new();
        p.on_access(&MemAccess::read(PhysAddr::new(0x40), Cycle::new(1)), false, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.table_accesses(), 0);
        assert_eq!(p.name(), "None");
    }

    #[test]
    fn prefetcher_is_object_safe() {
        let mut p: Box<dyn Prefetcher> = Box::new(NullPrefetcher::new());
        let mut out = Vec::new();
        p.on_access(&MemAccess::read(PhysAddr::new(0x40), Cycle::new(1)), true, &mut out);
        assert!(out.is_empty());
    }
}
