//! Decision tracing and structured telemetry for the Planaria pipeline.
//!
//! The paper evaluates Planaria through end-of-run aggregates (hit rate,
//! AMAT, traffic); this crate adds the *per-event* visibility those
//! aggregates hide — why the coordinator chose SLP over TLP for a trigger,
//! which neighbour donated a pattern at what similarity score, and what
//! happened to each prefetch after it was issued. It maps onto the paper as
//! follows:
//!
//! * **SLP events** (§SLP: Filter Table → Accumulation Table → Pattern
//!   History Table) — allocations, promotions, snapshot captures and
//!   capacity spills of the FT/AT/PHT learning pipeline.
//! * **TLP events** (§TLP: Recent Page Table) — RPT allocations, lookups
//!   with the best neighbour-similarity score, and pattern-transfer
//!   accept/reject decisions with a typed reject reason.
//! * **Coordinator events** ("parallel training, serial issuing") — which
//!   sub-prefetcher won the issue slot for each trigger, and why.
//! * **Prefetch lifecycle events** — issued → filled → used /
//!   evicted-unused / late, each tagged with the originating
//!   sub-prefetcher, so coverage, accuracy and timeliness are attributable
//!   per sub-prefetcher rather than only in total.
//!
//! # Architecture
//!
//! Instrumented components own a [`Telemetry`] handle. The handle always
//! feeds a [`CountingSink`] (per-[`EventKind`] and per-origin counters —
//! a handful of integer increments per decision, cheap enough to leave on
//! unconditionally) and, only when [`TelemetryConfig::events`] is set,
//! additionally materialises full [`Event`] records into a bounded
//! [`RingBufferSink`]. Both sinks implement the [`TraceSink`] trait; custom
//! sinks can be fed by draining a ring buffer through
//! [`RingBufferSink::replay`].
//!
//! At the end of a run the handle condenses into a [`TelemetryReport`] —
//! counters plus any captured events — which merges deterministically
//! across experiment cells and exports as JSONL or CSV.
//!
//! # Examples
//!
//! ```
//! use planaria_telemetry::{EventKind, Telemetry, TelemetryConfig};
//! use planaria_common::{Cycle, PrefetchOrigin};
//!
//! // Event capture on (counting alone is always on).
//! let mut tel = Telemetry::from_config(&TelemetryConfig::events());
//! tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Slp, 0x4000, Cycle::new(10));
//! let report = tel.report();
//! assert_eq!(report.count(EventKind::PrefetchIssued), 1);
//! assert_eq!(report.issued(PrefetchOrigin::Slp), 1);
//! assert_eq!(report.events.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod report;
mod sink;

pub use event::{ArbitrationWinner, Event, EventData, EventKind, TransferReject};
pub use report::TelemetryReport;
pub use sink::{
    CountingSink, DeviceLifecycle, RingBufferSink, Telemetry, TelemetryConfig, TraceSink,
};
