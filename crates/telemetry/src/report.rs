//! End-of-run condensation of a [`Telemetry`](crate::Telemetry) handle.

use core::fmt::Write as _;

use planaria_common::json;
use planaria_common::{DeviceId, PrefetchOrigin};

use crate::event::{origin_index, origin_label, Event, EventKind};
use crate::sink::CountingSink;

/// Per-origin labels in export order (SLP, TLP, baseline).
const ORIGIN_ORDER: [PrefetchOrigin; 3] =
    [PrefetchOrigin::Slp, PrefetchOrigin::Tlp, PrefetchOrigin::Baseline];

/// Aggregated telemetry for one simulation (or a deterministic merge of
/// several): the full counter set, plus any captured events.
///
/// Reports merge with [`TelemetryReport::absorb`]; the parallel `Runner`
/// absorbs per-cell reports in submission order, so the merged counters are
/// identical at any thread count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryReport {
    /// Aggregate counters (always populated).
    pub counters: CountingSink,
    /// Captured events, oldest first (empty unless event capture was on).
    pub events: Vec<Event>,
    /// Events the ring buffer had to drop (0 unless capture overflowed).
    pub events_dropped: u64,
}

impl TelemetryReport {
    /// An empty report (all counters zero, no events).
    pub fn new() -> Self {
        TelemetryReport::default()
    }

    /// Fire count of `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counters.count_of(kind)
    }

    /// Prefetches issued by `origin`.
    pub fn issued(&self, origin: PrefetchOrigin) -> u64 {
        self.counters.issued[origin_index(origin)]
    }

    /// Speculative fills that landed in the cache for `origin`.
    pub fn filled(&self, origin: PrefetchOrigin) -> u64 {
        self.counters.filled[origin_index(origin)]
    }

    /// First demand uses of a prefetched line for `origin`.
    pub fn used(&self, origin: PrefetchOrigin) -> u64 {
        self.counters.used[origin_index(origin)]
    }

    /// Prefetched lines evicted without any demand use for `origin`.
    pub fn evicted_unused(&self, origin: PrefetchOrigin) -> u64 {
        self.counters.evicted_unused[origin_index(origin)]
    }

    /// Demand misses that merged into an in-flight prefetch for `origin`.
    pub fn late(&self, origin: PrefetchOrigin) -> u64 {
        self.counters.late[origin_index(origin)]
    }

    /// Prefetches issued across all origins.
    pub fn total_issued(&self) -> u64 {
        self.counters.issued.iter().sum()
    }

    /// Prefetches issued on behalf of `device` (the device whose demand
    /// access triggered them).
    ///
    /// Summing over [`DeviceId::ALL`] reproduces [`Self::total_issued`]
    /// exactly — every issue is attributed to exactly one device.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_common::{Cycle, DeviceId, PrefetchOrigin};
    /// use planaria_telemetry::{EventKind, Telemetry};
    ///
    /// let mut tel = Telemetry::counting_only();
    /// tel.lifecycle_for(
    ///     EventKind::PrefetchIssued,
    ///     PrefetchOrigin::Tlp,
    ///     DeviceId::Npu,
    ///     0x8000,
    ///     Cycle::new(3),
    /// );
    /// let report = tel.report();
    /// assert_eq!(report.issued_by(DeviceId::Npu), 1);
    /// assert_eq!(report.issued_by(DeviceId::Gpu), 0);
    /// let split: u64 = DeviceId::ALL.iter().map(|&d| report.issued_by(d)).sum();
    /// assert_eq!(split, report.total_issued());
    /// ```
    pub fn issued_by(&self, device: DeviceId) -> u64 {
        self.counters.per_device.issued[device.index()]
    }

    /// First demand uses of prefetched lines consumed by `device`.
    pub fn used_by(&self, device: DeviceId) -> u64 {
        self.counters.per_device.used[device.index()]
    }

    /// Demand misses from `device` that merged into an in-flight prefetch.
    pub fn late_by(&self, device: DeviceId) -> u64 {
        self.counters.per_device.late[device.index()]
    }

    /// Merges another report's counters into this one (events are left
    /// untouched — per-cell event streams stay per-cell).
    ///
    /// Addition is commutative, but callers merge in a fixed (submission)
    /// order anyway so `events_dropped` and any future non-commutative
    /// fields stay deterministic.
    pub fn absorb(&mut self, other: &TelemetryReport) {
        self.counters.absorb(&other.counters);
        self.events_dropped += other.events_dropped;
    }

    /// Serialises the report as JSON Lines: one `meta` line, one line per
    /// captured event, then one `summary` line with the complete counter
    /// set.
    ///
    /// The summary carries every counter, so aggregate numbers (e.g. the
    /// SLP/TLP issue split) survive even when the ring buffer truncated the
    /// event stream. Key order is fixed, making equal reports serialise to
    /// byte-identical output.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_common::{Cycle, PrefetchOrigin};
    /// use planaria_telemetry::{EventKind, Telemetry, TelemetryConfig};
    ///
    /// let mut tel = Telemetry::from_config(&TelemetryConfig::events());
    /// tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Slp, 0x4000, Cycle::new(7));
    /// let report = tel.report();
    ///
    /// let jsonl = report.to_jsonl("demo");
    /// assert_eq!(jsonl.lines().count(), 3, "meta + one event + summary");
    /// assert!(jsonl.contains("\"kind\":\"prefetch_issued\""));
    /// ```
    pub fn to_jsonl(&self, label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"label\":\"{}\",\"events\":{},\"events_dropped\":{}}}",
            json::escape(label),
            self.events.len(),
            self.events_dropped
        );
        for (seq, ev) in self.events.iter().enumerate() {
            ev.write_jsonl(seq as u64, &mut out);
            out.push('\n');
        }
        out.push_str("{\"type\":\"summary\",\"counters\":{");
        let mut first = true;
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{n}", kind.label());
        }
        out.push('}');
        for (name, row) in self.lifecycle_rows() {
            let _ = write!(out, ",\"{name}\":{{");
            for (i, origin) in ORIGIN_ORDER.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", origin_label(*origin), row[origin_index(*origin)]);
            }
            out.push('}');
        }
        out.push_str(",\"by_device\":{");
        let mut first_dev = true;
        for device in DeviceId::ALL {
            let i = device.index();
            let pd = &self.counters.per_device;
            let cols = [
                ("issued", pd.issued[i]),
                ("filled", pd.filled[i]),
                ("used", pd.used[i]),
                ("evicted_unused", pd.evicted_unused[i]),
                ("late", pd.late[i]),
            ];
            if cols.iter().all(|(_, n)| *n == 0) {
                continue;
            }
            if !first_dev {
                out.push(',');
            }
            first_dev = false;
            let _ = write!(out, "\"{}\":{{", device.label());
            for (j, (name, n)) in cols.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{n}");
            }
            out.push('}');
        }
        out.push('}');
        out.push_str("}\n");
        out
    }

    /// Serialises the counter set as CSV (`counter,value`, one row per
    /// non-zero counter, lifecycle rows suffixed with the origin).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n != 0 {
                let _ = writeln!(out, "{},{n}", kind.label());
            }
        }
        for (name, row) in self.lifecycle_rows() {
            for origin in ORIGIN_ORDER {
                let n = row[origin_index(origin)];
                if n != 0 {
                    let _ = writeln!(out, "{name}_{},{n}", origin_label(origin));
                }
            }
        }
        for device in DeviceId::ALL {
            let i = device.index();
            let pd = &self.counters.per_device;
            for (name, n) in [
                ("issued", pd.issued[i]),
                ("filled", pd.filled[i]),
                ("used", pd.used[i]),
                ("evicted_unused", pd.evicted_unused[i]),
                ("late", pd.late[i]),
            ] {
                if n != 0 {
                    let _ = writeln!(out, "{name}_{},{n}", device.label());
                }
            }
        }
        if self.events_dropped != 0 {
            let _ = writeln!(out, "events_dropped,{}", self.events_dropped);
        }
        out
    }

    /// Human-readable multi-line summary (what the `--telemetry` flag
    /// prints after a grid).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>12} {:>12} {:>12}", "lifecycle", "slp", "tlp", "baseline");
        for (name, row) in self.lifecycle_rows() {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>12} {:>12}",
                name,
                row[origin_index(PrefetchOrigin::Slp)],
                row[origin_index(PrefetchOrigin::Tlp)],
                row[origin_index(PrefetchOrigin::Baseline)]
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<28} {:>12}", "decision counters", "count");
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n != 0 {
                let _ = writeln!(out, "{:<28} {:>12}", kind.label(), n);
            }
        }
        out
    }

    fn lifecycle_rows(&self) -> [(&'static str, &[u64; 3]); 5] {
        [
            ("issued", &self.counters.issued),
            ("filled", &self.counters.filled),
            ("used", &self.counters.used),
            ("evicted_unused", &self.counters.evicted_unused),
            ("late", &self.counters.late),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;
    use crate::{Telemetry, TelemetryConfig};
    use planaria_common::Cycle;

    fn sample_report() -> TelemetryReport {
        let mut tel = Telemetry::from_config(&TelemetryConfig::events());
        tel.emit(EventKind::SlpFtAllocate, Cycle::new(3), 1, || EventData::SlpFtAllocate {
            page: 42,
        });
        tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Slp, 0x1040, Cycle::new(4));
        tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Tlp, 0x2040, Cycle::new(5));
        tel.report()
    }

    #[test]
    fn jsonl_has_meta_events_and_summary() {
        let report = sample_report();
        let jsonl = report.to_jsonl("gups");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2 + report.events.len());
        assert!(lines[0].starts_with("{\"type\":\"meta\",\"label\":\"gups\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"type\":\"event\",\"seq\":0"), "{}", lines[1]);
        let summary = lines.last().unwrap();
        assert!(summary.starts_with("{\"type\":\"summary\""), "{summary}");
        assert!(summary.contains("\"issued\":{\"slp\":1,\"tlp\":1,\"baseline\":0}"), "{summary}");
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(sample_report().to_jsonl("x"), sample_report().to_jsonl("x"));
    }

    #[test]
    fn absorb_sums_counters_and_keeps_own_events() {
        let mut a = sample_report();
        let b = sample_report();
        let events_before = a.events.len();
        a.absorb(&b);
        assert_eq!(a.issued(PrefetchOrigin::Slp), 2);
        assert_eq!(a.count(EventKind::SlpFtAllocate), 2);
        assert_eq!(a.events.len(), events_before);
    }

    #[test]
    fn csv_lists_nonzero_counters() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("counter,value\n"));
        assert!(csv.contains("slp_ft_allocate,1\n"), "{csv}");
        assert!(csv.contains("issued_slp,1\n"), "{csv}");
        assert!(!csv.contains("tlp_lookup"), "{csv}");
    }

    #[test]
    fn summary_table_mentions_all_lifecycle_rows() {
        let table = sample_report().summary_table();
        for row in ["issued", "filled", "used", "evicted_unused", "late"] {
            assert!(table.contains(row), "{table}");
        }
    }

    #[test]
    fn jsonl_escapes_labels_through_shared_helper() {
        let jsonl = sample_report().to_jsonl("a\"b\\c");
        assert!(jsonl.starts_with("{\"type\":\"meta\",\"label\":\"a\\\"b\\\\c\""), "{jsonl}");
    }
}
