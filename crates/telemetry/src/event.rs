//! Typed events emitted at every decision point of the pipeline.

use core::fmt;
use core::fmt::Write as _;

use planaria_common::{Cycle, PrefetchOrigin};

/// The kind of a telemetry event — the unit the always-on counting sink
/// counts by.
///
/// The taxonomy follows the pipeline: SLP learning transitions, TLP
/// lookups/transfers, coordinator arbitration, and the per-prefetch
/// lifecycle observed by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum EventKind {
    /// SLP: a page entered the Filter Table.
    SlpFtAllocate,
    /// SLP: an existing Filter Table entry observed another access.
    SlpFtRecord,
    /// SLP: a Filter Table entry reached three distinct offsets and was
    /// promoted into the Accumulation Table.
    SlpFtPromote,
    /// SLP: an Accumulation Table entry accumulated one more block bit.
    SlpAtAccumulate,
    /// SLP: an Accumulation Table entry timed out — its bitmap was captured
    /// into the Pattern History Table as a complete snapshot.
    SlpSnapshotCapture,
    /// SLP: a capacity eviction spilled a partial Accumulation Table
    /// snapshot into the Pattern History Table early.
    SlpAtSpill,
    /// SLP: a learned pattern was replayed on a demand-miss trigger.
    SlpIssue,
    /// TLP: a page was allocated a Recent Page Table entry.
    TlpRptAllocate,
    /// TLP: an issue-phase RPT lookup scanned the page's neighbours.
    TlpLookup,
    /// TLP: a neighbour's pattern was transferred to the trigger page.
    TlpTransferAccept,
    /// TLP: no pattern was transferred (see [`TransferReject`]).
    TlpTransferReject,
    /// Coordinator: SLP won the issue slot for a trigger.
    ArbitrationSlp,
    /// Coordinator: TLP won the issue slot (SLP had no metadata).
    ArbitrationTlp,
    /// Coordinator: both sub-prefetchers issued (parallel-coordinator
    /// ablation).
    ArbitrationBoth,
    /// Coordinator: no sub-prefetcher was allowed to issue.
    ArbitrationNone,
    /// Lifecycle: a prefetch request was sent to the DRAM controller.
    PrefetchIssued,
    /// Lifecycle: a speculative fill landed in the system cache.
    PrefetchFilled,
    /// Lifecycle: the first demand touch of a prefetched line (useful).
    PrefetchUsed,
    /// Lifecycle: a prefetched line was evicted without any demand use
    /// (pollution).
    PrefetchEvictedUnused,
    /// Lifecycle: a demand miss merged into a still-in-flight prefetch
    /// (late prefetch — issued, but not timely).
    PrefetchLate,
    /// Lifecycle: a request was dropped by the cache/in-flight/queue
    /// dedup filter before reaching DRAM.
    PrefetchFiltered,
}

impl EventKind {
    /// Number of distinct kinds (the counting sink's array width).
    pub const COUNT: usize = 21;

    /// Every kind, in counter order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::SlpFtAllocate,
        EventKind::SlpFtRecord,
        EventKind::SlpFtPromote,
        EventKind::SlpAtAccumulate,
        EventKind::SlpSnapshotCapture,
        EventKind::SlpAtSpill,
        EventKind::SlpIssue,
        EventKind::TlpRptAllocate,
        EventKind::TlpLookup,
        EventKind::TlpTransferAccept,
        EventKind::TlpTransferReject,
        EventKind::ArbitrationSlp,
        EventKind::ArbitrationTlp,
        EventKind::ArbitrationBoth,
        EventKind::ArbitrationNone,
        EventKind::PrefetchIssued,
        EventKind::PrefetchFilled,
        EventKind::PrefetchUsed,
        EventKind::PrefetchEvictedUnused,
        EventKind::PrefetchLate,
        EventKind::PrefetchFiltered,
    ];

    /// The counter-array slot of this kind.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label (used in JSONL/CSV exports).
    pub const fn label(self) -> &'static str {
        match self {
            EventKind::SlpFtAllocate => "slp_ft_allocate",
            EventKind::SlpFtRecord => "slp_ft_record",
            EventKind::SlpFtPromote => "slp_ft_promote",
            EventKind::SlpAtAccumulate => "slp_at_accumulate",
            EventKind::SlpSnapshotCapture => "slp_snapshot_capture",
            EventKind::SlpAtSpill => "slp_at_spill",
            EventKind::SlpIssue => "slp_issue",
            EventKind::TlpRptAllocate => "tlp_rpt_allocate",
            EventKind::TlpLookup => "tlp_lookup",
            EventKind::TlpTransferAccept => "tlp_transfer_accept",
            EventKind::TlpTransferReject => "tlp_transfer_reject",
            EventKind::ArbitrationSlp => "arbitration_slp",
            EventKind::ArbitrationTlp => "arbitration_tlp",
            EventKind::ArbitrationBoth => "arbitration_both",
            EventKind::ArbitrationNone => "arbitration_none",
            EventKind::PrefetchIssued => "prefetch_issued",
            EventKind::PrefetchFilled => "prefetch_filled",
            EventKind::PrefetchUsed => "prefetch_used",
            EventKind::PrefetchEvictedUnused => "prefetch_evicted_unused",
            EventKind::PrefetchLate => "prefetch_late",
            EventKind::PrefetchFiltered => "prefetch_filtered",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why TLP declined to transfer a pattern on a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransferReject {
    /// The trigger page has no Recent Page Table entry.
    NoEntry,
    /// The page's entry has no address-space neighbours in the RPT.
    NoNeighbour,
    /// No neighbour shared at least `min_common_bits` set bits.
    LowSimilarity,
    /// The best neighbour's pattern adds no blocks beyond those already
    /// touched on the trigger page.
    NothingNew,
}

impl TransferReject {
    /// Stable snake_case label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            TransferReject::NoEntry => "no_entry",
            TransferReject::NoNeighbour => "no_neighbour",
            TransferReject::LowSimilarity => "low_similarity",
            TransferReject::NothingNew => "nothing_new",
        }
    }
}

/// Which issuer the coordinator selected for a demand-miss trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArbitrationWinner {
    /// SLP issues (it holds a pattern for the page).
    Slp,
    /// TLP issues (SLP has no metadata — the serial fallback).
    Tlp,
    /// Both issue (the parallel-coordinator ablation).
    Both,
    /// Neither issues (issuing disabled for the eligible side).
    None,
}

impl ArbitrationWinner {
    /// Stable snake_case label used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            ArbitrationWinner::Slp => "slp",
            ArbitrationWinner::Tlp => "tlp",
            ArbitrationWinner::Both => "both",
            ArbitrationWinner::None => "none",
        }
    }
}

/// Kind-specific payload of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventData {
    /// A page entered the Filter Table.
    SlpFtAllocate {
        /// Page number.
        page: u64,
    },
    /// A Filter Table entry reached the promotion threshold.
    SlpFtPromote {
        /// Page number.
        page: u64,
        /// The three-offset bitmap carried into the Accumulation Table.
        bits: u16,
    },
    /// An Accumulation Table timeout captured a complete snapshot.
    SlpSnapshotCapture {
        /// Page number.
        page: u64,
        /// The captured footprint bitmap.
        bits: u16,
    },
    /// A capacity eviction spilled a partial snapshot into the PHT.
    SlpAtSpill {
        /// Page number of the victim.
        page: u64,
        /// The partial bitmap spilled.
        bits: u16,
    },
    /// SLP replayed a learned pattern on a trigger.
    SlpIssue {
        /// Trigger page number.
        page: u64,
        /// The learned pattern bitmap.
        pattern: u16,
        /// Blocks actually requested (pattern minus already-observed).
        issued: u16,
    },
    /// A page was allocated a Recent Page Table entry.
    TlpRptAllocate {
        /// Page number of the newcomer.
        page: u64,
        /// Whether a valid entry was evicted to make room.
        evicted: bool,
    },
    /// An issue-phase RPT lookup scanned the page's neighbours.
    TlpLookup {
        /// Trigger page number.
        page: u64,
        /// Ref-flagged neighbours scanned.
        neighbours: u8,
        /// Best shared-set-bit count found (0 when no neighbour). Bounded
        /// by the 16-bit segment bitmaps today; `u16` so wider footprint
        /// bitmaps never silently saturate the score.
        best_similarity: u16,
    },
    /// A neighbour's pattern was transferred.
    TlpTransferAccept {
        /// Trigger page number.
        page: u64,
        /// The donating neighbour's page number.
        donor: u64,
        /// Shared set bits between trigger and donor bitmaps. Bounded by
        /// the 16-bit segment bitmaps today; `u16` so wider footprint
        /// bitmaps never silently saturate the score.
        similarity: u16,
        /// Blocks requested on the trigger page.
        issued: u16,
    },
    /// No pattern was transferred.
    TlpTransferReject {
        /// Trigger page number.
        page: u64,
        /// Why the transfer was declined.
        reason: TransferReject,
    },
    /// The coordinator selected an issuer for a demand-miss trigger.
    Arbitration {
        /// Trigger page number.
        page: u64,
        /// The selected issuer.
        winner: ArbitrationWinner,
        /// Whether SLP held a pattern for the page (the selection input).
        slp_has_pattern: bool,
    },
    /// A prefetch lifecycle step, tagged with the originating
    /// sub-prefetcher.
    Lifecycle {
        /// Which lifecycle step (one of the `Prefetch*` kinds).
        kind: EventKind,
        /// The originating (sub-)prefetcher.
        origin: PrefetchOrigin,
        /// Block-aligned physical address of the prefetched line.
        addr: u64,
    },
}

impl EventData {
    /// The [`EventKind`] this payload belongs to.
    pub const fn kind(&self) -> EventKind {
        match self {
            EventData::SlpFtAllocate { .. } => EventKind::SlpFtAllocate,
            EventData::SlpFtPromote { .. } => EventKind::SlpFtPromote,
            EventData::SlpSnapshotCapture { .. } => EventKind::SlpSnapshotCapture,
            EventData::SlpAtSpill { .. } => EventKind::SlpAtSpill,
            EventData::SlpIssue { .. } => EventKind::SlpIssue,
            EventData::TlpRptAllocate { .. } => EventKind::TlpRptAllocate,
            EventData::TlpLookup { .. } => EventKind::TlpLookup,
            EventData::TlpTransferAccept { .. } => EventKind::TlpTransferAccept,
            EventData::TlpTransferReject { .. } => EventKind::TlpTransferReject,
            EventData::Arbitration { winner, .. } => match winner {
                ArbitrationWinner::Slp => EventKind::ArbitrationSlp,
                ArbitrationWinner::Tlp => EventKind::ArbitrationTlp,
                ArbitrationWinner::Both => EventKind::ArbitrationBoth,
                ArbitrationWinner::None => EventKind::ArbitrationNone,
            },
            EventData::Lifecycle { kind, .. } => *kind,
        }
    }
}

/// One fully materialised telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Event {
    /// Cycle of the demand access that produced the event.
    pub cycle: Cycle,
    /// DRAM channel / page segment the event belongs to.
    pub channel: u8,
    /// Kind-specific payload.
    pub data: EventData,
}

impl Event {
    /// The event's kind.
    pub const fn kind(&self) -> EventKind {
        self.data.kind()
    }

    /// Appends this event as one JSON line (stable key order, no trailing
    /// newline) — the format `telemetry_export` emits.
    pub fn write_jsonl(&self, seq: u64, out: &mut String) {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{seq},\"cycle\":{},\"ch\":{},\"kind\":\"{}\"",
            self.cycle.as_u64(),
            self.channel,
            self.kind().label()
        );
        match self.data {
            EventData::SlpFtAllocate { page } => {
                let _ = write!(out, ",\"page\":{page}");
            }
            EventData::SlpFtPromote { page, bits }
            | EventData::SlpSnapshotCapture { page, bits }
            | EventData::SlpAtSpill { page, bits } => {
                let _ = write!(out, ",\"page\":{page},\"bits\":{bits}");
            }
            EventData::SlpIssue { page, pattern, issued } => {
                let _ = write!(out, ",\"page\":{page},\"pattern\":{pattern},\"issued\":{issued}");
            }
            EventData::TlpRptAllocate { page, evicted } => {
                let _ = write!(out, ",\"page\":{page},\"evicted\":{evicted}");
            }
            EventData::TlpLookup { page, neighbours, best_similarity } => {
                let _ = write!(
                    out,
                    ",\"page\":{page},\"neighbours\":{neighbours},\"best_similarity\":{best_similarity}"
                );
            }
            EventData::TlpTransferAccept { page, donor, similarity, issued } => {
                let _ = write!(
                    out,
                    ",\"page\":{page},\"donor\":{donor},\"similarity\":{similarity},\"issued\":{issued}"
                );
            }
            EventData::TlpTransferReject { page, reason } => {
                let _ = write!(out, ",\"page\":{page},\"reason\":\"{}\"", reason.label());
            }
            EventData::Arbitration { page, winner, slp_has_pattern } => {
                let _ = write!(
                    out,
                    ",\"page\":{page},\"winner\":\"{}\",\"slp_has_pattern\":{slp_has_pattern}",
                    winner.label()
                );
            }
            EventData::Lifecycle { origin, addr, .. } => {
                let _ = write!(out, ",\"origin\":\"{}\",\"addr\":{addr}", origin_label(origin));
            }
        }
        out.push('}');
    }
}

/// Stable snake_case label for a prefetch origin (exports and reports).
pub(crate) const fn origin_label(origin: PrefetchOrigin) -> &'static str {
    match origin {
        PrefetchOrigin::Slp => "slp",
        PrefetchOrigin::Tlp => "tlp",
        PrefetchOrigin::Baseline => "baseline",
    }
}

/// Counter-array slot for a prefetch origin.
pub(crate) const fn origin_index(origin: PrefetchOrigin) -> usize {
    match origin {
        PrefetchOrigin::Slp => 0,
        PrefetchOrigin::Tlp => 1,
        PrefetchOrigin::Baseline => 2,
    }
}

/// Number of distinct prefetch origins.
pub(crate) const ORIGINS: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_matches_all_order() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind:?}");
        }
    }

    #[test]
    fn labels_are_unique_and_snake_case() {
        let labels: std::collections::BTreeSet<_> =
            EventKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), EventKind::COUNT);
        for l in labels {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{l}");
        }
    }

    #[test]
    fn data_kind_mapping_covers_arbitration_winners() {
        for (winner, kind) in [
            (ArbitrationWinner::Slp, EventKind::ArbitrationSlp),
            (ArbitrationWinner::Tlp, EventKind::ArbitrationTlp),
            (ArbitrationWinner::Both, EventKind::ArbitrationBoth),
            (ArbitrationWinner::None, EventKind::ArbitrationNone),
        ] {
            let data = EventData::Arbitration { page: 1, winner, slp_has_pattern: false };
            assert_eq!(data.kind(), kind);
        }
    }

    #[test]
    fn jsonl_is_stable_and_valid_shaped() {
        let ev = Event {
            cycle: Cycle::new(42),
            channel: 2,
            data: EventData::TlpTransferAccept { page: 7, donor: 6, similarity: 4, issued: 3 },
        };
        let mut s = String::new();
        ev.write_jsonl(9, &mut s);
        assert_eq!(
            s,
            "{\"type\":\"event\",\"seq\":9,\"cycle\":42,\"ch\":2,\"kind\":\"tlp_transfer_accept\",\
             \"page\":7,\"donor\":6,\"similarity\":4,\"issued\":3}"
        );
    }

    #[test]
    fn lifecycle_jsonl_tags_origin() {
        let ev = Event {
            cycle: Cycle::new(1),
            channel: 0,
            data: EventData::Lifecycle {
                kind: EventKind::PrefetchUsed,
                origin: PrefetchOrigin::Tlp,
                addr: 0x4040,
            },
        };
        let mut s = String::new();
        ev.write_jsonl(0, &mut s);
        assert!(s.contains("\"kind\":\"prefetch_used\""), "{s}");
        assert!(s.contains("\"origin\":\"tlp\""), "{s}");
    }
}
