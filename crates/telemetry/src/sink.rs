//! Sinks that consume events, and the [`Telemetry`] handle components own.

use std::collections::VecDeque;

use planaria_common::{Cycle, DeviceId, PrefetchOrigin};

use crate::event::{origin_index, Event, EventData, EventKind, ORIGINS};
use crate::report::TelemetryReport;

/// Per-device prefetch-lifecycle counters, one column per [`DeviceId`]
/// (indexed by [`DeviceId::index`]).
///
/// Each lifecycle step is attributed to a device: *issued*, *filtered* and
/// *late* to the device whose demand access triggered the decision, *used*
/// to the device whose demand hit consumed the line, *filled* and
/// *evicted-unused* to the device that triggered the original prefetch.
/// Every bump is paired with a per-origin bump in [`CountingSink`], so
/// summing a row over devices reproduces the per-origin total summed over
/// origins (the conservation invariant `tests/closed_loop.rs` asserts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLifecycle {
    /// Prefetches issued, by trigger device.
    pub issued: [u64; DeviceId::COUNT],
    /// Speculative fills that landed, by trigger device.
    pub filled: [u64; DeviceId::COUNT],
    /// First demand uses of prefetched lines, by consuming device.
    pub used: [u64; DeviceId::COUNT],
    /// Prefetched lines evicted unused, by trigger device.
    pub evicted_unused: [u64; DeviceId::COUNT],
    /// Demand misses that merged into an in-flight prefetch, by missing
    /// device.
    pub late: [u64; DeviceId::COUNT],
}

impl DeviceLifecycle {
    /// All counters at zero.
    pub const fn new() -> Self {
        DeviceLifecycle {
            issued: [0; DeviceId::COUNT],
            filled: [0; DeviceId::COUNT],
            used: [0; DeviceId::COUNT],
            evicted_unused: [0; DeviceId::COUNT],
            late: [0; DeviceId::COUNT],
        }
    }

    fn bump(&mut self, kind: EventKind, device: DeviceId) {
        let i = device.index();
        match kind {
            EventKind::PrefetchIssued => self.issued[i] += 1,
            EventKind::PrefetchFilled => self.filled[i] += 1,
            EventKind::PrefetchUsed => self.used[i] += 1,
            EventKind::PrefetchEvictedUnused => self.evicted_unused[i] += 1,
            EventKind::PrefetchLate => self.late[i] += 1,
            _ => {}
        }
    }

    fn absorb(&mut self, other: &DeviceLifecycle) {
        let pairs = [
            (&mut self.issued, &other.issued),
            (&mut self.filled, &other.filled),
            (&mut self.used, &other.used),
            (&mut self.evicted_unused, &other.evicted_unused),
            (&mut self.late, &other.late),
        ];
        for (a, b) in pairs {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }
}

impl Default for DeviceLifecycle {
    fn default() -> Self {
        DeviceLifecycle::new()
    }
}

/// Consumer of telemetry, fed per decision point.
///
/// [`CountingSink`] implements only [`TraceSink::count`]; [`RingBufferSink`]
/// implements only [`TraceSink::record`]. Custom sinks (e.g. a streaming
/// JSONL writer) implement whichever side they need and can be fed from a
/// captured buffer via [`RingBufferSink::replay`].
pub trait TraceSink {
    /// A decision point of `kind` fired (no payload materialised).
    fn count(&mut self, _kind: EventKind) {}

    /// A fully materialised event fired.
    fn record(&mut self, _event: &Event) {}
}

/// Always-on aggregation sink: per-[`EventKind`] counters plus per-origin
/// prefetch-lifecycle counters. Costs a few integer increments per decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingSink {
    /// Fire count per [`EventKind`], indexed by [`EventKind::index`].
    pub kinds: [u64; EventKind::COUNT],
    /// Prefetches issued, per origin (SLP / TLP / baseline).
    pub issued: [u64; ORIGINS],
    /// Speculative fills that landed in the cache, per origin.
    pub filled: [u64; ORIGINS],
    /// First demand uses of a prefetched line, per origin.
    pub used: [u64; ORIGINS],
    /// Prefetched lines evicted without any demand use, per origin.
    pub evicted_unused: [u64; ORIGINS],
    /// Demand misses that merged into an in-flight prefetch, per origin.
    pub late: [u64; ORIGINS],
    /// The same five lifecycle counters broken down per device instead of
    /// per origin (fed by [`Telemetry::lifecycle_for`]).
    pub per_device: DeviceLifecycle,
}

impl CountingSink {
    /// A sink with all counters at zero.
    pub const fn new() -> Self {
        CountingSink {
            kinds: [0; EventKind::COUNT],
            issued: [0; ORIGINS],
            filled: [0; ORIGINS],
            used: [0; ORIGINS],
            evicted_unused: [0; ORIGINS],
            late: [0; ORIGINS],
            per_device: DeviceLifecycle::new(),
        }
    }

    /// Fire count of `kind`.
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.kinds[kind.index()]
    }

    fn bump_lifecycle(&mut self, kind: EventKind, origin: PrefetchOrigin) {
        let i = origin_index(origin);
        match kind {
            EventKind::PrefetchIssued => self.issued[i] += 1,
            EventKind::PrefetchFilled => self.filled[i] += 1,
            EventKind::PrefetchUsed => self.used[i] += 1,
            EventKind::PrefetchEvictedUnused => self.evicted_unused[i] += 1,
            EventKind::PrefetchLate => self.late[i] += 1,
            _ => {}
        }
    }

    /// Adds every counter of `other` into `self` (deterministic merge).
    pub fn absorb(&mut self, other: &CountingSink) {
        for (a, b) in self.kinds.iter_mut().zip(other.kinds.iter()) {
            *a += b;
        }
        for (a, b) in self.issued.iter_mut().zip(other.issued.iter()) {
            *a += b;
        }
        for (a, b) in self.filled.iter_mut().zip(other.filled.iter()) {
            *a += b;
        }
        for (a, b) in self.used.iter_mut().zip(other.used.iter()) {
            *a += b;
        }
        for (a, b) in self.evicted_unused.iter_mut().zip(other.evicted_unused.iter()) {
            *a += b;
        }
        for (a, b) in self.late.iter_mut().zip(other.late.iter()) {
            *a += b;
        }
        self.per_device.absorb(&other.per_device);
    }
}

impl Default for CountingSink {
    fn default() -> Self {
        CountingSink::new()
    }
}

impl TraceSink for CountingSink {
    fn count(&mut self, kind: EventKind) {
        self.kinds[kind.index()] += 1;
    }

    fn record(&mut self, event: &Event) {
        self.count(event.kind());
        if let EventData::Lifecycle { kind, origin, .. } = event.data {
            self.bump_lifecycle(kind, origin);
        }
    }
}

/// Bounded event buffer: keeps the most recent `capacity` events, counting
/// (not silently losing) anything older it had to drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingBufferSink {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Events evicted because the buffer was full.
    pub dropped: u64,
}

impl RingBufferSink {
    /// An empty buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink { buf: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Feeds every buffered event (oldest first) into another sink via
    /// [`TraceSink::record`].
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for ev in &self.buf {
            sink.record(ev);
        }
    }

    /// Moves the buffered events out, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }
}

/// Telemetry settings, embeddable in a simulation config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TelemetryConfig {
    /// Capture full [`Event`] records into a ring buffer (counting is
    /// always on regardless).
    pub events: bool,
    /// Ring-buffer capacity in events, per instrumented component.
    pub capacity: usize,
}

impl TelemetryConfig {
    /// Default ring capacity when event capture is on.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Counting only — the zero-configuration default.
    pub const fn counting() -> Self {
        TelemetryConfig { events: false, capacity: Self::DEFAULT_CAPACITY }
    }

    /// Counting plus full event capture at the default ring capacity.
    pub const fn events() -> Self {
        TelemetryConfig { events: true, capacity: Self::DEFAULT_CAPACITY }
    }

    /// Counting plus full event capture with an explicit ring capacity.
    pub const fn events_with_capacity(capacity: usize) -> Self {
        TelemetryConfig { events: true, capacity }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::counting()
    }
}

/// The handle instrumented components own: an always-on [`CountingSink`]
/// plus an optional [`RingBufferSink`] for full event capture.
///
/// The two-tier design keeps the disabled path nearly free: [`Telemetry::emit`]
/// takes the event payload as a closure that is only invoked when event
/// capture is enabled, so the counting-only configuration pays one array
/// increment and one branch per decision point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Always-on aggregate counters.
    pub counting: CountingSink,
    events: Option<RingBufferSink>,
}

impl Telemetry {
    /// Counting-only telemetry (the default for every component).
    pub const fn counting_only() -> Self {
        Telemetry { counting: CountingSink::new(), events: None }
    }

    /// Telemetry configured per `cfg` (counting always on; ring buffer
    /// only when `cfg.events`).
    pub fn from_config(cfg: &TelemetryConfig) -> Self {
        Telemetry {
            counting: CountingSink::new(),
            events: cfg.events.then(|| RingBufferSink::new(cfg.capacity)),
        }
    }

    /// Whether full event capture is on (drives whether [`Telemetry::emit`]
    /// materialises payloads).
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Counts a decision point without materialising a payload.
    #[inline]
    pub fn count(&mut self, kind: EventKind) {
        self.counting.count(kind);
    }

    /// Counts `kind` and, only if event capture is on, materialises the
    /// payload via `data` and records the full event.
    #[inline]
    pub fn emit(
        &mut self,
        kind: EventKind,
        cycle: Cycle,
        channel: u8,
        data: impl FnOnce() -> EventData,
    ) {
        self.counting.count(kind);
        if let Some(ring) = &mut self.events {
            let event = Event { cycle, channel, data: data() };
            debug_assert_eq!(event.kind(), kind);
            ring.record(&event);
        }
    }

    /// Records a prefetch-lifecycle step attributed to the default device:
    /// bumps the per-origin counter and, when event capture is on, a
    /// [`EventData::Lifecycle`] event. Prefer [`Telemetry::lifecycle_for`]
    /// when the responsible device is known.
    #[inline]
    pub fn lifecycle(&mut self, kind: EventKind, origin: PrefetchOrigin, addr: u64, cycle: Cycle) {
        self.lifecycle_for(kind, origin, DeviceId::default(), addr, cycle);
    }

    /// Records a prefetch-lifecycle step attributed to `device`: bumps the
    /// per-origin *and* per-device counters and, when event capture is on,
    /// a [`EventData::Lifecycle`] event.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_common::{Cycle, DeviceId, PrefetchOrigin};
    /// use planaria_telemetry::{EventKind, Telemetry};
    ///
    /// let mut tel = Telemetry::counting_only();
    /// tel.lifecycle_for(
    ///     EventKind::PrefetchIssued,
    ///     PrefetchOrigin::Slp,
    ///     DeviceId::Gpu,
    ///     0x4000,
    ///     Cycle::new(7),
    /// );
    /// assert_eq!(tel.counting.per_device.issued[DeviceId::Gpu.index()], 1);
    /// assert_eq!(tel.counting.issued.iter().sum::<u64>(), 1);
    /// ```
    #[inline]
    pub fn lifecycle_for(
        &mut self,
        kind: EventKind,
        origin: PrefetchOrigin,
        device: DeviceId,
        addr: u64,
        cycle: Cycle,
    ) {
        self.counting.count(kind);
        self.counting.bump_lifecycle(kind, origin);
        self.counting.per_device.bump(kind, device);
        if let Some(ring) = &mut self.events {
            let channel = planaria_common::PhysAddr::new(addr).channel().as_usize() as u8;
            ring.record(&Event {
                cycle,
                channel,
                data: EventData::Lifecycle { kind, origin, addr },
            });
        }
    }

    /// Read access to the captured event buffer, if event capture is on.
    pub fn ring(&self) -> Option<&RingBufferSink> {
        self.events.as_ref()
    }

    /// Condenses the handle into a [`TelemetryReport`], draining any
    /// captured events.
    pub fn report(&mut self) -> TelemetryReport {
        let (events, dropped) = match &mut self.events {
            Some(ring) => {
                let dropped = ring.dropped;
                (ring.drain(), dropped)
            }
            None => (Vec::new(), 0),
        };
        TelemetryReport { counters: self.counting.clone(), events, events_dropped: dropped }
    }

    /// Resets counters and empties the event buffer, keeping the
    /// configuration (used at the warmup boundary).
    pub fn reset(&mut self) {
        self.counting = CountingSink::new();
        if let Some(ring) = &mut self.events {
            let capacity = ring.capacity;
            *ring = RingBufferSink::new(capacity);
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::counting_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_only_skips_payload_closure() {
        let mut tel = Telemetry::counting_only();
        let mut built = false;
        tel.emit(EventKind::SlpIssue, Cycle::new(1), 0, || {
            built = true;
            EventData::SlpIssue { page: 1, pattern: 3, issued: 2 }
        });
        assert!(!built, "payload must not be materialised when events are off");
        assert_eq!(tel.counting.count_of(EventKind::SlpIssue), 1);
        assert!(tel.report().events.is_empty());
    }

    #[test]
    fn event_capture_materialises_payloads() {
        let mut tel = Telemetry::from_config(&TelemetryConfig::events());
        tel.emit(EventKind::TlpTransferReject, Cycle::new(5), 1, || EventData::TlpTransferReject {
            page: 9,
            reason: crate::TransferReject::NoEntry,
        });
        let report = tel.report();
        assert_eq!(report.count(EventKind::TlpTransferReject), 1);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].channel, 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut ring = RingBufferSink::new(2);
        for i in 0..5u64 {
            ring.record(&Event {
                cycle: Cycle::new(i),
                channel: 0,
                data: EventData::SlpFtAllocate { page: i },
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped, 3);
        let kept: Vec<u64> = ring.events().map(|e| e.cycle.as_u64()).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn lifecycle_bumps_origin_counters() {
        let mut tel = Telemetry::counting_only();
        tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Slp, 0x40, Cycle::new(1));
        tel.lifecycle(EventKind::PrefetchIssued, PrefetchOrigin::Tlp, 0x80, Cycle::new(2));
        tel.lifecycle(EventKind::PrefetchUsed, PrefetchOrigin::Slp, 0x40, Cycle::new(3));
        let report = tel.report();
        assert_eq!(report.issued(PrefetchOrigin::Slp), 1);
        assert_eq!(report.issued(PrefetchOrigin::Tlp), 1);
        assert_eq!(report.used(PrefetchOrigin::Slp), 1);
        assert_eq!(report.used(PrefetchOrigin::Tlp), 0);
    }

    #[test]
    fn replay_feeds_counts_and_records() {
        let mut ring = RingBufferSink::new(8);
        ring.record(&Event {
            cycle: Cycle::new(1),
            channel: 0,
            data: EventData::SlpFtAllocate { page: 1 },
        });
        let mut counts = CountingSink::new();
        ring.replay(&mut counts);
        assert_eq!(counts.count_of(EventKind::SlpFtAllocate), 1);
    }

    #[test]
    fn reset_keeps_configuration() {
        let mut tel = Telemetry::from_config(&TelemetryConfig::events_with_capacity(4));
        tel.count(EventKind::TlpLookup);
        tel.reset();
        assert!(tel.events_enabled());
        assert_eq!(tel.counting.count_of(EventKind::TlpLookup), 0);
    }
}
