//! Baseline prefetchers the paper compares Planaria against.
//!
//! The paper evaluates two state-of-the-art delta-based prefetchers on the
//! system cache — both are PC-free and therefore *can* run on the memory
//! side, which is why they are the natural competition:
//!
//! * [`Bop`] — Best-Offset Prefetching (Michaud, HPCA 2016): learns one
//!   global best block offset through scored test rounds against a recent-
//!   requests table.
//! * [`Spp`] — Signature Path Prefetcher (Kim et al., MICRO 2016): hashes
//!   each page's recent delta history into a signature, learns
//!   per-signature delta distributions, and walks the signature path with
//!   multiplicative confidence for lookahead prefetching.
//!
//! plus two classics for calibration and ablation:
//!
//! * [`NextLine`] — prefetch block X+1 on every miss.
//! * [`StridePf`] — per-page PC-free stride detection.
//!
//! All implement [`planaria_core::Prefetcher`], so every harness and the
//! memory-system simulator treat them interchangeably with Planaria.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bop;
mod simple;
mod sms;
mod spp;

pub use bop::{Bop, BopConfig};
pub use simple::{NextLine, StrideConfig, StridePf};
pub use sms::{Sms, SmsConfig};
pub use spp::{Spp, SppConfig};
