//! Best-Offset Prefetching (Michaud, HPCA 2016).
//!
//! BOP learns a single *best offset* D and, while prefetching is on, issues
//! X + D for every triggering access X. Learning runs in rounds: each
//! access tests one candidate offset d (round-robin over the offset list)
//! by probing a Recent Requests (RR) table for X − d; a hit means "had we
//! been prefetching with offset d, X would have been covered in time" and
//! increments d's score. A round ends when an offset saturates at
//! `score_max` or every offset has been tested `round_max` times; the
//! winner becomes the active offset, and prefetch turns off entirely when
//! the winning score is below `bad_score` — BOP's built-in throttle.
//!
//! BOP is PC-free, which is why the paper can evaluate it at the system
//! cache. Its weakness there is structural: the SC's intra-page block
//! order is shuffled (Observation 1), so no single delta is consistently
//! right, and the offsets it does learn generate traffic with mediocre
//! accuracy — visible in the Figure 8/10 reproduction.

use std::collections::VecDeque;

#[cfg(test)]
use planaria_common::Cycle;
use planaria_common::{MemAccess, PhysAddr, PrefetchOrigin, PrefetchRequest, BLOCK_SIZE};
use planaria_core::Prefetcher;

/// The HPCA'16 offset list: every integer in 1..=256 whose prime factors
/// are all ≤ 5 (52 offsets), in block units.
pub const DEFAULT_OFFSETS: [i64; 52] = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
    64, 72, 75, 80, 81, 90, 96, 100, 108, 120, 125, 128, 135, 144, 150, 160, 162, 180, 192, 200,
    216, 225, 240, 243, 250, 256,
];

/// BOP tuning parameters (HPCA'16 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BopConfig {
    /// Candidate offsets in block units.
    pub offsets: Vec<i64>,
    /// RR table entries (direct-mapped).
    pub rr_entries: usize,
    /// RR tag bits.
    pub rr_tag_bits: u64,
    /// Score that ends a round immediately.
    pub score_max: u32,
    /// Tests per offset before a round times out.
    pub round_max: u32,
    /// Minimum winning score to keep prefetch enabled.
    pub bad_score: u32,
    /// Cycles before an observed address becomes visible in the RR table.
    ///
    /// HPCA'16 inserts addresses at *fill completion*, not request time —
    /// that delay is what makes the offset scores timeliness-aware: an
    /// offset whose lead time is shorter than the memory latency never
    /// scores. Modelled here as a fixed fill-latency estimate.
    pub insert_delay: u64,
}

impl Default for BopConfig {
    fn default() -> Self {
        Self {
            offsets: DEFAULT_OFFSETS.to_vec(),
            rr_entries: 256,
            rr_tag_bits: 12,
            score_max: 31,
            round_max: 100,
            bad_score: 20,
            insert_delay: 60,
        }
    }
}

/// The Best-Offset prefetcher.
#[derive(Debug, Clone)]
pub struct Bop {
    cfg: BopConfig,
    /// Direct-mapped RR table of truncated block-address tags.
    rr: Vec<u64>,
    scores: Vec<u32>,
    /// Index of the offset tested by the next learning step.
    test_idx: usize,
    /// Completed test sweeps over the offset list in this round.
    sweeps: u32,
    /// Currently active best offset (None while prefetch is off).
    best: Option<i64>,
    /// Addresses awaiting their (modelled) fill before entering the RR.
    pending: VecDeque<(u64, u64)>,
    accesses: u64,
}

impl Bop {
    /// Creates a BOP instance.
    ///
    /// # Panics
    ///
    /// Panics if the offset list is empty or `rr_entries` is zero.
    pub fn new(cfg: BopConfig) -> Self {
        assert!(!cfg.offsets.is_empty(), "offset list must be non-empty");
        assert!(cfg.rr_entries > 0, "RR table must be non-empty");
        Self {
            rr: vec![u64::MAX; cfg.rr_entries],
            scores: vec![0; cfg.offsets.len()],
            test_idx: 0,
            sweeps: 0,
            best: Some(1), // boot with next-line until the first round ends
            pending: VecDeque::new(),
            accesses: 0,
            cfg,
        }
    }

    /// The currently active offset, if prefetching is on.
    pub fn active_offset(&self) -> Option<i64> {
        self.best
    }

    fn rr_index(&self, block: u64) -> usize {
        // Low bits index, next bits tag — as in the paper's direct-mapped RR.
        (block % self.cfg.rr_entries as u64) as usize
    }

    fn rr_tag(&self, block: u64) -> u64 {
        (block / self.cfg.rr_entries as u64) & ((1 << self.cfg.rr_tag_bits) - 1)
    }

    fn rr_probe(&self, block: u64) -> bool {
        self.rr[self.rr_index(block)] == self.rr_tag(block)
    }

    fn rr_insert(&mut self, block: u64) {
        let idx = self.rr_index(block);
        self.rr[idx] = self.rr_tag(block);
    }

    fn end_round(&mut self) {
        let (best_idx, &best_score) =
            self.scores.iter().enumerate().max_by_key(|(_, &s)| s).expect("non-empty scores");
        self.best = (best_score >= self.cfg.bad_score).then(|| self.cfg.offsets[best_idx]);
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.test_idx = 0;
        self.sweeps = 0;
    }

    /// Moves pending addresses whose fill completed into the RR table.
    fn drain_pending(&mut self, now: u64) {
        while let Some(&(block, ready)) = self.pending.front() {
            if ready > now {
                break;
            }
            self.pending.pop_front();
            self.rr_insert(block);
        }
    }

    fn learn(&mut self, block: u64, now: u64) {
        self.drain_pending(now);
        let d = self.cfg.offsets[self.test_idx];
        if let Some(base) = block.checked_add_signed(-d) {
            if self.rr_probe(base) {
                self.scores[self.test_idx] += 1;
                if self.scores[self.test_idx] >= self.cfg.score_max {
                    self.best = Some(d);
                    self.scores.iter_mut().for_each(|s| *s = 0);
                    self.test_idx = 0;
                    self.sweeps = 0;
                    self.pending.push_back((block, now + self.cfg.insert_delay));
                    return;
                }
            }
        }
        self.test_idx += 1;
        if self.test_idx == self.cfg.offsets.len() {
            self.test_idx = 0;
            self.sweeps += 1;
            if self.sweeps >= self.cfg.round_max {
                self.end_round();
            }
        }
        self.pending.push_back((block, now + self.cfg.insert_delay));
    }
}

impl Default for Bop {
    fn default() -> Self {
        Self::new(BopConfig::default())
    }
}

impl Prefetcher for Bop {
    fn name(&self) -> &str {
        "BOP"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        let block = access.addr.block_number();
        // BOP learns and triggers on misses and on prefetched hits; a
        // trace-driven SC sees the former (the latter approximated by all
        // misses, as in the paper's trace methodology).
        if hit {
            return;
        }
        self.learn(block, access.cycle.as_u64());
        if let Some(d) = self.best {
            if let Some(target) = block.checked_add_signed(d) {
                out.push(PrefetchRequest::new(
                    PhysAddr::new(target * BLOCK_SIZE),
                    PrefetchOrigin::Baseline,
                    access.cycle,
                ));
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // RR tags + per-offset scores + best-offset register + round state.
        self.cfg.rr_entries as u64 * self.cfg.rr_tag_bits + self.cfg.offsets.len() as u64 * 6 + 16
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

/// Replays `blocks` as misses at `gap`-cycle spacing, collecting requests.
#[cfg(test)]
fn run_gap(bop: &mut Bop, blocks: impl IntoIterator<Item = u64>, gap: u64) -> Vec<PrefetchRequest> {
    let mut out = Vec::new();
    for (i, b) in blocks.into_iter().enumerate() {
        let access = MemAccess::read(PhysAddr::new(b * BLOCK_SIZE), Cycle::new(gap * i as u64));
        bop.on_access(&access, false, &mut out);
    }
    out
}

/// Replays `blocks` at a relaxed 100-cycle spacing (beyond the RR fill
/// delay, so even offset 1 is timely).
#[cfg(test)]
fn run(bop: &mut Bop, blocks: impl IntoIterator<Item = u64>) -> Vec<PrefetchRequest> {
    run_gap(bop, blocks, 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_unit_stride() {
        let mut bop = Bop::default();
        // A long sequential stream: offset 1 should saturate.
        run(&mut bop, 0..4000u64);
        assert_eq!(bop.active_offset(), Some(1));
    }

    #[test]
    fn learns_larger_stride() {
        let mut bop = Bop::default();
        run(&mut bop, (0..6000u64).map(|i| i * 4));
        assert_eq!(bop.active_offset(), Some(4));
    }

    #[test]
    fn prefetches_with_active_offset() {
        let mut bop = Bop::default();
        run(&mut bop, 0..4000u64);
        let out = run(&mut bop, [100_000]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].addr.block_number(), 100_001);
        assert_eq!(out[0].origin, PrefetchOrigin::Baseline);
    }

    #[test]
    fn no_requests_on_hits() {
        let mut bop = Bop::default();
        let mut out = Vec::new();
        bop.on_access(&MemAccess::read(PhysAddr::new(0x40), Cycle::new(0)), true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn turns_off_on_random_traffic() {
        // Fast rounds for the test; scale the off-threshold to match.
        let cfg = BopConfig { round_max: 4, bad_score: 2, ..BopConfig::default() };
        let mut bop = Bop::new(cfg);
        // Spread-out pseudo-random blocks: no offset scores.
        let blocks = (0..2000u64).map(|i| (i * 2_654_435_761) % (1 << 30));
        run(&mut bop, blocks);
        assert_eq!(bop.active_offset(), None, "prefetch must switch off");
    }

    #[test]
    fn recovers_after_bad_phase() {
        // Short test rounds cap scores at 4, so scale the off-threshold too.
        let cfg = BopConfig { round_max: 4, bad_score: 2, ..BopConfig::default() };
        let mut bop = Bop::new(cfg);
        run(&mut bop, (0..2000u64).map(|i| (i * 2_654_435_761) % (1 << 30)));
        assert_eq!(bop.active_offset(), None);
        run(&mut bop, 1_000_000..1_010_000u64);
        // On a dense stream every positive offset covers; some offset wins.
        assert!(bop.active_offset().is_some(), "stream phase re-enables prefetch");
    }

    #[test]
    fn tight_streams_force_larger_timely_offsets() {
        // At 10-cycle spacing with a 60-cycle fill delay, offsets below 6
        // can never score: the RR table does not yet contain X - d when X
        // arrives. BOP must settle on a *timely* offset instead.
        let mut bop = Bop::default();
        run_gap(&mut bop, 0..4000u64, 10);
        let d = bop.active_offset().expect("stream keeps prefetch on");
        assert!(d >= 6, "offset {d} would be late at this spacing");
    }

    #[test]
    fn storage_is_small() {
        let bop = Bop::default();
        // BOP's selling point: tiny metadata (well under 1 KB).
        assert!(bop.storage_bits() < 8 * 1024);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_offsets() {
        let _ = Bop::new(BopConfig { offsets: vec![], ..BopConfig::default() });
    }
}
