//! Classic reference prefetchers: next-line and PC-free per-page stride.

use planaria_common::{MemAccess, PhysAddr, PrefetchOrigin, PrefetchRequest, BLOCK_SIZE};
use planaria_core::Prefetcher;

/// Next-line prefetching: on every miss to block X, prefetch X+1.
///
/// The simplest possible hardware prefetcher; it calibrates the harnesses
/// (any streaming workload must benefit) and anchors the traffic axis (it
/// fires on *every* miss).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLine {
    accesses: u64,
}

impl NextLine {
    /// Creates a next-line prefetcher.
    pub const fn new() -> Self {
        Self { accesses: 0 }
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &str {
        "NextLine"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        if hit {
            return;
        }
        let next = access.addr.block_number() + 1;
        out.push(PrefetchRequest::new(
            PhysAddr::new(next * BLOCK_SIZE),
            PrefetchOrigin::Baseline,
            access.cycle,
        ));
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

/// Stride-prefetcher tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrideConfig {
    /// Tracked pages.
    pub entries: usize,
    /// Prefetch degree once a stride is confirmed.
    pub degree: usize,
    /// Confirmations required before issuing.
    pub confidence: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        Self { entries: 256, degree: 2, confidence: 2 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    page: u64,
    last_block: u64,
    stride: i64,
    count: u8,
    valid: bool,
    lru: u64,
}

/// PC-free per-page stride detection (a reference-prediction-table scheme
/// keyed by page number, since no PC exists at the system cache).
#[derive(Debug, Clone)]
pub struct StridePf {
    cfg: StrideConfig,
    table: Vec<StrideEntry>,
    tick: u64,
    accesses: u64,
}

impl StridePf {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `degree` is zero.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.degree > 0, "entries and degree must be positive");
        Self { table: vec![StrideEntry::default(); cfg.entries], tick: 0, accesses: 0, cfg }
    }
}

impl Default for StridePf {
    fn default() -> Self {
        Self::new(StrideConfig::default())
    }
}

impl Prefetcher for StridePf {
    fn name(&self) -> &str {
        "Stride"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        self.tick += 1;
        let page = access.addr.page().as_u64();
        let block = access.addr.block_number();
        let slot = match self.table.iter().position(|e| e.valid && e.page == page) {
            Some(i) => i,
            None => {
                let victim = self.table.iter().position(|e| !e.valid).unwrap_or_else(|| {
                    self.table
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                        .expect("non-empty table")
                });
                self.table[victim] = StrideEntry {
                    page,
                    last_block: block,
                    stride: 0,
                    count: 0,
                    valid: true,
                    lru: self.tick,
                };
                return;
            }
        };
        let e = &mut self.table[slot];
        let stride = block as i64 - e.last_block as i64;
        if stride != 0 && stride == e.stride {
            e.count = e.count.saturating_add(1);
        } else if stride != 0 {
            e.stride = stride;
            e.count = 1;
        }
        e.last_block = block;
        e.lru = self.tick;
        let (count, stride) = (e.count, e.stride);
        if !hit && count >= self.cfg.confidence && stride != 0 {
            for k in 1..=self.cfg.degree as i64 {
                if let Some(target) = block.checked_add_signed(stride * k) {
                    out.push(PrefetchRequest::new(
                        PhysAddr::new(target * BLOCK_SIZE),
                        PrefetchOrigin::Baseline,
                        access.cycle,
                    ));
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // tag + last block + stride + count + valid + lru
        self.cfg.entries as u64 * (36 + 30 + 8 + 2 + 1 + 8)
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::Cycle;

    fn miss(pf: &mut dyn Prefetcher, block: u64, t: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        pf.on_access(
            &MemAccess::read(PhysAddr::new(block * BLOCK_SIZE), Cycle::new(t)),
            false,
            &mut out,
        );
        out
    }

    #[test]
    fn next_line_always_fires_on_miss() {
        let mut nl = NextLine::new();
        let out = miss(&mut nl, 100, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].addr.block_number(), 101);
        let mut out2 = Vec::new();
        nl.on_access(&MemAccess::read(PhysAddr::new(0x40), Cycle::new(1)), true, &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn stride_confirms_then_issues_degree() {
        let mut s = StridePf::default();
        // Page 0, stride 3: blocks 0, 3, 6, 9 ...
        assert!(miss(&mut s, 0, 0).is_empty(), "allocation");
        assert!(miss(&mut s, 3, 10).is_empty(), "first stride observation (count 1)");
        // Second confirmation reaches the confidence threshold and issues.
        let out = miss(&mut s, 6, 20);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].addr.block_number(), 9);
        assert_eq!(out[1].addr.block_number(), 12);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut s = StridePf::default();
        miss(&mut s, 0, 0);
        miss(&mut s, 3, 10);
        miss(&mut s, 6, 20);
        miss(&mut s, 9, 30);
        // Break the stride: first observation of the new stride (count 1).
        assert!(miss(&mut s, 11, 40).is_empty());
        // Second observation confirms and issues on the new stride.
        let out = miss(&mut s, 13, 50);
        assert!(!out.is_empty());
        assert_eq!(out[0].addr.block_number(), 15);
    }

    #[test]
    fn stride_entries_are_per_page() {
        let mut s = StridePf::default();
        // Interleave two pages with different strides; both must learn.
        let p0 = 0u64; // blocks 0,2,4...
        let p1 = 64u64 * 10; // page 10: blocks +1
        for i in 0..4 {
            miss(&mut s, p0 + 2 * i, i * 10);
            miss(&mut s, p1 + i, i * 10 + 5);
        }
        let a = miss(&mut s, p0 + 8, 100);
        let b = miss(&mut s, p1 + 4, 105);
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(a[0].addr.block_number(), p0 + 10);
        assert_eq!(b[0].addr.block_number(), p1 + 5);
    }

    #[test]
    fn zero_stride_never_issues() {
        let mut s = StridePf::default();
        for i in 0..10 {
            let out = miss(&mut s, 5, i * 10);
            assert!(out.is_empty(), "repeated same block must not prefetch");
        }
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(NextLine::new().storage_bits(), 0);
        assert!(StridePf::default().storage_bits() > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stride_rejects_zero_degree() {
        let _ = StridePf::new(StrideConfig { degree: 0, ..StrideConfig::default() });
    }
}
