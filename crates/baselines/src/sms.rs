//! A PC-free adaptation of Spatial Memory Streaming (Somogyi et al.,
//! ISCA 2006) — the classic *spatial* prefetcher family the paper cites as
//! related work.
//!
//! Original SMS keys its spatial patterns by `(PC, trigger offset)`; no PC
//! exists at the system cache, so this adaptation keys by the **trigger
//! offset alone**: the block offset of the first access of a page
//! *generation*. All pages therefore share one global pattern table —
//! exactly the kind of small global history the paper argues misfires at
//! SC granularity (§related work: "making a prediction based on small
//! global history tables shared by all pages would incur many
//! mispredictions"). Having it as a baseline lets the repository measure
//! that argument instead of just citing it.
//!
//! Mechanism:
//!
//! * an **active generation table** accumulates the footprint bitmap of
//!   each recently touched page (ended by idle timeout or eviction);
//! * a finished generation stores its bitmap in the **pattern history
//!   table**, indexed by the generation's trigger offset;
//! * a *new* generation's trigger looks up that table and prefetches the
//!   predicted footprint in the new page.

use std::collections::{HashMap, VecDeque};

use planaria_common::{
    Bitmap64, BlockIndex, Cycle, MemAccess, PageNum, PhysAddr, PrefetchOrigin, PrefetchRequest,
    BLOCKS_PER_PAGE,
};
use planaria_core::Prefetcher;

/// SMS tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SmsConfig {
    /// Active-generation table capacity (pages tracked concurrently).
    pub active_entries: usize,
    /// Idle cycles after which a generation is considered complete.
    pub generation_timeout: u64,
    /// Minimum blocks in a finished generation for it to train the PHT
    /// (single-block generations carry no spatial signal).
    pub min_pattern_blocks: usize,
}

impl Default for SmsConfig {
    fn default() -> Self {
        Self { active_entries: 256, generation_timeout: 2000, min_pattern_blocks: 3 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Generation {
    trigger_offset: u8,
    bitmap: Bitmap64,
    last: Cycle,
}

/// The PC-free SMS prefetcher.
#[derive(Debug, Clone)]
pub struct Sms {
    cfg: SmsConfig,
    active: HashMap<u64, Generation>,
    expiry: VecDeque<(u64, Cycle)>,
    /// Pattern history indexed by trigger offset (0..64).
    pht: [Bitmap64; BLOCKS_PER_PAGE],
    pht_valid: [bool; BLOCKS_PER_PAGE],
    accesses: u64,
}

impl Sms {
    /// Creates an SMS instance.
    ///
    /// # Panics
    ///
    /// Panics if `active_entries` is zero.
    pub fn new(cfg: SmsConfig) -> Self {
        assert!(cfg.active_entries > 0, "active table must be non-empty");
        Self {
            active: HashMap::with_capacity(cfg.active_entries),
            expiry: VecDeque::new(),
            pht: [Bitmap64::EMPTY; BLOCKS_PER_PAGE],
            pht_valid: [false; BLOCKS_PER_PAGE],
            accesses: 0,
            cfg,
        }
    }

    fn train(&mut self, gen: Generation) {
        if gen.bitmap.count() >= self.cfg.min_pattern_blocks {
            self.pht[gen.trigger_offset as usize] = gen.bitmap;
            self.pht_valid[gen.trigger_offset as usize] = true;
        }
    }

    fn sweep(&mut self, now: Cycle) {
        while let Some(&(page, stamped)) = self.expiry.front() {
            if now.since(stamped) < self.cfg.generation_timeout {
                break;
            }
            self.expiry.pop_front();
            if let Some(gen) = self.active.get(&page).copied() {
                if now.since(gen.last) >= self.cfg.generation_timeout {
                    self.active.remove(&page);
                    self.train(gen);
                } else {
                    let last = gen.last;
                    self.expiry.push_back((page, last));
                }
            }
        }
    }

    fn evict_oldest(&mut self) {
        if let Some((&victim, _)) = self.active.iter().min_by_key(|(_, g)| g.last) {
            let gen = self.active.remove(&victim).expect("victim exists");
            self.train(gen);
        }
    }
}

impl Default for Sms {
    fn default() -> Self {
        Self::new(SmsConfig::default())
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &str {
        "SMS"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        let now = access.cycle;
        self.sweep(now);
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().as_usize();
        match self.active.get_mut(&page) {
            Some(gen) => {
                gen.bitmap.set(offset);
                gen.last = now;
            }
            None => {
                // New generation: predict from the global trigger-offset
                // pattern, then start accumulating.
                if self.active.len() >= self.cfg.active_entries {
                    self.evict_oldest();
                }
                self.active.insert(
                    page,
                    Generation {
                        trigger_offset: offset as u8,
                        bitmap: Bitmap64::EMPTY.with(offset),
                        last: now,
                    },
                );
                self.expiry.push_back((page, now));
                if !hit && self.pht_valid[offset] {
                    let predicted = self.pht[offset];
                    let page_num = PageNum::new(page);
                    for b in predicted.iter_set() {
                        if b == offset {
                            continue;
                        }
                        let addr = PhysAddr::from_parts(page_num, BlockIndex::new(b));
                        out.push(PrefetchRequest::new(addr, PrefetchOrigin::Baseline, now));
                    }
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // Active: tag + trigger + bitmap + timestamp; PHT: 64 x 64-bit + valid.
        let active_entry = 36 + 6 + 64 + 32;
        self.cfg.active_entries as u64 * active_entry + BLOCKS_PER_PAGE as u64 * 65
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(page: u64, block: usize, cycle: u64) -> MemAccess {
        MemAccess::read(
            PhysAddr::from_parts(PageNum::new(page), BlockIndex::new(block)),
            Cycle::new(cycle),
        )
    }

    fn run(sms: &mut Sms, page: u64, blocks: &[usize], t0: u64) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            sms.on_access(&access(page, b, t0 + 10 * i as u64), false, &mut out);
        }
        out
    }

    #[test]
    fn learns_trigger_keyed_pattern_and_replays_cross_page() {
        let mut sms = Sms::default();
        // Page 1: generation triggered at offset 5, footprint {5,10,20}.
        run(&mut sms, 1, &[5, 10, 20], 0);
        // Idle past the timeout finishes the generation into the PHT.
        // A *different* page triggering at the same offset gets the pattern.
        let out = run(&mut sms, 9, &[5], 50_000);
        let mut got: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        got.sort();
        assert_eq!(got, vec![10, 20]);
        assert!(out.iter().all(|r| r.addr.page().as_u64() == 9));
    }

    #[test]
    fn different_trigger_offset_misses_pht() {
        let mut sms = Sms::default();
        run(&mut sms, 1, &[5, 10, 20], 0);
        let out = run(&mut sms, 9, &[6], 50_000);
        assert!(out.is_empty(), "offset 6 never trained");
    }

    #[test]
    fn global_table_cross_trains_unrelated_pages() {
        // The structural weakness the paper points at: two unrelated pages
        // with the same trigger offset clobber each other's pattern.
        let mut sms = Sms::default();
        run(&mut sms, 1, &[5, 10, 20], 0);
        run(&mut sms, 2, &[5, 30, 40], 50_000); // same trigger, other pattern
        let out = run(&mut sms, 9, &[5], 100_000);
        let got: std::collections::BTreeSet<usize> =
            out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        // Page 2's generation overwrote page 1's: the prediction follows
        // the most recent generation, right or wrong.
        assert!(got.contains(&30) && got.contains(&40), "{got:?}");
        assert!(!got.contains(&10), "{got:?}");
    }

    #[test]
    fn sparse_generations_do_not_train() {
        let mut sms = Sms::default();
        run(&mut sms, 1, &[5, 10], 0); // below min_pattern_blocks
        let out = run(&mut sms, 9, &[5], 50_000);
        assert!(out.is_empty());
    }

    #[test]
    fn no_issue_on_hits() {
        let mut sms = Sms::default();
        run(&mut sms, 1, &[5, 10, 20], 0);
        let mut out = Vec::new();
        sms.on_access(&access(9, 5, 50_000), true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_eviction_still_trains() {
        let mut sms = Sms::new(SmsConfig { active_entries: 2, ..SmsConfig::default() });
        run(&mut sms, 1, &[5, 10, 20], 0);
        run(&mut sms, 2, &[8, 9], 100);
        // Page 3 evicts page 1 (oldest), whose generation trains the PHT.
        run(&mut sms, 3, &[1], 200);
        let out = run(&mut sms, 9, &[5], 300);
        assert!(!out.is_empty(), "evicted generation must have trained");
    }

    #[test]
    fn storage_is_small() {
        let sms = Sms::default();
        assert!(sms.storage_bits() < 8 * 8 * 1024, "SMS metadata is a few KB");
    }
}
