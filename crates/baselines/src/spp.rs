//! Signature Path Prefetcher (Kim, Pugsley, Gratz, Reddy, Wilkerson,
//! Chishti — MICRO 2016), PC-free as in the original.
//!
//! SPP compresses each page's recent *delta history* into a 12-bit
//! signature, learns a per-signature delta distribution in a pattern table,
//! and on each trigger walks the signature path speculatively: at every
//! step it multiplies the path confidence by the chosen delta's confidence
//! and keeps prefetching deeper until the product drops below a threshold.
//!
//! On the system cache the scheme inherits the same structural problem as
//! BOP: the intra-page order of footprint blocks is shuffled, so delta
//! histories rarely repeat and the signatures it builds splinter across
//! the pattern table. It still beats BOP there (it adapts per page), which
//! matches the paper's ordering of the two baselines.

use planaria_common::{
    MemAccess, PageNum, PhysAddr, PrefetchOrigin, PrefetchRequest, BLOCKS_PER_PAGE,
};
use planaria_core::Prefetcher;
use planaria_hash::{map_with_capacity, FastHashMap};

/// Deltas per pattern-table entry.
const PT_WAYS: usize = 4;

/// SPP tuning parameters (MICRO'16 defaults scaled to one SC).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SppConfig {
    /// Signature-table entries (tracked pages).
    pub st_entries: usize,
    /// Pattern-table entries (signatures).
    pub pt_entries: usize,
    /// Signature width in bits.
    pub signature_bits: u32,
    /// Minimum per-step confidence to follow a delta.
    pub confidence_threshold: f64,
    /// Path confidence below which the lookahead stops.
    pub prefetch_threshold: f64,
    /// Maximum lookahead depth.
    pub max_depth: usize,
}

impl Default for SppConfig {
    fn default() -> Self {
        Self {
            st_entries: 256,
            pt_entries: 512,
            signature_bits: 12,
            confidence_threshold: 0.15,
            prefetch_threshold: 0.10,
            max_depth: 8,
        }
    }
}

/// Signature-table payload; the page tag (and validity) lives in the
/// dense `Spp::st_tags` array alongside.
#[derive(Debug, Clone, Copy, Default)]
struct StEntry {
    last_offset: u8,
    signature: u16,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtDelta {
    delta: i8,
    count: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtEntry {
    c_sig: u16,
    deltas: [PtDelta; PT_WAYS],
}

/// The Signature Path Prefetcher.
///
/// The signature-table lookup runs on every access, so it is served by a
/// hash index (`page → slot`) rather than an associative scan; the dense
/// `st` array keeps the fixed-capacity table the storage model accounts
/// for.
#[derive(Debug, Clone)]
pub struct Spp {
    cfg: SppConfig,
    /// `page → slot` index mirroring `st` (pages are unique per table).
    st_index: FastHashMap<u64, u32>,
    /// Page of each ST slot (for index maintenance on eviction).
    st_pages: Vec<u64>,
    st: Vec<StEntry>,
    /// ST slots handed out so far; slots are never freed, so the first
    /// `st_filled` entries are exactly the valid ones.
    st_filled: usize,
    pt: Vec<PtEntry>,
    tick: u64,
    accesses: u64,
}

impl Spp {
    /// Creates an SPP instance.
    ///
    /// # Panics
    ///
    /// Panics if a table size is zero.
    pub fn new(cfg: SppConfig) -> Self {
        assert!(cfg.st_entries > 0 && cfg.pt_entries > 0, "tables must be non-empty");
        Self {
            st_index: map_with_capacity(cfg.st_entries),
            st_pages: vec![0; cfg.st_entries],
            st_filled: 0,
            st: vec![StEntry::default(); cfg.st_entries],
            pt: vec![PtEntry::default(); cfg.pt_entries],
            tick: 0,
            accesses: 0,
            cfg,
        }
    }

    fn sig_mask(&self) -> u16 {
        ((1u32 << self.cfg.signature_bits) - 1) as u16
    }

    fn advance_sig(&self, sig: u16, delta: i8) -> u16 {
        ((sig << 3) ^ (delta as u16 & 0x3F)) & self.sig_mask()
    }

    fn pt_index(&self, sig: u16) -> usize {
        sig as usize % self.cfg.pt_entries
    }

    fn pt_update(&mut self, sig: u16, delta: i8) {
        let idx = self.pt_index(sig);
        let e = &mut self.pt[idx];
        // Saturate and halve: classic SPP counter management.
        if e.c_sig == u16::MAX {
            e.c_sig /= 2;
            for d in &mut e.deltas {
                d.count /= 2;
            }
        }
        e.c_sig += 1;
        if let Some(d) = e.deltas.iter_mut().find(|d| d.count > 0 && d.delta == delta) {
            d.count += 1;
            return;
        }
        // Allocate the way with the smallest count.
        let way = e
            .deltas
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.count)
            .map(|(i, _)| i)
            .expect("PT_WAYS > 0");
        e.deltas[way] = PtDelta { delta, count: 1 };
    }

    fn st_lookup(&mut self, page: u64) -> Option<usize> {
        self.st_index.get(&page).map(|&i| i as usize)
    }

    fn st_allocate(&mut self, page: u64, offset: u8) {
        let victim = if self.st_filled < self.st.len() {
            let v = self.st_filled;
            self.st_filled += 1;
            v
        } else {
            let v = self
                .st
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty ST");
            self.st_index.remove(&self.st_pages[v]);
            v
        };
        self.st_index.insert(page, victim as u32);
        self.st_pages[victim] = page;
        self.st[victim] = StEntry { last_offset: offset, signature: 0, lru: self.tick };
    }

    /// Lookahead walk from the page's current state, pushing prefetches.
    fn issue(
        &mut self,
        page: u64,
        offset: u8,
        sig: u16,
        triggered_at: planaria_common::Cycle,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let mut sig = sig;
        let mut cur = offset as i64;
        let mut confidence = 1.0f64;
        for _ in 0..self.cfg.max_depth {
            // Breadth: issue every delta of this signature that qualifies
            // (MICRO'16 prefetches all confident deltas per level), while
            // tracking the best delta for the depth step in the same pass
            // (ties resolve to the later way).
            let e = self.pt[self.pt_index(sig)];
            let mut best: Option<(i8, f64)> = None;
            for d in e.deltas.iter().filter(|d| e.c_sig > 0 && d.count > 0) {
                let conf = d.count as f64 / e.c_sig as f64;
                if best.is_none_or(|(_, c)| conf >= c) {
                    best = Some((d.delta, conf));
                }
                if conf < self.cfg.confidence_threshold
                    || confidence * conf < self.cfg.prefetch_threshold
                {
                    continue;
                }
                let target = cur + d.delta as i64;
                if !(0..BLOCKS_PER_PAGE as i64).contains(&target) {
                    continue;
                }
                let addr = PhysAddr::from_parts(
                    PageNum::new(page),
                    planaria_common::BlockIndex::new(target as usize),
                );
                out.push(PrefetchRequest::new(addr, PrefetchOrigin::Baseline, triggered_at));
            }
            // ...then depth: walk the lookahead path along the best delta.
            let Some((delta, conf)) = best else { break };
            if conf < self.cfg.confidence_threshold {
                break;
            }
            confidence *= conf;
            if confidence < self.cfg.prefetch_threshold {
                break;
            }
            cur += delta as i64;
            // SPP's base scheme stays within the page (cross-page needs the
            // global history register; see the paper's §related-work note
            // that such global state misfires at SC granularity).
            if !(0..BLOCKS_PER_PAGE as i64).contains(&cur) {
                break;
            }
            sig = self.advance_sig(sig, delta);
        }
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::new(SppConfig::default())
    }
}

impl Prefetcher for Spp {
    fn name(&self) -> &str {
        "SPP"
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<PrefetchRequest>) {
        self.accesses += 1;
        self.tick += 1;
        let page = access.addr.page().as_u64();
        let offset = access.addr.block_index().as_usize() as u8;
        match self.st_lookup(page) {
            Some(i) => {
                let (old_sig, last) = (self.st[i].signature, self.st[i].last_offset);
                let delta = offset as i8 - last as i8;
                if delta != 0 {
                    self.pt_update(old_sig, delta);
                    let new_sig = self.advance_sig(old_sig, delta);
                    let e = &mut self.st[i];
                    e.signature = new_sig;
                    e.last_offset = offset;
                    e.lru = self.tick;
                    if !hit {
                        self.issue(page, offset, new_sig, access.cycle, out);
                    }
                } else {
                    self.st[i].lru = self.tick;
                }
            }
            None => {
                self.st_allocate(page, offset);
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        let st_entry = 36 + 6 + self.cfg.signature_bits as u64 + 1 + 8; // tag+offset+sig+valid+lru
        let pt_entry = 16 + PT_WAYS as u64 * (7 + 16);
        self.cfg.st_entries as u64 * st_entry + self.cfg.pt_entries as u64 * pt_entry
    }

    fn table_accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_common::Cycle;

    fn run(spp: &mut Spp, seq: &[(u64, usize)]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, &(page, block)) in seq.iter().enumerate() {
            let addr =
                PhysAddr::from_parts(PageNum::new(page), planaria_common::BlockIndex::new(block));
            spp.on_access(&MemAccess::read(addr, Cycle::new(10 * i as u64)), false, &mut out);
        }
        out
    }

    #[test]
    fn learns_unit_stride_within_pages() {
        let mut spp = Spp::default();
        // Train on several pages walking +1.
        let mut seq = Vec::new();
        for p in 0..20u64 {
            for b in 0..32usize {
                seq.push((p, b));
            }
        }
        run(&mut spp, &seq);
        // A fresh page starting the same walk triggers lookahead.
        let out = run(&mut spp, &[(100, 0), (100, 1), (100, 2)]);
        assert!(!out.is_empty(), "trained SPP must prefetch on the stride");
        // Prefetches continue the +1 path.
        assert!(out.iter().all(|r| r.addr.page().as_u64() == 100));
        let blocks: Vec<usize> = out.iter().map(|r| r.addr.block_index().as_usize()).collect();
        assert!(blocks.iter().all(|&b| b >= 2), "{blocks:?}");
    }

    #[test]
    fn lookahead_depth_grows_with_confidence() {
        let mut spp = Spp::default();
        let mut seq = Vec::new();
        for p in 0..50u64 {
            for b in 0..40usize {
                seq.push((p, b));
            }
        }
        run(&mut spp, &seq);
        let out = run(&mut spp, &[(200, 0), (200, 1)]);
        assert!(out.len() >= 2, "high confidence should look ahead: {}", out.len());
        assert!(out.len() <= SppConfig::default().max_depth);
    }

    #[test]
    fn stays_within_page() {
        let mut spp = Spp::default();
        let mut seq = Vec::new();
        for p in 0..20u64 {
            for b in 0..BLOCKS_PER_PAGE {
                seq.push((p, b));
            }
        }
        run(&mut spp, &seq);
        // Trigger near the end of a page.
        let out = run(&mut spp, &[(300, 61), (300, 62), (300, 63)]);
        assert!(out.iter().all(|r| r.addr.page().as_u64() == 300));
        assert!(out.iter().all(|r| r.addr.block_index().as_usize() < BLOCKS_PER_PAGE));
    }

    #[test]
    fn shuffled_footprints_yield_little() {
        let mut spp = Spp::default();
        // Same footprint, different order each visit: signatures splinter.
        let orders: [[usize; 6]; 4] =
            [[0, 9, 4, 13, 2, 7], [13, 2, 9, 0, 7, 4], [4, 7, 0, 2, 13, 9], [9, 13, 7, 4, 0, 2]];
        let mut seq = Vec::new();
        for (v, order) in orders.iter().enumerate() {
            for &b in order {
                seq.push((40 + v as u64, b));
            }
        }
        let trained = run(&mut spp, &seq);
        // Compare against the stride case: shuffled deltas must produce far
        // fewer (often zero) confident prefetches.
        assert!(trained.len() < 6, "shuffled order should starve SPP: {}", trained.len());
    }

    #[test]
    fn no_issue_on_hits() {
        let mut spp = Spp::default();
        let mut out = Vec::new();
        let a1 = MemAccess::read(PhysAddr::new(0x0), Cycle::new(0));
        let a2 = MemAccess::read(PhysAddr::new(0x40), Cycle::new(10));
        spp.on_access(&a1, false, &mut out);
        spp.on_access(&a2, true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn st_capacity_evicts_lru() {
        let mut spp = Spp::new(SppConfig { st_entries: 2, ..SppConfig::default() });
        run(&mut spp, &[(1, 0), (2, 0), (3, 0)]); // page 1 evicted
                                                  // Page 1 must re-allocate (no delta learned from its history).
        let out = run(&mut spp, &[(1, 5)]);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_is_moderate() {
        let spp = Spp::default();
        // A few KB — far below Planaria's pattern storage.
        assert!(spp.storage_bits() < 100 * 8 * 1024);
        assert!(spp.storage_bits() > 0);
    }
}
