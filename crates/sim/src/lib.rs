//! Trace-driven full-memory-system simulator for the Planaria study.
//!
//! This crate glues the substrates together into the paper's evaluation
//! pipeline ("physical traces + trace-driven simulation"):
//!
//! ```text
//! trace ──▶ system cache ──miss──▶ MSHRs ──▶ LPDDR4 controller
//!             │   ▲                              │
//!             ▼   └── fills (demand/prefetch) ◀──┘
//!          prefetcher (learning on all accesses, issuing on misses)
//!             │
//!             ▼
//!        prefetch queue ──▶ LPDDR4 controller (low priority)
//! ```
//!
//! * [`MemorySystem`] — the event loop: demand lookups, miss handling with
//!   in-flight merging and late-prefetch upgrades, prefetch filtering
//!   (cache / in-flight / queue dedup), dirty writebacks, and final drain.
//! * [`SystemConfig`] — Table 1 defaults (4 MB 16-way SC, 4-channel
//!   LPDDR4, queue depth 64).
//! * [`SimResult`] — hit rate, AMAT, traffic split, energy/power, prefetch
//!   accuracy/coverage and the SLP/TLP usefulness split (Figure 9).
//! * [`ipc`] — the analytic AMAT→IPC model documented in DESIGN.md.
//! * [`experiment`] — one-call runners for (application × prefetcher)
//!   grids, used by every figure harness.
//!
//! Observability: set [`SystemConfig::telemetry`] (or pass `--telemetry`
//! to a figure harness) to capture decision traces and per-prefetch
//! lifecycle events; [`MemorySystem::run_telemetry`] and
//! [`Cell::telemetry`] surface the merged [`TelemetryReport`]. See the
//! `planaria_telemetry` crate docs for the event taxonomy.
//!
//! # Examples
//!
//! ```
//! use planaria_sim::experiment::{run_app, PrefetcherKind};
//! use planaria_trace::apps::AppId;
//!
//! // A fast, scaled-down Planaria run on the HoK-like workload.
//! let result = run_app(AppId::HoK, PrefetcherKind::Planaria, 20_000);
//! assert!(result.hit_rate > 0.0 && result.hit_rate < 1.0);
//! assert!(result.amat_cycles > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod ipc;
mod metrics;
pub mod runner;
mod system;
pub mod table;
mod traffic;

pub use experiment::PrefetcherKind;
pub use metrics::{DeviceStat, SimResult, TrafficBreakdown};
pub use runner::{Cell, Job, ProgressEvent, RunReport, Runner, StreamFactory, TraceSource};
pub use system::{GovernorConfig, MemorySystem, SystemConfig, STREAM_CHUNK};
pub use traffic::{
    ClosedLoopDriver, ClosedLoopReport, DeviceOutcome, Pump, TrafficConfig, TrafficModel,
};

// Observability layer: re-exported so simulator users can configure
// capture and consume reports without naming the telemetry crate.
pub use planaria_telemetry::{
    Event, EventData, EventKind, Telemetry, TelemetryConfig, TelemetryReport,
};
