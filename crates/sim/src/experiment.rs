//! One-call experiment runners for (application × prefetcher) grids.
//!
//! Every figure harness in `planaria-bench` is a thin loop over these
//! functions; keeping the grid logic here means tests, examples and benches
//! all measure exactly the same pipeline.

use core::fmt;

use planaria_baselines::{Bop, NextLine, Spp, StridePf};
use planaria_core::{NullPrefetcher, Planaria, PlanariaConfig, Prefetcher, Slp, Tlp};
use planaria_trace::apps::{self, AppId};
use planaria_trace::Trace;

use crate::{MemorySystem, SimResult, SystemConfig};

/// Selects a prefetcher configuration for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetcher (the paper's baseline system).
    None,
    /// Next-line reference.
    NextLine,
    /// PC-free per-page stride reference.
    Stride,
    /// Best-Offset Prefetching (HPCA'16).
    Bop,
    /// Signature Path Prefetcher (MICRO'16).
    Spp,
    /// SLP alone (intra-page sub-prefetcher).
    SlpOnly,
    /// TLP alone (inter-page sub-prefetcher).
    TlpOnly,
    /// Full Planaria (SLP + TLP + coordinator).
    Planaria,
    /// Planaria with TLP issuing disabled (Figure 9 ablation).
    PlanariaSlpIssue,
    /// Planaria with SLP issuing disabled (Figure 9 ablation).
    PlanariaTlpIssue,
    /// Planaria with the parallel coordinator (both issue every trigger).
    PlanariaParallel,
    /// Full Planaria with fleet-scale table sizing: the same SLP + TLP +
    /// coordinator pipeline, but metadata tables shrunk ~100x so hundreds
    /// of thousands of concurrently *served* device instances fit in
    /// memory (`planaria-serve`'s `serve_load` harness). Not a figure
    /// configuration — headline results always use [`Self::Planaria`].
    PlanariaLean,
}

impl PrefetcherKind {
    /// The four configurations of Figures 7, 8 and 10.
    pub const FIGURE_SET: [PrefetcherKind; 4] =
        [PrefetcherKind::None, PrefetcherKind::Bop, PrefetcherKind::Spp, PrefetcherKind::Planaria];

    /// Builds a fresh prefetcher instance.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NullPrefetcher::new()),
            PrefetcherKind::NextLine => Box::new(NextLine::new()),
            PrefetcherKind::Stride => Box::new(StridePf::default()),
            PrefetcherKind::Bop => Box::new(Bop::default()),
            PrefetcherKind::Spp => Box::new(Spp::default()),
            PrefetcherKind::SlpOnly => Box::new(Slp::default()),
            PrefetcherKind::TlpOnly => Box::new(Tlp::default()),
            PrefetcherKind::Planaria => Box::new(Planaria::default()),
            PrefetcherKind::PlanariaSlpIssue => {
                Box::new(Planaria::new(PlanariaConfig::default().slp_only()))
            }
            PrefetcherKind::PlanariaTlpIssue => {
                Box::new(Planaria::new(PlanariaConfig::default().tlp_only()))
            }
            PrefetcherKind::PlanariaParallel => {
                Box::new(Planaria::new(PlanariaConfig::default().parallel()))
            }
            PrefetcherKind::PlanariaLean => {
                let mut cfg = PlanariaConfig::default();
                cfg.slp.ft_entries = 16;
                cfg.slp.at_entries = 32;
                cfg.slp.pt_entries = 128;
                cfg.tlp.entries = 32;
                Box::new(Planaria::new(cfg))
            }
        }
    }

    /// The label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "None",
            PrefetcherKind::NextLine => "NextLine",
            PrefetcherKind::Stride => "Stride",
            PrefetcherKind::Bop => "BOP",
            PrefetcherKind::Spp => "SPP",
            PrefetcherKind::SlpOnly => "SLP",
            PrefetcherKind::TlpOnly => "TLP",
            PrefetcherKind::Planaria => "Planaria",
            PrefetcherKind::PlanariaSlpIssue => "Planaria(SLP)",
            PrefetcherKind::PlanariaTlpIssue => "Planaria(TLP)",
            PrefetcherKind::PlanariaParallel => "Planaria(parallel)",
            PrefetcherKind::PlanariaLean => "Planaria(lean)",
        }
    }
}

impl fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs one prefetcher over one prepared trace with Table 1 defaults.
pub fn run_trace(trace: &Trace, kind: PrefetcherKind) -> SimResult {
    run_trace_with(trace, kind, SystemConfig::default())
}

/// Runs one prefetcher over one prepared trace with a custom system.
pub fn run_trace_with(trace: &Trace, kind: PrefetcherKind, cfg: SystemConfig) -> SimResult {
    MemorySystem::new(cfg, kind.build()).run(trace)
}

/// Builds the `app` trace at `length` accesses and runs `kind` over it.
pub fn run_app(app: AppId, kind: PrefetcherKind, length: usize) -> SimResult {
    let trace = apps::profile(app).scaled(length).build();
    run_trace(&trace, kind)
}

/// Runs a set of prefetchers over one app's trace (trace built once).
///
/// Thin single-threaded wrapper over [`crate::runner::Runner`]; use the
/// runner directly for multi-threaded batches.
pub fn run_app_suite(app: AppId, kinds: &[PrefetcherKind], length: usize) -> Vec<SimResult> {
    let jobs = kinds.iter().map(|&k| crate::runner::Job::grid_cell(app, k, length)).collect();
    crate::runner::Runner::serial().run(jobs).into_results()
}

/// The full evaluation grid: every Table 2 app × the given prefetchers.
///
/// Results are grouped per app in `kinds` order — the shape every figure
/// harness consumes. Thin single-threaded wrapper over
/// [`crate::runner::Runner::run_grid`].
pub fn run_grid(kinds: &[PrefetcherKind], length: usize) -> Vec<Vec<SimResult>> {
    crate::runner::Runner::serial().run_grid(kinds, length).into_rows(kinds.len())
}

/// Geometric-mean helper for "average over apps" rows (ratios average
/// multiplicatively).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean helper for additive quantities (hit rates, deltas).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_with_matching_labels() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::Stride,
            PrefetcherKind::Bop,
            PrefetcherKind::Spp,
            PrefetcherKind::SlpOnly,
            PrefetcherKind::TlpOnly,
            PrefetcherKind::Planaria,
        ] {
            let pf = kind.build();
            assert!(!pf.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(PrefetcherKind::Planaria.build().name(), "Planaria");
        assert_eq!(PrefetcherKind::PlanariaSlpIssue.build().name(), "Planaria(SLP-only)");
    }

    #[test]
    fn run_app_produces_consistent_result() {
        let r = run_app(AppId::Cfm, PrefetcherKind::None, 5_000);
        assert_eq!(r.accesses, 5_000);
        assert_eq!(r.workload, "CFM");
        assert_eq!(r.prefetcher, "None");
        assert!(r.amat_cycles > 0.0);
    }

    #[test]
    fn suite_shares_one_trace() {
        let rs =
            run_app_suite(AppId::Hi3, &[PrefetcherKind::None, PrefetcherKind::Planaria], 5_000);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].accesses, rs[1].accesses);
    }

    #[test]
    fn means() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }
}
