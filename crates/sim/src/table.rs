//! Plain-text table rendering for the figure harnesses.
//!
//! Every harness binary prints its figure as an aligned text table (one row
//! per application plus an average row), which is the closest faithful
//! terminal rendering of the paper's bar charts.

use core::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Appends a separator-then-row (used before average rows).
    pub fn rule(&mut self) -> &mut Self {
        self.rows.push(Vec::new()); // empty row renders as a rule
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                write_row(&mut out, row);
            }
        }
        out
    }
}

/// Formats a signed fraction as a percentage (`-0.243` → `"-24.3%"`).
pub fn pct(frac: f64) -> String {
    format!("{:+.1}%", frac * 100.0)
}

/// Formats an unsigned fraction as a percentage (`0.82` → `"82.0%"`).
pub fn pct0(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["app", "value"]);
        t.row(["CFM", "1.0"]).row(["HoK", "12.5"]).rule().row(["avg", "6.75"]);
        let s = t.render();
        assert!(s.contains("CFM"));
        assert!(s.contains("avg"));
        // Separator lines present (header + explicit rule).
        assert!(s.matches('-').count() > 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(-0.243), "-24.3%");
        assert_eq!(pct(0.005), "+0.5%");
        assert_eq!(pct0(0.82), "82.0%");
    }
}
